//! Fault-injection soak of the sharded serving stack.
//!
//! The companion to `integration_sharded.rs`: the same multi-producer
//! admission soak, but with a seeded [`FaultPlan`] poisoning verify stages,
//! stalling a shard and rejecting submissions mid-flight. The admission
//! contract must not budge: every ticket comes back exactly once, every
//! query ends in an explicit [`QueryOutcome`], the process never aborts,
//! and transient faults are healed by bounded retry while permanent ones
//! are isolated to their own query.
//!
//! Seeds are pinned (the CI `fault-soak` step runs exactly this binary), so
//! a failure here reproduces byte-for-byte on a developer box.

use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_harness::service::{
    silence_injected_panics, AdmissionQueue, FaultPlan, FaultSpec, QueryOutcome, ServiceOptions,
    ShardedService, SubmitError,
};
use sqbench_index::{build_index, MethodConfig, MethodKind};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn setup(graphs: usize, queries: usize, seed: u64) -> (Dataset, Vec<Graph>) {
    let ds = GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(graphs)
            .with_avg_nodes(12)
            .with_avg_density(0.14)
            .with_label_count(5)
            .with_seed(seed),
    )
    .generate();
    let workload = QueryGen::new(seed ^ 0xd1ce).generate(&ds, queries, 4);
    let qs = workload.iter().map(|(q, _)| q.clone()).collect();
    (ds, qs)
}

/// Submits with bounded retry across injected admission failures: the
/// rejection is transient by construction (the fault budget drains), so a
/// producer that retries must eventually be admitted — without ever
/// burning a ticket on the failed attempt.
fn submit_with_retry(queue: &AdmissionQueue, query: Graph, deadline: Option<Instant>) -> u64 {
    for _ in 0..16 {
        match queue.submit(query.clone(), deadline) {
            Ok(ticket) => return ticket,
            Err(SubmitError::Injected) => continue,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    panic!("injected admission failure did not clear within 16 retries");
}

/// Acceptance soak: 240 queries from 4 producers through a backpressuring
/// capacity-16 queue, against a 3-shard service, under a *seeded* plan of
/// verify panics, one shard stall and admission rejections. Every fault
/// class must actually fire; no ticket may be lost or duplicated; every
/// transient fault must heal to a `Complete` record with exact answers.
#[test]
fn seeded_fault_soak_loses_nothing_and_heals_transients() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 60;
    const TOTAL: usize = PRODUCERS * PER_PRODUCER;
    const SHARDS: usize = 3;
    const SEED: u64 = 0xfau64 * 1000 + 17; // pinned: the CI fault-soak seed

    silence_injected_panics();
    let (ds, queries) = setup(18, 8, 5);
    let config = MethodConfig::fast();
    let oracle = build_index(MethodKind::Ggsx, &config, &ds);
    let expected: Vec<Vec<GraphId>> = queries
        .iter()
        .map(|q| oracle.query(&ds, q).answers)
        .collect();

    let plan = Arc::new(FaultPlan::seeded(
        SEED,
        &FaultSpec {
            tickets: TOTAL as u64,
            shards: SHARDS as u64,
            panic_queries: 8,
            panic_times: 1, // transient: one panic, then the retry succeeds
            stalled_shards: 1,
            stall: Duration::from_millis(25),
            admission_failures: 6,
        },
    ));
    let mut service = ShardedService::new(
        MethodKind::Ggsx,
        &config,
        &ds,
        ServiceOptions::new()
            .shards(SHARDS)
            .workers(2)
            .faults(Arc::clone(&plan)),
    );
    let queue = AdmissionQueue::new(
        ServiceOptions::new()
            .queue_capacity(16)
            .faults(Arc::clone(&plan)),
    );

    let mut submissions: Vec<(u64, usize)> = Vec::with_capacity(TOTAL);
    let mut collected: Vec<(u64, Vec<GraphId>, QueryOutcome, u32)> = Vec::with_capacity(TOTAL);
    std::thread::scope(|scope| {
        let producer_handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let queue = &queue;
                let queries = &queries;
                scope.spawn(move || {
                    let mut mine = Vec::with_capacity(PER_PRODUCER);
                    for i in 0..PER_PRODUCER {
                        let qi = (p + i * PRODUCERS) % queries.len();
                        mine.push((submit_with_retry(queue, queries[qi].clone(), None), qi));
                    }
                    mine
                })
            })
            .collect();

        while collected.len() < TOTAL {
            let report = service.drain(&queue, None);
            for record in report.records {
                collected.push((
                    record.ticket,
                    record.answers,
                    record.outcome,
                    record.retries,
                ));
            }
            std::thread::yield_now();
        }
        for handle in producer_handles {
            submissions.extend(handle.join().expect("producer panicked"));
        }
    });

    // Ticket space is dense and exactly once, faults notwithstanding.
    assert_eq!(collected.len(), TOTAL);
    let mut tickets: Vec<u64> = collected.iter().map(|(t, ..)| *t).collect();
    tickets.sort_unstable();
    assert_eq!(tickets, (0..TOTAL as u64).collect::<Vec<_>>());
    assert_eq!(queue.admitted(), TOTAL as u64);
    assert_eq!(queue.shed_queries(), 0);
    assert!(queue.is_empty());

    // Every configured fault class actually fired — the injection points
    // were not refactored away.
    assert_eq!(plan.injected_panics(), 8);
    assert_eq!(plan.injected_stalls(), 1);
    assert_eq!(plan.injected_admission_failures(), 6);

    // Transient faults heal: with a panic budget of one per poisoned
    // ticket, the retry round recovers every query to a Complete record
    // with bit-exact answers; the panics show up only in the retry count.
    let mut by_ticket: Vec<Option<usize>> = vec![None; TOTAL];
    for (ticket, qi) in submissions {
        assert!(by_ticket[ticket as usize].replace(qi).is_none());
    }
    let mut total_retries = 0u64;
    for (ticket, answers, outcome, retries) in &collected {
        let qi = by_ticket[*ticket as usize].expect("ticket was submitted");
        assert_eq!(
            *outcome,
            QueryOutcome::Complete,
            "ticket {ticket}: transient faults must heal"
        );
        assert_eq!(answers, &expected[qi], "ticket {ticket} got wrong answers");
        total_retries += u64::from(*retries);
    }
    assert!(
        total_retries >= 8,
        "each of the 8 injected panics costs at least one retry probe, got {total_retries}"
    );
}

/// Permanent failures stay isolated: two tickets whose panic budget
/// outlasts the whole retry schedule (initial probe + 2 retry rounds on
/// each of 3 shards = 9 firings) come back `Failed` with empty answers,
/// while every other ticket of the same drain is untouched.
#[test]
fn permanent_fault_is_isolated_to_its_tickets() {
    const TOTAL: usize = 48;
    const SHARDS: usize = 3;
    const POISONED: [u64; 2] = [5, 23];

    silence_injected_panics();
    let (ds, queries) = setup(18, 8, 5);
    let config = MethodConfig::fast();
    let oracle = build_index(MethodKind::Ggsx, &config, &ds);
    let expected: Vec<Vec<GraphId>> = queries
        .iter()
        .map(|q| oracle.query(&ds, q).answers)
        .collect();

    // 9 = SHARDS × (1 initial + 2 retry rounds): beyond the retry budget.
    let plan = Arc::new(
        FaultPlan::new()
            .panic_in_verify(POISONED[0], 9)
            .panic_in_verify(POISONED[1], 9),
    );
    let mut service = ShardedService::new(
        MethodKind::Ggsx,
        &config,
        &ds,
        ServiceOptions::new()
            .shards(SHARDS)
            .workers(2)
            .faults(Arc::clone(&plan)),
    );
    let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(TOTAL));
    let mut by_ticket: Vec<usize> = Vec::with_capacity(TOTAL);
    for i in 0..TOTAL {
        let qi = i % queries.len();
        queue
            .submit(queries[qi].clone(), None)
            .expect("queue is open");
        by_ticket.push(qi);
    }

    let mut collected: Vec<(u64, Vec<GraphId>, QueryOutcome)> = Vec::new();
    while collected.len() < TOTAL {
        let report = service.drain(&queue, None);
        for record in report.records {
            collected.push((record.ticket, record.answers, record.outcome));
        }
    }

    assert_eq!(plan.injected_panics(), 2 * 9);
    for (ticket, answers, outcome) in &collected {
        let qi = by_ticket[*ticket as usize];
        if POISONED.contains(ticket) {
            assert_eq!(
                *outcome,
                QueryOutcome::Failed,
                "ticket {ticket} must exhaust its retry budget"
            );
            assert!(answers.is_empty(), "failed queries must answer nothing");
        } else {
            assert_eq!(*outcome, QueryOutcome::Complete);
            assert_eq!(answers, &expected[qi], "ticket {ticket} got wrong answers");
        }
    }
}

/// A stalled shard under a tight deadline budget degrades instead of
/// blocking: the drain returns the healthy shards' partial union flagged
/// `Degraded`, and every reported answer is one the fault-free oracle
/// confirms (sound, possibly incomplete).
#[test]
fn stalled_shard_under_deadline_yields_sound_partial_answers() {
    const SHARDS: usize = 3;

    silence_injected_panics();
    let (ds, queries) = setup(18, 6, 5);
    let config = MethodConfig::fast();
    let oracle = build_index(MethodKind::Ggsx, &config, &ds);
    let expected: Vec<Vec<GraphId>> = queries
        .iter()
        .map(|q| oracle.query(&ds, q).answers)
        .collect();

    let plan = Arc::new(FaultPlan::new().stall_shard(0, Duration::from_millis(400)));
    let mut service = ShardedService::new(
        MethodKind::Ggsx,
        &config,
        &ds,
        ServiceOptions::new()
            .shards(SHARDS)
            .workers(2)
            .faults(Arc::clone(&plan)),
    );
    let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(queries.len()));
    let deadline = Instant::now() + Duration::from_millis(80);
    for q in &queries {
        queue.submit(q.clone(), Some(deadline)).expect("queue open");
    }

    let report = service.drain(&queue, None);
    assert_eq!(plan.injected_stalls(), 1);
    assert_eq!(report.records.len(), queries.len());
    for record in &report.records {
        let qi = record.ticket as usize;
        match record.outcome {
            QueryOutcome::Degraded { shards_missing } => {
                assert!(shards_missing >= 1);
                assert!(
                    record.answers.iter().all(|id| expected[qi].contains(id)),
                    "degraded answers must be a subset of the fault-free oracle's"
                );
            }
            QueryOutcome::TimedOut => assert!(record.answers.is_empty()),
            QueryOutcome::Complete => assert_eq!(record.answers, expected[qi]),
            other => panic!("unexpected outcome {other:?} for ticket {}", record.ticket),
        }
    }
    // The 400 ms stall dwarfs the 80 ms budget, so the stalled shard can
    // contribute nothing: at least one query must have degraded (or the
    // whole wave timed out, if the box is pathologically slow — but then
    // the assertions above already held vacuously and nothing was unsound).
    let degraded = report.degraded();
    let timed_out = report.expired();
    assert!(
        degraded + timed_out > 0,
        "a 400 ms stall under an 80 ms budget must cost something"
    );
}
