//! Golden-file test for the CSV report format.
//!
//! The figure scripts downstream of `render_csv` parse columns by name; a
//! silent header or field-order change corrupts every plot regenerated
//! after it. This test pins the exact bytes `render_csv` produces for a
//! small deterministic report — header plus one unsharded and one sharded
//! row — against `tests/data/golden_report.csv`.
//!
//! When a format change is *intentional*, regenerate the golden file with
//!
//! ```text
//! REGENERATE_GOLDEN=1 cargo test -p sqbench --test golden_report
//! ```
//!
//! and commit the diff together with the change that caused it.

use sqbench_harness::metrics::{CacheCounters, MethodMetrics, StageTotals};
use sqbench_harness::report::{render_csv, ExperimentPoint, ExperimentReport};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden_report.csv");

fn stage_totals(
    queries: usize,
    queue_wait_s: f64,
    cache_probe_s: f64,
    filter_s: f64,
    verify_s: f64,
) -> StageTotals {
    let mut totals = StageTotals::default();
    for _ in 0..queries {
        totals.add_query(queue_wait_s, cache_probe_s, filter_s, verify_s, 15);
        // Exercise the tail-latency columns deterministically: each
        // query's end-to-end latency is its summed stage walk.
        totals.observe_latency(queue_wait_s + cache_probe_s + filter_s + verify_s);
    }
    totals
}

/// A fully deterministic two-row report: no clocks, no RNG — every field
/// is a hand-picked value that formats exactly the same on every run.
fn golden_report() -> ExperimentReport {
    let unsharded = MethodMetrics {
        method: "GGSX".to_string(),
        indexing_time_s: 1.25,
        index_size_bytes: 2048,
        distinct_features: 10,
        avg_query_time_s: 1.5,
        false_positive_ratio: 0.125,
        queries_executed: 2,
        timed_out: false,
        queries_degraded: 0,
        queries_failed: 0,
        queries_shed: 0,
        retries: 0,
        inserts_applied: 0,
        removes_applied: 0,
        stages: stage_totals(2, 0.25, 0.125, 0.5, 1.0),
        shards: 1,
        shards_probed: 2,
        shards_skipped: 0,
        shard_stages: Vec::new(),
        partition_overhead_bytes: 0,
        // Exercise the cache columns with non-zero values: a warm feature
        // cache plus an answer memo that served one of the two queries.
        cache: CacheCounters {
            feature_hits: 6,
            feature_misses: 2,
            answer_hits: 1,
            answer_misses: 1,
            evictions: 3,
        },
    };
    let sharded = MethodMetrics {
        method: "Grapes".to_string(),
        indexing_time_s: 0.75,
        index_size_bytes: 4096,
        distinct_features: 24,
        avg_query_time_s: 2.5,
        false_positive_ratio: 0.25,
        queries_executed: 1,
        timed_out: true,
        // Exercise the fault-accounting columns with non-zero values: one
        // degraded partial answer, one failed query, one shed at admission
        // and three retry probes.
        queries_degraded: 1,
        queries_failed: 1,
        queries_shed: 1,
        retries: 3,
        // Exercise the ingest columns: a mixed read/write drain that
        // applied two inserts and one removal between reads.
        inserts_applied: 2,
        removes_applied: 1,
        stages: stage_totals(1, 0.5, 0.0, 0.75, 1.75),
        shards: 2,
        shards_probed: 1,
        shards_skipped: 1,
        shard_stages: vec![
            stage_totals(1, 0.0, 0.0, 0.5, 1.5),   // busy shard: 2.0 s
            stage_totals(1, 0.0, 0.0, 0.25, 0.25), // light shard: 0.5 s
        ],
        // Two shards' Arc pointer spines over a 20-graph dataset.
        partition_overhead_bytes: 160,
        // A cache-disabled run: every cache column renders as 0.
        cache: CacheCounters::default(),
    };
    let mut report = ExperimentReport::new(
        "golden",
        "CSV format pin",
        "deterministic two-row report guarding the CSV contract",
    );
    report.push_point(ExperimentPoint {
        x_label: "p0".to_string(),
        x_value: 1.5,
        results: vec![unsharded, sharded],
    });
    report
}

#[test]
fn csv_format_matches_the_committed_golden_file() {
    let rendered = render_csv(&golden_report());
    if std::env::var_os("REGENERATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/data/golden_report.csv missing — run with REGENERATE_GOLDEN=1 to create it");
    for (i, (got, want)) in rendered.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            got, want,
            "CSV line {i} diverged from the golden file; if the format change \
             is intentional, regenerate with REGENERATE_GOLDEN=1 and commit"
        );
    }
    assert_eq!(
        rendered.lines().count(),
        golden.lines().count(),
        "CSV row count diverged from the golden file"
    );
    // Belt and braces: the exact bytes, not just line-wise equality.
    assert_eq!(rendered, golden);
}

/// Pins the exact CSV header — the contract figure scripts parse columns
/// by. Stronger than the byte-wise golden diff alone: when the golden file
/// is regenerated, this assertion still fails loudly if a column was
/// dropped or reordered by accident rather than intent.
#[test]
fn csv_header_is_pinned_including_routing_outcome_and_cache_columns() {
    let rendered = render_csv(&golden_report());
    let header = rendered.lines().next().expect("csv has a header line");
    assert_eq!(
        header,
        "experiment,x_label,x_value,method,indexing_time_s,index_size_bytes,\
         distinct_features,avg_query_time_s,avg_queue_wait_s,avg_cache_probe_s,\
         avg_filter_time_s,avg_verify_time_s,latency_p50_s,latency_p95_s,\
         latency_p99_s,candidates_pruned,false_positive_ratio,\
         queries_executed,shards,shards_probed,shards_skipped,max_shard_time_s,\
         shard_balance,partition_overhead_bytes,queries_degraded,queries_failed,\
         queries_shed,retries,inserts_applied,removes_applied,timed_out,\
         cache_feature_hits,cache_feature_misses,\
         cache_answer_hits,cache_answer_misses,cache_evictions"
    );
    // Every data row carries exactly as many fields as the header names.
    let columns = header.split(',').count();
    for line in rendered.lines().skip(1) {
        assert_eq!(line.split(',').count(), columns, "ragged row: {line}");
    }
}

/// The golden fixture itself exercises the derived shard columns, so a
/// regression in their math shows up here too, with fixed numbers.
#[test]
fn golden_fixture_shard_columns_have_expected_values() {
    let report = golden_report();
    let unsharded = &report.points[0].results[0];
    assert_eq!(unsharded.shards, 1);
    assert!((unsharded.max_shard_time_s() - 3.0).abs() < 1e-12); // 2×(0.5+1.0)
    assert_eq!(unsharded.shard_balance(), 1.0);
    let sharded = &report.points[0].results[1];
    assert_eq!(sharded.shards, 2);
    assert!((sharded.max_shard_time_s() - 2.0).abs() < 1e-12);
    assert!((sharded.shard_balance() - 0.25).abs() < 1e-12);
}
