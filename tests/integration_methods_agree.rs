//! Cross-method agreement: all six methods must return identical answer
//! sets — equal to the exhaustive VF2 baseline — on every dataset regime the
//! paper evaluates (synthetic sane-defaults-style data and all four
//! real-dataset simulators), for every query size in the paper's workload.

use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen, RealDataset};
use sqbench_graph::Dataset;
use sqbench_index::{build_index, exhaustive_answers, GraphIndex, MethodConfig, MethodKind};

fn check_all_methods(dataset: &Dataset, queries_per_size: usize, sizes: &[usize], seed: u64) {
    let config = MethodConfig::fast();
    let indexes: Vec<(MethodKind, Box<dyn GraphIndex>)> = MethodKind::ALL
        .iter()
        .map(|&kind| (kind, build_index(kind, &config, dataset)))
        .collect();
    let workloads = QueryGen::new(seed).generate_all_sizes(dataset, queries_per_size, sizes);
    for workload in &workloads {
        for (query, source) in workload.iter() {
            let truth = exhaustive_answers(dataset, query);
            assert!(
                truth.contains(&source),
                "source graph must contain its own extracted query"
            );
            for (kind, index) in &indexes {
                let outcome = index.query(dataset, query);
                assert_eq!(
                    outcome.answers,
                    truth,
                    "{} disagrees with ground truth on a {}-edge query over {}",
                    kind.name(),
                    workload.edges_per_query,
                    dataset.name()
                );
                // No false dismissals at the filtering stage either.
                for answer in &truth {
                    assert!(
                        outcome.candidates.contains(answer),
                        "{} dropped answer {answer} while filtering",
                        kind.name()
                    );
                }
            }
        }
    }
}

#[test]
fn methods_agree_on_synthetic_defaults_regime() {
    let dataset = GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(20)
            .with_avg_nodes(16)
            .with_avg_density(0.12)
            .with_label_count(6)
            .with_seed(1),
    )
    .generate();
    check_all_methods(&dataset, 2, &[4, 8, 16], 100);
}

#[test]
fn methods_agree_on_sparse_low_label_regime() {
    // Few labels = many repeated features = the worst case for filtering
    // power; answers must still be exact.
    let dataset = GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(15)
            .with_avg_nodes(14)
            .with_avg_density(0.18)
            .with_label_count(2)
            .with_seed(2),
    )
    .generate();
    check_all_methods(&dataset, 2, &[4, 8], 200);
}

#[test]
fn methods_agree_on_aids_like_data() {
    let dataset = RealDataset::Aids.generate(0.001, 3);
    check_all_methods(&dataset, 2, &[4, 8], 300);
}

#[test]
fn methods_agree_on_pcm_like_dense_data() {
    let dataset = RealDataset::Pcm.generate(0.03, 4);
    check_all_methods(&dataset, 2, &[4, 8], 400);
}

#[test]
fn methods_agree_on_ppi_like_large_graphs() {
    let dataset = RealDataset::Ppi.generate(0.01, 5);
    check_all_methods(&dataset, 2, &[4], 500);
}
