//! End-to-end correctness harness of the sharded, continuously-admitting
//! query service.
//!
//! Three layers of assurance:
//!
//! 1. **Bit-identical sharding** — `ShardedService` over 4 shards returns
//!    exactly the match sets of the unsharded path, for all six methods
//!    plus the scan baseline, on both partitioning strategies.
//! 2. **Open-admission soak** — hundreds of queries submitted from several
//!    producer threads through a small (backpressuring) admission queue
//!    while the consumer drains concurrently: no query record is lost or
//!    duplicated, every record carries the right answers, per-query
//!    deadlines are honored under load.
//! 3. **Degenerate shapes** — zero-query drains, more shards than graphs,
//!    and a fully empty dataset must terminate (and answer nothing)
//!    rather than hang.

use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_harness::service::{
    AdmissionQueue, RoutingMode, ServiceOptions, ShardStrategy, ShardedService, SubmitError,
};
use sqbench_index::{build_index, MethodConfig, MethodKind};
use std::time::{Duration, Instant};

const ALL_METHODS: [MethodKind; 7] = [
    MethodKind::Grapes,
    MethodKind::Ggsx,
    MethodKind::CtIndex,
    MethodKind::GIndex,
    MethodKind::TreeDelta,
    MethodKind::GCode,
    MethodKind::Scan,
];

fn setup(graphs: usize, queries: usize, seed: u64) -> (Dataset, Vec<Graph>) {
    let ds = GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(graphs)
            .with_avg_nodes(12)
            .with_avg_density(0.14)
            .with_label_count(5)
            .with_seed(seed),
    )
    .generate();
    let workload = QueryGen::new(seed ^ 0xd1ce).generate(&ds, queries, 4);
    let qs = workload.iter().map(|(q, _)| q.clone()).collect();
    (ds, qs)
}

/// Acceptance criterion: 4-shard match sets are bit-identical to the
/// unsharded path for every method and both partitioning strategies.
#[test]
fn four_shard_waves_are_bit_identical_to_unsharded_queries() {
    let (ds, queries) = setup(22, 8, 71);
    let refs: Vec<&Graph> = queries.iter().collect();
    let config = MethodConfig::fast();
    for kind in ALL_METHODS {
        let oracle = build_index(kind, &config, &ds);
        let expected: Vec<Vec<GraphId>> = queries
            .iter()
            .map(|q| oracle.query(&ds, q).answers)
            .collect();
        for strategy in [ShardStrategy::RoundRobin, ShardStrategy::SizeBalanced] {
            let mut service = ShardedService::new(
                kind,
                &config,
                &ds,
                ServiceOptions::new()
                    .shards(4)
                    .strategy(strategy)
                    .workers(2),
            );
            let report = service.run_wave(&refs, None);
            assert_eq!(report.shards, 4);
            assert_eq!(report.executed(), queries.len(), "{}", kind.name());
            assert_eq!(report.expired(), 0, "{}", kind.name());
            for (qi, record) in report.records.iter().enumerate() {
                assert_eq!(
                    record.answers,
                    expected[qi],
                    "{} diverged on query {qi} ({})",
                    kind.name(),
                    strategy.name()
                );
            }
            // Stage accounting covers every (query, shard) execution.
            let shard_queries: u64 = report.per_shard.iter().map(|t| t.queries).sum();
            assert_eq!(shard_queries as usize, 4 * queries.len());
        }
    }
}

/// Soak: 240 queries from 4 producer threads through a capacity-16 queue
/// (so producers block on backpressure), drained concurrently. Every
/// ticket must come back exactly once with the right answers.
#[test]
fn soak_multi_producer_admission_loses_and_duplicates_nothing() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 60;
    const TOTAL: usize = PRODUCERS * PER_PRODUCER;

    let (ds, queries) = setup(18, 8, 5);
    let config = MethodConfig::fast();
    let oracle = build_index(MethodKind::Ggsx, &config, &ds);
    let expected: Vec<Vec<GraphId>> = queries
        .iter()
        .map(|q| oracle.query(&ds, q).answers)
        .collect();

    let mut service = ShardedService::new(
        MethodKind::Ggsx,
        &config,
        &ds,
        ServiceOptions::new().shards(3).workers(2),
    );
    let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(16));

    // (ticket, query index) pairs per producer, merged after the scope.
    let mut submissions: Vec<(u64, usize)> = Vec::with_capacity(TOTAL);
    let mut collected: Vec<(u64, Vec<GraphId>, bool)> = Vec::with_capacity(TOTAL);
    std::thread::scope(|scope| {
        let producer_handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let queue = &queue;
                let queries = &queries;
                scope.spawn(move || {
                    let mut mine = Vec::with_capacity(PER_PRODUCER);
                    for i in 0..PER_PRODUCER {
                        let qi = (p + i * PRODUCERS) % queries.len();
                        let ticket = queue
                            .submit(queries[qi].clone(), None)
                            .expect("queue open while producers run");
                        mine.push((ticket, qi));
                    }
                    mine
                })
            })
            .collect();

        // Consumer: drain concurrently with the producers until every
        // submitted query has come back. Backpressure means producers are
        // blocked whenever the queue holds 16 queries, so progress here
        // is what unblocks them — a lost record would hang this loop, and
        // the harness would flag the test as stuck.
        while collected.len() < TOTAL {
            let report = service.drain(&queue, None);
            for record in report.records {
                let expired = record.expired();
                collected.push((record.ticket, record.answers, expired));
            }
            std::thread::yield_now();
        }
        for handle in producer_handles {
            submissions.extend(handle.join().expect("producer panicked"));
        }
    });

    // No lost or duplicated records: tickets are exactly 0..TOTAL, each once.
    assert_eq!(collected.len(), TOTAL);
    let mut tickets: Vec<u64> = collected.iter().map(|(t, _, _)| *t).collect();
    tickets.sort_unstable();
    assert_eq!(tickets, (0..TOTAL as u64).collect::<Vec<_>>());
    assert_eq!(queue.admitted(), TOTAL as u64);
    assert!(queue.is_empty());

    // Every record carries the exact answers of the query its producer
    // submitted under that ticket.
    let mut by_ticket: Vec<Option<usize>> = vec![None; TOTAL];
    for (ticket, qi) in submissions {
        assert!(by_ticket[ticket as usize].replace(qi).is_none());
    }
    for (ticket, answers, expired) in &collected {
        let qi = by_ticket[*ticket as usize].expect("ticket was submitted");
        assert!(!expired, "no deadline was set, nothing may expire");
        assert_eq!(answers, &expected[qi], "ticket {ticket} got wrong answers");
    }
}

/// The routed twin of the admission soak: 240 queries from 4 producers
/// through the same capacity-16 queue, drained by a service that consults
/// the shard synopses before every wave. Routing must change *nothing*
/// about the admission contract — no ticket lost or duplicated, every
/// answer exact — while every record's probe accounting stays within the
/// shard count.
#[test]
fn soak_with_routing_enabled_loses_nothing_and_bounds_probes() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 60;
    const TOTAL: usize = PRODUCERS * PER_PRODUCER;
    const SHARDS: usize = 3;

    let (ds, queries) = setup(18, 8, 5);
    let config = MethodConfig::fast();
    let oracle = build_index(MethodKind::Ggsx, &config, &ds);
    let expected: Vec<Vec<GraphId>> = queries
        .iter()
        .map(|q| oracle.query(&ds, q).answers)
        .collect();

    let mut service = ShardedService::new(
        MethodKind::Ggsx,
        &config,
        &ds,
        ServiceOptions::new()
            .shards(SHARDS)
            .workers(2)
            .routing(RoutingMode::Synopsis),
    );
    assert_eq!(service.routing(), RoutingMode::Synopsis);
    let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(16));

    let mut submissions: Vec<(u64, usize)> = Vec::with_capacity(TOTAL);
    let mut collected: Vec<(u64, Vec<GraphId>, bool, usize, usize)> = Vec::with_capacity(TOTAL);
    std::thread::scope(|scope| {
        let producer_handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let queue = &queue;
                let queries = &queries;
                scope.spawn(move || {
                    let mut mine = Vec::with_capacity(PER_PRODUCER);
                    for i in 0..PER_PRODUCER {
                        let qi = (p + i * PRODUCERS) % queries.len();
                        let ticket = queue
                            .submit(queries[qi].clone(), None)
                            .expect("queue open while producers run");
                        mine.push((ticket, qi));
                    }
                    mine
                })
            })
            .collect();

        while collected.len() < TOTAL {
            let report = service.drain(&queue, None);
            for record in report.records {
                let expired = record.expired();
                collected.push((
                    record.ticket,
                    record.answers,
                    expired,
                    record.shards_probed,
                    record.shards_skipped,
                ));
            }
            std::thread::yield_now();
        }
        for handle in producer_handles {
            submissions.extend(handle.join().expect("producer panicked"));
        }
    });

    // No lost or duplicated records, exactly as in the fanned-out soak.
    assert_eq!(collected.len(), TOTAL);
    let mut tickets: Vec<u64> = collected.iter().map(|(t, ..)| *t).collect();
    tickets.sort_unstable();
    assert_eq!(tickets, (0..TOTAL as u64).collect::<Vec<_>>());
    assert!(queue.is_empty());

    let mut by_ticket: Vec<Option<usize>> = vec![None; TOTAL];
    for (ticket, qi) in submissions {
        assert!(by_ticket[ticket as usize].replace(qi).is_none());
    }
    for (ticket, answers, expired, probed, skipped) in &collected {
        let qi = by_ticket[*ticket as usize].expect("ticket was submitted");
        assert!(!expired, "no deadline was set, nothing may expire");
        assert_eq!(answers, &expected[qi], "ticket {ticket} got wrong answers");
        // Probe accounting: within the shard count on every record, and
        // the two sides always partition the shards.
        assert!(
            *probed <= SHARDS,
            "ticket {ticket} probed {probed} of {SHARDS} shards"
        );
        assert_eq!(probed + skipped, SHARDS);
        // Every query is a subgraph of some dataset graph, so a sound
        // router must probe at least that graph's shard.
        assert!(*probed >= 1, "ticket {ticket} was routed to no shard");
    }
}

/// Per-query deadlines under load: expired queries are recorded (not
/// dropped) but never executed; live ones execute exactly.
#[test]
fn soak_per_query_deadlines_are_honored() {
    let (ds, queries) = setup(14, 6, 29);
    let config = MethodConfig::fast();
    let oracle = build_index(MethodKind::CtIndex, &config, &ds);
    let mut service = ShardedService::new(
        MethodKind::CtIndex,
        &config,
        &ds,
        ServiceOptions::new().shards(2),
    );
    let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(64));
    let past = Instant::now() - Duration::from_secs(1);
    let future = Instant::now() + Duration::from_secs(3600);
    let mut expected_expired = Vec::new();
    let mut expected_live = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let deadline = if i % 3 == 0 { Some(past) } else { Some(future) };
        let ticket = queue.submit(q.clone(), deadline).unwrap();
        if i % 3 == 0 {
            expected_expired.push(ticket);
        } else {
            expected_live.push((ticket, i));
        }
    }
    let report = service.drain(&queue, None);
    assert_eq!(report.records.len(), queries.len());
    assert_eq!(report.expired(), expected_expired.len());
    for record in &report.records {
        if expected_expired.contains(&record.ticket) {
            assert!(record.expired(), "ticket {} must expire", record.ticket);
            assert!(record.answers.is_empty());
            assert_eq!(record.candidate_count, 0);
        } else {
            let (_, qi) = expected_live
                .iter()
                .find(|(t, _)| *t == record.ticket)
                .expect("live ticket");
            assert!(!record.expired());
            assert_eq!(record.answers, oracle.query(&ds, &queries[*qi]).answers);
        }
    }
    // The report's ratios stay finite even with expiries in the mix.
    assert!(report.false_positive_ratio().is_finite());
    assert!(report.throughput_qps().is_finite());
}

/// Degenerate shapes terminate: empty drains, more shards than graphs,
/// and an entirely empty dataset.
#[test]
fn zero_query_and_empty_shard_edge_cases_do_not_hang() {
    // Empty drains on a partly-empty 5-shard service over 3 graphs.
    let (ds, queries) = setup(3, 2, 83);
    let config = MethodConfig::fast();
    let mut service = ShardedService::new(
        MethodKind::GIndex,
        &config,
        &ds,
        ServiceOptions::new().shards(5),
    );
    assert!(service.shard_sizes().contains(&0));
    let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(4));
    for _ in 0..3 {
        let report = service.drain(&queue, None);
        assert!(report.records.is_empty());
        assert_eq!(report.executed(), 0);
        assert_eq!(report.false_positive_ratio(), 0.0);
        assert_eq!(report.throughput_qps(), 0.0);
    }
    // Queries still answer exactly over the ragged partition.
    let oracle = build_index(MethodKind::GIndex, &config, &ds);
    let refs: Vec<&Graph> = queries.iter().collect();
    let wave = service.run_wave(&refs, None);
    for (record, query) in wave.records.iter().zip(queries.iter()) {
        assert_eq!(record.answers, oracle.query(&ds, query).answers);
    }

    // An entirely empty dataset: every shard is empty, waves still finish.
    let empty = Dataset::new("empty");
    let mut empty_service = ShardedService::new(
        MethodKind::Ggsx,
        &config,
        &empty,
        ServiceOptions::new().shards(3),
    );
    let wave = empty_service.run_wave(&refs, None);
    assert_eq!(wave.executed(), refs.len());
    assert!(wave.records.iter().all(|r| r.answers.is_empty()));

    // A closed queue sheds load instead of hanging producers.
    queue.close();
    assert_eq!(
        queue.submit(queries[0].clone(), None),
        Err(SubmitError::Closed)
    );
    let report = service.drain(&queue, None);
    assert!(report.records.is_empty());
}
