//! Smoke-scale runs of every experiment in the harness, checking the report
//! structure and the paper-level trends that are stable even at tiny scale.

use sqbench_harness::{experiments, report, ExperimentScale};

fn scale() -> ExperimentScale {
    ExperimentScale::smoke()
}

#[test]
fn table1_reproduces_dataset_regimes() {
    let t1 = experiments::table1::run(&scale());
    assert_eq!(t1.rows.len(), 4);
    let text = t1.render_text();
    assert!(text.contains("AIDS") && text.contains("PPI"));
    // Regime check: AIDS-like has (scaled) the most graphs, PPI-like the
    // largest graphs.
    let aids = t1.rows.iter().find(|r| r.dataset == "AIDS").unwrap();
    let ppi = t1.rows.iter().find(|r| r.dataset == "PPI").unwrap();
    assert!(aids.measured.graph_count > ppi.measured.graph_count);
    assert!(ppi.measured.avg_nodes > aids.measured.avg_nodes);
}

#[test]
fn fig1_real_datasets_report_structure() {
    let r = experiments::fig1_real::run(&scale());
    assert_eq!(r.points.len(), 4);
    assert_eq!(r.method_names().len(), 6);
    // Every method produced a valid false positive ratio everywhere it ran.
    for point in &r.points {
        for m in &point.results {
            assert!(m.false_positive_ratio >= 0.0 && m.false_positive_ratio <= 1.0);
        }
    }
    let csv = report::render_csv(&r);
    assert_eq!(csv.trim().lines().count(), 1 + 4 * 6);
}

#[test]
fn fig2_nodes_index_sizes_grow_with_graph_size() {
    let r = experiments::fig2_nodes::run(&scale());
    // The paper's core observation for panel (b): the path-trie indexes
    // (Grapes, GGSX) grow with the size of the graphs, and CT-Index's
    // fixed-width fingerprints stay flat. Compare the first and last sweep
    // points.
    let first = r.points.first().unwrap();
    let last = r.points.last().unwrap();
    let size_of = |p: &sqbench_harness::ExperimentPoint, m: &str| {
        p.results
            .iter()
            .find(|r| r.method == m)
            .map(|r| r.index_size_bytes)
            .unwrap_or(0)
    };
    assert!(size_of(last, "Grapes") > size_of(first, "Grapes"));
    assert!(size_of(last, "GGSX") > size_of(first, "GGSX"));
    // CT-Index stores one fixed-size fingerprint per graph: identical totals.
    assert_eq!(size_of(last, "CT-Index"), size_of(first, "CT-Index"));
}

#[test]
fn fig3_density_report_structure() {
    let r = experiments::fig3_density::run(&scale());
    assert_eq!(r.points.len(), 5);
    assert!(r.points.windows(2).all(|w| w[0].x_value < w[1].x_value));
    let text = report::render_text(&r);
    assert!(text.contains("False positive ratio"));
}

#[test]
fn fig4_produces_one_report_per_query_size() {
    let reports = experiments::fig4_query_size::run(&scale());
    assert_eq!(reports.len(), scale().query_sizes.len());
    for r in &reports {
        assert_eq!(r.points.len(), 5);
        for p in &r.points {
            assert_eq!(p.results.len(), 6);
        }
    }
}

#[test]
fn fig5_labels_more_labels_never_hurt_path_filtering() {
    let r = experiments::fig5_labels::run(&scale());
    assert_eq!(r.points.len(), 4);
    // Panel (d) trend: with more distinct labels the false positive ratio of
    // the path-based methods does not get worse (compare the extremes).
    for method in ["Grapes", "GGSX"] {
        let first = r.metrics_at(0, method).unwrap().false_positive_ratio;
        let last = r
            .metrics_at(r.points.len() - 1, method)
            .unwrap()
            .false_positive_ratio;
        assert!(
            last <= first + 0.15,
            "{method}: fp ratio grew from {first} to {last} with more labels"
        );
    }
}

#[test]
fn fig6_numgraphs_index_size_scales_roughly_linearly() {
    let r = experiments::fig6_numgraphs::run(&scale());
    assert_eq!(r.points.len(), 4);
    // Index size for the path methods grows monotonically with the number of
    // graphs (panel (b)); the FP ratio stays in range (panel (d)).
    for method in ["GGSX", "CT-Index"] {
        let sizes: Vec<usize> = (0..r.points.len())
            .map(|i| r.metrics_at(i, method).unwrap().index_size_bytes)
            .collect();
        assert!(
            sizes.windows(2).all(|w| w[0] <= w[1]),
            "{method} index size not monotone: {sizes:?}"
        );
    }
}
