//! End-to-end pipeline integration test: generate a dataset, persist it to
//! the `.gfu` text format, reload it, build indexes over the reloaded copy,
//! answer queries, and cross-check against the exhaustive baseline.

use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen, RealDataset};
use sqbench_graph::{gfu, DatasetStats};
use sqbench_index::{build_index, exhaustive_answers, MethodConfig, MethodKind};

#[test]
fn generate_persist_reload_index_query() {
    // Generate.
    let dataset = GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(25)
            .with_avg_nodes(18)
            .with_avg_density(0.12)
            .with_label_count(5)
            .with_seed(99),
    )
    .generate();

    // Persist to the text format and reload.
    let text = gfu::write_dataset(&dataset);
    let reloaded = gfu::parse_dataset(dataset.name(), &text).expect("reload succeeds");
    assert_eq!(reloaded.len(), dataset.len());
    assert_eq!(reloaded.total_edges(), dataset.total_edges());
    assert_eq!(
        DatasetStats::of(&reloaded).avg_density,
        DatasetStats::of(&dataset).avg_density
    );

    // Build two representative indexes over the *reloaded* dataset.
    let config = MethodConfig::fast();
    let grapes = build_index(MethodKind::Grapes, &config, &reloaded);
    let ctindex = build_index(MethodKind::CtIndex, &config, &reloaded);

    // Query with random-walk workloads of two sizes; answers must match the
    // exhaustive baseline and the two methods must agree with each other.
    for size in [4usize, 8] {
        let workload = QueryGen::new(3).generate(&reloaded, 4, size);
        for (query, source) in workload.iter() {
            let truth = exhaustive_answers(&reloaded, query);
            assert!(truth.contains(&source));
            let a = grapes.query(&reloaded, query);
            let b = ctindex.query(&reloaded, query);
            assert_eq!(a.answers, truth);
            assert_eq!(b.answers, truth);
        }
    }
}

#[test]
fn real_like_datasets_flow_through_the_pipeline() {
    // The four Table-1 simulators must all be indexable and queryable.
    let config = MethodConfig::fast();
    for kind in RealDataset::ALL {
        let dataset = kind.generate(0.002, 5);
        assert!(!dataset.is_empty(), "{} dataset is empty", kind.name());
        let index = build_index(MethodKind::Ggsx, &config, &dataset);
        let workload = QueryGen::new(8).generate(&dataset, 3, 4);
        for (query, _) in workload.iter() {
            let outcome = index.query(&dataset, query);
            assert_eq!(outcome.answers, exhaustive_answers(&dataset, query));
        }
    }
}

#[test]
fn index_stats_are_consistent_across_methods() {
    let dataset = GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(15)
            .with_avg_nodes(15)
            .with_avg_density(0.15)
            .with_label_count(4)
            .with_seed(17),
    )
    .generate();
    let config = MethodConfig::fast();
    for kind in MethodKind::ALL {
        let index = build_index(kind, &config, &dataset);
        let stats = index.stats();
        assert!(stats.size_bytes > 0, "{} reports zero size", kind.name());
        assert!(
            stats.distinct_features > 0,
            "{} reports zero features",
            kind.name()
        );
        assert_eq!(index.size_bytes(), stats.size_bytes);
        assert_eq!(index.kind(), kind);
    }
}
