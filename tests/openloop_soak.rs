//! Open-loop serving soak: deterministic saturation sweeps through the
//! admission door and the sharded drain loop.
//!
//! The closed-loop integration tests can never observe saturation —
//! offered load adapts to capacity by construction. This soak replays
//! seeded open-loop schedules ([`sqbench_harness::loadgen`]) at a fraction
//! of, at, and at multiples of the service's measured capacity, and pins
//! the SLO contract of the serving stack (the CI `openloop-soak` step runs
//! exactly this binary):
//!
//! * **no lost tickets** — every arrival is admitted, shed or refused, and
//!   every admitted ticket drains into exactly one record;
//! * **sheds only above capacity** — below capacity the cost-aware door
//!   admits everything; sheds appear only under real saturation;
//! * **tails track load but respect the budget** — latency percentiles
//!   grow from the unloaded baseline under saturation, yet stay bounded by
//!   the per-query deadline budget (the admission door and per-query
//!   completion refuse to let the tail run away);
//! * **a stalled shard is isolated** — per-query completion keeps the
//!   p50 of the queries that still complete near the unloaded baseline
//!   instead of gating every query on the slowest shard.
//!
//! Schedules are seeded, but wall-clock pacing makes absolute timings
//! machine-dependent; every assertion is therefore *relative* (to measured
//! capacity, to the budget, to the unloaded baseline) with wide margins.

use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph};
use sqbench_harness::loadgen::{run_open_loop, ArrivalProcess, LoadGenConfig, OpenLoopReport};
use sqbench_harness::metrics::StageTotals;
use sqbench_harness::service::{
    AdmissionQueue, FaultPlan, QueryOutcome, ServiceOptions, ShardedQueryRecord, ShardedService,
};
use sqbench_index::{MethodConfig, MethodKind};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 2;

fn setup(graphs: usize, pool: usize) -> (Dataset, Vec<Graph>) {
    let ds = GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(graphs)
            .with_avg_nodes(10)
            .with_avg_density(0.2)
            .with_label_count(6)
            .with_seed(20150831),
    )
    .generate();
    let queries = QueryGen::new(0x0be5_7e11)
        .generate(&ds, pool, 4)
        .iter()
        .map(|(q, _)| q.clone())
        .collect();
    (ds, queries)
}

fn service_on(ds: &Dataset, faults: Option<Arc<FaultPlan>>) -> ShardedService {
    let mut opts = ServiceOptions::new()
        .shards(SHARDS)
        .workers(1)
        .workers_max(2);
    if let Some(plan) = faults {
        opts = opts.faults(plan);
    }
    ShardedService::new(MethodKind::Ggsx, &MethodConfig::fast(), ds, opts)
}

/// Closed-loop calibration: mean per-query seconds when offered load
/// adapts to capacity. The saturation multipliers are relative to this,
/// so the soak exercises the same regimes on any hardware class.
fn calibrate(service: &mut ShardedService, pool: &[Graph]) -> f64 {
    let refs: Vec<&Graph> = pool.iter().collect();
    let started = std::time::Instant::now();
    let mut served = 0usize;
    for _ in 0..3 {
        served += service.run_wave(&refs, None).records.len();
    }
    (started.elapsed().as_secs_f64() / served as f64).max(1e-6)
}

struct SoakRun {
    open: OpenLoopReport,
    records: Vec<ShardedQueryRecord>,
    totals: StageTotals,
}

impl SoakRun {
    fn outcome_count(&self, want: fn(&QueryOutcome) -> bool) -> usize {
        self.records.iter().filter(|r| want(&r.outcome)).count()
    }

    /// Median end-to-end latency of the records `want` selects.
    fn median_latency_s(&self, want: fn(&QueryOutcome) -> bool) -> f64 {
        let mut lat: Vec<f64> = self
            .records
            .iter()
            .filter(|r| want(&r.outcome))
            .map(|r| r.latency_s)
            .collect();
        lat.sort_by(f64::total_cmp);
        if lat.is_empty() {
            0.0
        } else {
            lat[lat.len() / 2]
        }
    }
}

/// Replays one seeded open-loop schedule: a producer thread paces
/// `submit_or_shed` calls while this thread drains waves until the
/// schedule is exhausted and the queue is empty.
fn soak(
    service: &mut ShardedService,
    pool: &[Graph],
    queue_depth: usize,
    queries: usize,
    qps: f64,
    budget: Duration,
    seed_cost: Duration,
) -> SoakRun {
    let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(queue_depth));
    queue.cost_model().seed(seed_cost);
    let config = LoadGenConfig::new(ArrivalProcess::Poisson { qps }, queries)
        .seed(0x50a4_0b5e)
        .deadline(budget);
    let (open, records, totals) = std::thread::scope(|scope| {
        let producer = scope.spawn(|| run_open_loop(&queue, pool, &config));
        let mut records = Vec::new();
        let mut totals = StageTotals::default();
        loop {
            let wave = service.drain(&queue, None);
            let idle = wave.records.is_empty();
            totals.merge(&wave.totals);
            records.extend(wave.records);
            if producer.is_finished() && queue.is_empty() {
                break;
            }
            if idle {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let open = producer.join().expect("producer thread");
        (open, records, totals)
    });
    SoakRun {
        open,
        records,
        totals,
    }
}

/// Every arrival accounted for, every admitted ticket drained exactly once.
fn assert_no_lost_tickets(run: &SoakRun, label: &str) {
    assert_eq!(
        run.open.offered,
        run.open.admitted.len() + run.open.shed + run.open.refused,
        "{label}: open-loop accounting must cover every arrival"
    );
    let mut drained: Vec<_> = run.records.iter().map(|r| r.ticket).collect();
    drained.sort_unstable();
    assert_eq!(
        drained, run.open.admitted,
        "{label}: every admitted ticket must drain into exactly one record"
    );
}

#[test]
fn saturation_sweep_keeps_the_admission_and_latency_contract() {
    let (ds, pool) = setup(900, 8);
    let mut service = service_on(&ds, None);
    let per_query_s = calibrate(&mut service, &pool);
    let capacity_qps = 1.0 / per_query_s;
    let seed_cost = Duration::from_secs_f64(per_query_s);
    // Generous enough that an unloaded run never brushes against it,
    // tight enough that saturation must shed rather than queue forever.
    let budget = Duration::from_secs_f64((per_query_s * 16.0).max(0.005));

    let mut runs = Vec::new();
    for mult in [0.25, 2.0, 4.0] {
        runs.push(soak(
            &mut service,
            &pool,
            8,
            96,
            capacity_qps * mult,
            budget,
            seed_cost,
        ));
    }
    let [low, sat2, sat4] = runs.try_into().ok().expect("three runs");

    // No lost tickets, at every saturation level.
    assert_no_lost_tickets(&low, "0.25x");
    assert_no_lost_tickets(&sat2, "2x");
    assert_no_lost_tickets(&sat4, "4x");

    // Sheds only above capacity: the door admits everything when offered
    // load is a quarter of measured capacity, and real saturation sheds.
    assert_eq!(
        low.open.shed, 0,
        "below capacity the admission door must not shed"
    );
    assert!(
        sat4.open.shed > 0,
        "4x saturation with a bounded queue must shed at the door"
    );

    // Tail percentiles are monotone from unloaded to saturated: queueing
    // under overload must show up in the tail. The p99 comparison takes
    // the heavier of the two saturated levels with a 25% allowance — a
    // single OS-scheduling hiccup in the *unloaded* run can push its p99
    // by milliseconds on a busy one-core box, and shedding legitimately
    // trims the 4x tail below the 2x tail.
    let p99 = |run: &SoakRun| run.totals.latency_percentile(0.99);
    let p50 = |run: &SoakRun| run.totals.latency_percentile(0.50);
    assert!(
        p50(&low) <= p50(&sat2) && p50(&low) <= p50(&sat4),
        "saturated p50 ({:.4}s / {:.4}s) must not beat the unloaded p50 ({:.4}s)",
        p50(&sat2),
        p50(&sat4),
        p50(&low)
    );
    assert!(
        p99(&low) <= p99(&sat2).max(p99(&sat4)) * 1.25,
        "saturated p99 ({:.4}s / {:.4}s) must not beat the unloaded p99 ({:.4}s)",
        p99(&sat2),
        p99(&sat4),
        p99(&low)
    );
    // ... and yet bounded: per-query deadlines plus cost-aware shedding
    // cap the tail of *served* queries near the budget even at 4x offered
    // load (2x slack for finalize-sweep jitter on a loaded machine).
    for (label, run) in [("2x", &sat2), ("4x", &sat4)] {
        assert!(
            p99(run) <= budget.as_secs_f64() * 2.0,
            "{label}: p99 {:.4}s must stay near the {:.4}s budget",
            p99(run),
            budget.as_secs_f64()
        );
    }
}

#[test]
fn stalled_shard_leaves_completing_queries_near_the_unloaded_baseline() {
    let (ds, pool) = setup(900, 8);

    // Unloaded baseline: a quarter of capacity, no faults.
    let mut healthy = service_on(&ds, None);
    let per_query_s = calibrate(&mut healthy, &pool);
    let capacity_qps = 1.0 / per_query_s;
    let seed_cost = Duration::from_secs_f64(per_query_s);
    let budget = Duration::from_secs_f64((per_query_s * 16.0).max(0.005));
    // A single-slot queue keeps admitted queries right next to the
    // service: under overload, late arrivals burn their budget *at the
    // door* (and shed) rather than deep in a queue they can never clear
    // in time — so the queries that do complete carry almost no wait and
    // their latency isolates the stall's effect.
    let depth = 1;
    let baseline = soak(
        &mut healthy,
        &pool,
        depth,
        96,
        capacity_qps * 0.25,
        budget,
        seed_cost,
    );
    assert_no_lost_tickets(&baseline, "baseline");
    let complete = |o: &QueryOutcome| *o == QueryOutcome::Complete;
    let p50_baseline = baseline.median_latency_s(complete);
    assert!(p50_baseline > 0.0, "baseline must complete queries");

    // 2x saturation with shard 0 stalled for a third of the run's span:
    // queries probing the sleeping shard degrade at their deadlines, but
    // per-query completion keeps serving everyone else — the stall must
    // not gate the whole stream the way a wave barrier would.
    let queries = 128usize;
    let qps = capacity_qps * 2.0;
    let stall = Duration::from_secs_f64(queries as f64 / qps / 3.0);
    let plan = Arc::new(FaultPlan::new().stall_shard(0, stall));
    let mut stalled = service_on(&ds, Some(plan));
    let run = soak(&mut stalled, &pool, depth, queries, qps, budget, seed_cost);
    assert_no_lost_tickets(&run, "stalled");

    let completed = run.outcome_count(complete);
    let degraded = run.outcome_count(|o| matches!(o, QueryOutcome::Degraded { .. }));
    eprintln!(
        "stall soak: {} complete, {} degraded, {} shed of {} offered; \
         p50 complete {:.3} ms vs baseline {:.3} ms (stall {:.1} ms, budget {:.1} ms)",
        completed,
        degraded,
        run.open.shed,
        run.open.offered,
        run.median_latency_s(complete) * 1e3,
        p50_baseline * 1e3,
        stall.as_secs_f64() * 1e3,
        budget.as_secs_f64() * 1e3,
    );
    assert!(
        degraded > 0,
        "the stalled shard must show up as degraded answers"
    );
    assert!(
        (completed + degraded) * 4 >= run.open.admitted.len(),
        "per-query completion must keep serving during the stall: only \
         {completed} complete + {degraded} degraded of {} admitted",
        run.open.admitted.len()
    );
    assert!(
        completed > 0,
        "queries clear of the stall must still complete exactly"
    );
    // The acceptance bar: the median completing query is within 2x of the
    // unloaded baseline median — the stall is isolated to the queries that
    // actually probed the sleeping shard while it slept.
    let p50_complete = run.median_latency_s(complete);
    assert!(
        p50_complete <= p50_baseline * 2.0,
        "p50 of completing queries {:.4}s must stay within 2x of the \
         unloaded baseline {:.4}s",
        p50_complete,
        p50_baseline
    );
}
