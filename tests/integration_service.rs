//! Service-level integration tests: the pipelined batch query service must
//! agree with the serial runner on every method, and the runner's
//! service-backed batching must not change any reported correctness metric.

use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph};
use sqbench_harness::service::{QueryService, ServiceOptions};
use sqbench_harness::{run_methods, RunOptions};
use sqbench_index::{build_index, MethodConfig, MethodKind};

fn setup(graphs: usize, queries: usize) -> (Dataset, Vec<Graph>) {
    let ds = GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(graphs)
            .with_avg_nodes(14)
            .with_avg_density(0.12)
            .with_label_count(5)
            .with_seed(41),
    )
    .generate();
    let workload = QueryGen::new(17).generate(&ds, queries, 4);
    let qs = workload.iter().map(|(q, _)| q.clone()).collect();
    (ds, qs)
}

/// A 4-worker batch run returns the same per-query match counts as the
/// serial runner (one worker, workload order), for every method including
/// the scan baseline. Answer sets are exact regardless of scheduling, so
/// this holds even for Tree+Δ, whose *candidate* trajectory is
/// order-dependent.
#[test]
fn four_worker_batch_matches_serial_match_counts() {
    let (ds, queries) = setup(24, 10);
    let refs: Vec<&Graph> = queries.iter().collect();
    let config = MethodConfig::fast();
    let all_kinds = [
        MethodKind::Grapes,
        MethodKind::Ggsx,
        MethodKind::CtIndex,
        MethodKind::GIndex,
        MethodKind::TreeDelta,
        MethodKind::GCode,
        MethodKind::Scan,
    ];
    for kind in all_kinds {
        // Fresh indexes for each mode so Tree+Δ starts from the same state.
        let serial_index = build_index(kind, &config, &ds);
        let mut serial = QueryService::new(&*serial_index, &ds, ServiceOptions::new().workers(1));
        let serial_report = serial.run_batch(&refs, None);

        let pooled_index = build_index(kind, &config, &ds);
        let mut pooled = QueryService::new(&*pooled_index, &ds, ServiceOptions::new().workers(4));
        let pooled_report = pooled.run_batch(&refs, None);

        assert_eq!(pooled_report.workers, 4, "{}: worker clamp", kind.name());
        assert_eq!(serial_report.executed(), refs.len());
        assert_eq!(pooled_report.executed(), refs.len());
        for (i, (s, p)) in serial_report
            .records
            .iter()
            .zip(pooled_report.records.iter())
            .enumerate()
        {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(
                s.answer_count(),
                p.answer_count(),
                "{}: match count diverged on query {i}",
                kind.name()
            );
            assert_eq!(
                s.answers,
                p.answers,
                "{}: answer ids diverged on query {i}",
                kind.name()
            );
        }
    }
}

/// The serial service agrees with one-shot `index.query` calls — the
/// pre-service ground truth — per query, candidates included.
#[test]
fn serial_service_equals_one_shot_queries() {
    let (ds, queries) = setup(18, 8);
    let refs: Vec<&Graph> = queries.iter().collect();
    let config = MethodConfig::fast();
    for kind in MethodKind::ALL {
        let index = build_index(kind, &config, &ds);
        let mut service = QueryService::new(&*index, &ds, ServiceOptions::new().workers(1));
        let report = service.run_batch(&refs, None);
        // One-shot ground truth on a fresh index (Tree+Δ mutates while
        // querying, so the comparison index must replay the same order).
        let oracle = build_index(kind, &config, &ds);
        for (record, query) in report.records.iter().zip(queries.iter()) {
            let record = record.as_ref().unwrap();
            let outcome = oracle.query(&ds, query);
            assert_eq!(record.answers, outcome.answers, "{}", kind.name());
            assert_eq!(
                record.candidate_count,
                outcome.candidates.len(),
                "{}",
                kind.name()
            );
        }
    }
}

/// Routing the runner through the service keeps the workload-level metrics
/// of deterministic methods identical between 1 and 4 query threads.
#[test]
fn runner_batching_preserves_workload_metrics() {
    let ds = GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(15)
            .with_avg_nodes(12)
            .with_avg_density(0.15)
            .with_label_count(4)
            .with_seed(3),
    )
    .generate();
    let workloads = QueryGen::new(5).generate_all_sizes(&ds, 3, &[4, 8]);
    let kinds = [MethodKind::Ggsx, MethodKind::GIndex, MethodKind::GCode];
    let serial = run_methods(&ds, &workloads, &RunOptions::fast().with_methods(&kinds));
    let pooled = run_methods(
        &ds,
        &workloads,
        &RunOptions::fast()
            .with_methods(&kinds)
            .with_query_threads(4),
    );
    for (s, p) in serial.iter().zip(pooled.iter()) {
        assert_eq!(s.method, p.method);
        assert_eq!(s.queries_executed, p.queries_executed);
        assert!((s.false_positive_ratio - p.false_positive_ratio).abs() < 1e-12);
        assert_eq!(s.stages.candidates_pruned, p.stages.candidates_pruned);
    }
}
