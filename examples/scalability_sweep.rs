//! Scalability sweep: regenerate one of the paper's figures from the
//! command line.
//!
//! Usage:
//! ```text
//! cargo run --release --example scalability_sweep -- [fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8] [smoke|laptop|paper]
//! ```
//!
//! The first argument picks the experiment (default `fig2`, the
//! number-of-nodes sweep; `fig7` is the beyond-the-paper shard-count
//! sweep, run for all three partitioning strategies — round-robin,
//! size-balanced and label-aware; `fig8` the shard-routing sweep, fanout
//! vs. routed over a label-clustered dataset), the second the scale
//! (default `smoke`). Output is the four text panels of the figure plus a
//! CSV block that can be piped into a plotting tool. Sweeps like `fig6`
//! re-partition and truncate one generated dataset many times — cheap,
//! because datasets share graph storage (`Arc<Graph>`) instead of copying
//! it per point.

use sqbench_harness::{experiments, report, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("fig2");
    let scale = match args.get(2).map(String::as_str) {
        Some("laptop") => ExperimentScale::laptop(),
        Some("paper") => ExperimentScale::paper(),
        _ => ExperimentScale::smoke(),
    };

    let reports = match which {
        "fig1" => vec![experiments::fig1_real::run(&scale)],
        "fig2" => vec![experiments::fig2_nodes::run(&scale)],
        "fig3" => vec![experiments::fig3_density::run(&scale)],
        "fig4" => experiments::fig4_query_size::run(&scale),
        "fig5" => vec![experiments::fig5_labels::run(&scale)],
        "fig6" => vec![experiments::fig6_numgraphs::run(&scale)],
        "fig7" => vec![
            experiments::fig7_shards::run(&scale),
            experiments::fig7_shards::run_with_strategy(
                &scale,
                sqbench_harness::ShardStrategy::SizeBalanced,
            ),
            experiments::fig7_shards::run_with_strategy(
                &scale,
                sqbench_harness::ShardStrategy::LabelAware,
            ),
        ],
        "fig8" => vec![experiments::fig8_routing::run(&scale)],
        other => {
            eprintln!("unknown experiment {other:?}; use fig1..fig8");
            std::process::exit(2);
        }
    };

    for r in &reports {
        println!("{}", report::render_text(r));
        println!("--- CSV ---\n{}", report::render_csv(r));
    }
}
