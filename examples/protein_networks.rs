//! Protein-network scenario (PCM/PPI-like datasets: few, large, dense graphs).
//!
//! The paper's second motivation is exactly this regime: biological
//! interaction networks and contact maps where individual graphs are large
//! and dense enough that most indexing methods stop being practical. This
//! example generates PCM-like and PPI-like datasets (scaled down), runs the
//! methods that remain practical in that regime (the exhaustive
//! path/tree-based ones), and shows the effect of Grapes' location
//! information on verification.
//!
//! Run with:
//! ```text
//! cargo run --release --example protein_networks
//! ```

use sqbench_generator::{QueryGen, RealDataset};
use sqbench_graph::DatasetStats;
use sqbench_harness::{run_methods, RunOptions};
use sqbench_index::MethodKind;

fn main() {
    // (dataset, graph-count scale, node-count scale): PCM keeps its extreme
    // density but at a few dozen nodes per graph; PPI keeps "a handful of
    // graphs" but shrinks each one so the example runs in minutes on a
    // laptop core. The paper's full-size versions of these datasets are what
    // pushed several methods past the 8-hour limit.
    for (dataset_kind, graph_scale, node_scale) in [
        (RealDataset::Pcm, 0.05, 0.06),
        (RealDataset::Ppi, 0.05, 0.015),
    ] {
        let dataset = dataset_kind.generate_with(graph_scale, node_scale, 2024);
        let stats = DatasetStats::of(&dataset);
        println!(
            "\n=== {}-like dataset (graph scale {graph_scale}, node scale {node_scale}) ===\n  {}",
            dataset_kind.name(),
            stats.to_table_row()
        );

        let workloads = QueryGen::new(5).generate_all_sizes(&dataset, 10, &[4, 8]);

        // In this regime the paper finds only the exhaustive-enumeration
        // path-based methods practical; the mining and fingerprint methods
        // blow up on dense graphs. Shorter paths (3 edges) keep the dense
        // PCM-like graphs tractable on a single core.
        let mut options =
            RunOptions::default().with_methods(&[MethodKind::Grapes, MethodKind::Ggsx]);
        options.config.grapes.max_path_edges = 3;
        options.config.ggsx.max_path_edges = 3;
        let results = run_methods(&dataset, &workloads, &options);
        println!("method            index_time  index_size   query_time   fp_ratio");
        for metrics in &results {
            println!(
                "{:16} {:9.3}s {:9.3}MB {:11.6}s {:9.3}{}",
                metrics.method,
                metrics.indexing_time_s,
                metrics.index_size_mb(),
                metrics.avg_query_time_s,
                metrics.false_positive_ratio,
                if metrics.timed_out { "  [DNF]" } else { "" }
            );
        }

        let grapes = results.iter().find(|m| m.method == "Grapes").unwrap();
        let ggsx = results.iter().find(|m| m.method == "GGSX").unwrap();
        println!(
            "location info (Grapes vs GGSX): index {:.2}x larger, query time {:.2}x",
            grapes.index_size_bytes as f64 / ggsx.index_size_bytes.max(1) as f64,
            grapes.avg_query_time_s / ggsx.avg_query_time_s.max(1e-9),
        );
    }
}
