//! Chemical-compound screening scenario (AIDS-like dataset).
//!
//! The AIDS antiviral screen — many small, sparse, tree-like molecule
//! graphs — is the workload most subgraph-index papers report on. This
//! example generates an AIDS-like dataset (Table 1 characteristics, scaled
//! down), builds all six indexes over it, and prints the four metrics the
//! paper's Figure 1 reports for the AIDS column.
//!
//! Run with:
//! ```text
//! cargo run --release --example chemical_screen
//! ```

use sqbench_generator::{QueryGen, RealDataset};
use sqbench_graph::DatasetStats;
use sqbench_harness::{run_methods, RunOptions};

fn main() {
    // 2% of the published AIDS dataset's graph count, with the molecules at
    // their full published size (~45 nodes): ~800 small molecule-like graphs.
    let dataset = RealDataset::Aids.generate_with(0.02, 1.0, 42);
    let stats = DatasetStats::of(&dataset);
    println!("AIDS-like dataset:\n  {}", stats.to_table_row());

    // Query workloads of 4 and 8 edges (typical substructure-search sizes).
    let workloads = QueryGen::new(11).generate_all_sizes(&dataset, 20, &[4, 8]);
    println!(
        "workload: {} queries per size, sizes {:?}",
        20,
        workloads
            .iter()
            .map(|w| w.edges_per_query)
            .collect::<Vec<_>>()
    );

    // Run all six methods with the paper's default parameters.
    let results = run_methods(&dataset, &workloads, &RunOptions::default());
    println!("\nmethod            index_time  index_size   query_time   fp_ratio");
    for metrics in &results {
        println!(
            "{:16} {:9.3}s {:9.3}MB {:11.6}s {:9.3}{}",
            metrics.method,
            metrics.indexing_time_s,
            metrics.index_size_mb(),
            metrics.avg_query_time_s,
            metrics.false_positive_ratio,
            if metrics.timed_out { "  [DNF]" } else { "" }
        );
    }

    // The paper's headline for this regime: the exhaustive path-based
    // methods (Grapes, GGSX) answer queries fastest.
    let fastest = results
        .iter()
        .filter(|m| !m.timed_out)
        .min_by(|a, b| a.avg_query_time_s.total_cmp(&b.avg_query_time_s))
        .expect("at least one method finished");
    println!("\nfastest query processing: {}", fastest.method);
}
