//! Quickstart: build an index over a small synthetic dataset and answer a
//! subgraph query with it.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_index::{build_index, exhaustive_answers, MethodConfig, MethodKind};

fn main() {
    // 1. Generate a synthetic dataset: 100 connected graphs of ~30 nodes,
    //    density 0.08, 8 distinct vertex labels.
    let config = GraphGenConfig::default()
        .with_graph_count(100)
        .with_avg_nodes(30)
        .with_avg_density(0.08)
        .with_label_count(8)
        .with_seed(1);
    let dataset = GraphGen::new(config).generate();
    println!(
        "dataset: {} graphs, {} total vertices, {} total edges",
        dataset.len(),
        dataset.total_vertices(),
        dataset.total_edges()
    );

    // 2. Build a Grapes index (paths of up to 4 edges, with location info).
    let method_config = MethodConfig::default();
    let index = build_index(MethodKind::Grapes, &method_config, &dataset);
    let stats = index.stats();
    println!(
        "index: {} ({} distinct features, {:.2} MB)",
        MethodKind::Grapes.name(),
        stats.distinct_features,
        stats.size_bytes as f64 / (1024.0 * 1024.0)
    );

    // 3. Extract an 8-edge query from the dataset with a random walk and
    //    answer it through the index.
    let workload = QueryGen::new(7).generate(&dataset, 1, 8);
    let (query, source) = workload.iter().next().expect("one query was generated");
    println!(
        "query: {} vertices, {} edges (extracted from graph {})",
        query.vertex_count(),
        query.edge_count(),
        source
    );

    let outcome = index.query(&dataset, query);
    println!(
        "filtering kept {} of {} graphs; {} actually contain the query",
        outcome.candidates.len(),
        dataset.len(),
        outcome.answers.len()
    );
    println!(
        "false positive ratio for this query: {:.3}",
        outcome.false_positive_ratio()
    );

    // 4. Sanity-check against the naive method (VF2 against every graph).
    let truth = exhaustive_answers(&dataset, query);
    assert_eq!(
        outcome.answers, truth,
        "index answers must match ground truth"
    );
    println!("answers verified against the exhaustive baseline \u{2713}");
}
