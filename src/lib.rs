//! # sqbench
//!
//! Umbrella crate of the subgraph-query benchmark workspace. It re-exports
//! the member crates so integration tests and examples can drive the whole
//! pipeline (data model → feature extraction → indexes → harness) through a
//! single dependency.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use sqbench_features as features;
pub use sqbench_generator as generator;
pub use sqbench_graph as graph;
pub use sqbench_harness as harness;
pub use sqbench_index as index;
pub use sqbench_iso as iso;
