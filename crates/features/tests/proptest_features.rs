//! Property-based tests for the feature-extraction layer.
//!
//! The load-bearing invariant of every filter-and-verify index is that
//! canonical keys behave like isomorphism classes: two fragments get the
//! same key exactly when they are isomorphic, and any feature of a query is
//! also a feature of every graph containing the query. These properties are
//! checked here with VF2 as the isomorphism oracle.

use proptest::prelude::*;
use sqbench_features::canonical::{graph_key, tree_key};
use sqbench_features::cycles::enumerate_cycles;
use sqbench_features::mining::{FeatureKind, MiningConfig};
use sqbench_features::paths::{enumerate_paths, for_each_path};
use sqbench_features::subgraphs::enumerate_connected_subgraphs;
use sqbench_features::trees::enumerate_trees;
use sqbench_features::{Fingerprint, FrequentMiner};
use sqbench_graph::{Dataset, Graph};
use sqbench_iso::vf2;

/// Random connected labeled graph with up to `max_n` vertices.
fn arb_connected_graph(max_n: usize, max_labels: u32) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..max_labels, n);
        let parents: Vec<_> = (1..n).map(|v| 0..v).collect();
        let extra = proptest::collection::vec(any::<bool>(), n * (n - 1) / 2);
        (labels, parents, extra).prop_map(move |(labels, parents, extra)| {
            let mut g = Graph::new("prop");
            for &l in &labels {
                g.add_vertex(l);
            }
            for (v, p) in parents.into_iter().enumerate() {
                g.add_edge(p, v + 1).unwrap();
            }
            let mut k = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if extra[k] {
                        let _ = g.add_edge_if_absent(u, v);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

/// A random relabeling (isomorphic copy) of a graph.
fn shuffled_copy(g: &Graph, seed: u64) -> Graph {
    let n = g.vertex_count();
    // Deterministic permutation derived from the seed.
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    for i in (1..n).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let j = (state >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    let mut copy = Graph::new("copy");
    let mut inverse = vec![0usize; n];
    for (old, &new_pos) in perm.iter().enumerate() {
        inverse[new_pos] = old;
    }
    for &old in &inverse {
        copy.add_vertex(g.label(old));
    }
    for (u, v) in g.edges() {
        copy.add_edge(perm[u], perm[v]).unwrap();
    }
    copy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Isomorphic graphs (random relabelings) always receive the same
    /// canonical key; graphs whose keys match are indeed isomorphic per VF2.
    #[test]
    fn canonical_key_is_an_isomorphism_invariant(
        g in arb_connected_graph(7, 3),
        seed in 0u64..1000,
    ) {
        let copy = shuffled_copy(&g, seed);
        prop_assert_eq!(graph_key(&g), graph_key(&copy));
        // VF2 in both directions confirms the copy really is isomorphic.
        prop_assert!(vf2::has_subgraph_embedding(&g, &copy));
        prop_assert!(vf2::has_subgraph_embedding(&copy, &g));
    }

    /// Two graphs with equal canonical keys are isomorphic (checked via
    /// containment in both directions), and non-isomorphic graphs of the
    /// same size get different keys.
    #[test]
    fn equal_keys_imply_isomorphism(
        a in arb_connected_graph(6, 2),
        b in arb_connected_graph(6, 2),
    ) {
        let isomorphic = a.vertex_count() == b.vertex_count()
            && a.edge_count() == b.edge_count()
            && vf2::has_subgraph_embedding(&a, &b)
            && vf2::has_subgraph_embedding(&b, &a);
        prop_assert_eq!(graph_key(&a) == graph_key(&b), isomorphic);
    }

    /// Every feature of a subgraph is a feature of its supergraph: paths,
    /// trees, cycles and general fragments enumerated from an induced
    /// subgraph all appear among the supergraph's features.
    #[test]
    fn features_are_monotone_under_containment(
        g in arb_connected_graph(8, 3),
        keep in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let vertices: Vec<usize> = g
            .vertices()
            .filter(|&v| keep.get(v).copied().unwrap_or(false))
            .collect();
        let sub = g.induced_subgraph(&vertices);
        // Paths.
        let sub_paths = enumerate_paths(&sub, 3);
        let super_paths = enumerate_paths(&g, 3);
        for (key, occ) in sub_paths.iter() {
            let sup = super_paths.get(key);
            prop_assert!(sup.is_some(), "path {key} missing from supergraph");
            prop_assert!(sup.unwrap().count >= occ.count);
        }
        // Trees.
        let sub_trees = enumerate_trees(&sub, 3);
        let super_trees = enumerate_trees(&g, 3);
        for (key, count) in &sub_trees {
            prop_assert!(super_trees.get(key).is_some_and(|c| c >= count));
        }
        // Cycles.
        let sub_cycles = enumerate_cycles(&sub, 4);
        let super_cycles = enumerate_cycles(&g, 4);
        for (key, count) in &sub_cycles {
            prop_assert!(super_cycles.get(key).is_some_and(|c| c >= count));
        }
        // General connected fragments.
        let sub_frags = enumerate_connected_subgraphs(&sub, 2);
        let super_frags = enumerate_connected_subgraphs(&g, 2);
        for (key, count) in &sub_frags {
            prop_assert!(super_frags.get(key).is_some_and(|c| c >= count));
        }
    }

    /// Tree enumeration is exactly the acyclic subset of subgraph
    /// enumeration (same fragment count for acyclic shapes).
    #[test]
    fn trees_are_a_subset_of_subgraphs(g in arb_connected_graph(7, 3)) {
        let trees = enumerate_trees(&g, 3);
        let subgraphs = enumerate_connected_subgraphs(&g, 3);
        // Total tree subsets can never exceed total connected subsets.
        let tree_total: usize = trees.values().sum();
        let subgraph_total: usize = subgraphs.values().sum();
        prop_assert!(tree_total <= subgraph_total);
    }

    /// The number of directed traversals emitted by `for_each_path` equals
    /// the sum of occurrence counts recorded by `enumerate_paths`.
    #[test]
    fn path_counts_are_consistent(g in arb_connected_graph(7, 3)) {
        let mut traversals = 0usize;
        for_each_path(&g, 3, |_, _| traversals += 1);
        let set = enumerate_paths(&g, 3);
        let counted: usize = set.iter().map(|(_, occ)| occ.count).sum();
        prop_assert_eq!(traversals, counted);
    }

    /// A graph's fingerprint always covers the fingerprint of any of its
    /// induced subgraphs (the CT-Index filtering invariant).
    #[test]
    fn fingerprints_cover_subgraph_fingerprints(
        g in arb_connected_graph(8, 3),
        keep in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let vertices: Vec<usize> = g
            .vertices()
            .filter(|&v| keep.get(v).copied().unwrap_or(false))
            .collect();
        let sub = g.induced_subgraph(&vertices);
        let build = |graph: &Graph| {
            let mut fp = Fingerprint::new(1024);
            for (key, _) in enumerate_trees(graph, 3) {
                fp.insert_key(&key, 1);
            }
            for (key, _) in enumerate_cycles(graph, 4) {
                fp.insert_key(&key, 1);
            }
            fp
        };
        prop_assert!(build(&g).covers(&build(&sub)));
    }

    /// Lowering the support threshold can only add mined features, never
    /// remove them, and every mined feature's support is correct w.r.t. a
    /// direct VF2 check.
    #[test]
    fn mining_monotone_in_support_and_supports_are_sound(seed in 0u64..300) {
        // Small deterministic dataset derived from the seed.
        let graphs: Vec<Graph> = (0..5)
            .map(|i| {
                let mut g = Graph::new(format!("g{i}"));
                let n = 4 + ((seed as usize + i) % 3);
                for v in 0..n {
                    g.add_vertex(((seed as usize + v + i) % 3) as u32);
                }
                for v in 1..n {
                    g.add_edge(v - 1, v).unwrap();
                }
                if n >= 3 && (seed + i as u64).is_multiple_of(2) {
                    let _ = g.add_edge_if_absent(0, 2);
                }
                g
            })
            .collect();
        let ds = Dataset::from_graphs("mine", graphs);
        let strict = FrequentMiner::new(MiningConfig {
            max_feature_edges: 2,
            min_support_ratio: 0.6,
            discriminative_ratio: 1.0,
            kind: FeatureKind::Tree,
        })
        .mine(&ds);
        let relaxed = FrequentMiner::new(MiningConfig {
            max_feature_edges: 2,
            min_support_ratio: 0.2,
            discriminative_ratio: 1.0,
            kind: FeatureKind::Tree,
        })
        .mine(&ds);
        for key in strict.keys() {
            prop_assert!(relaxed.contains_key(key));
        }
        // Support lists are exactly the graphs containing the fragment.
        for feature in relaxed.values() {
            for gid in ds.ids() {
                let contains =
                    vf2::has_subgraph_embedding(&feature.fragment, ds.graph(gid).unwrap());
                prop_assert_eq!(
                    contains,
                    feature.supporting_graphs.contains(&gid),
                    "support list wrong for {}", feature.key
                );
            }
        }
        // Tree keys come from the tree namespace.
        for feature in relaxed.values() {
            prop_assert!(feature.key.as_str().starts_with("T:"));
            let _ = tree_key(&feature.fragment); // must not panic: fragments are trees
        }
    }
}
