//! # sqbench-features
//!
//! Feature-extraction machinery shared by the six indexing methods evaluated
//! in the VLDB 2015 paper. A *feature* is a small substructure of an indexed
//! graph — a path, tree, simple cycle, or general connected subgraph — whose
//! presence in dataset graphs is recorded by the index and matched against
//! the features of incoming query graphs during filtering.
//!
//! The crate provides:
//!
//! * [`canonical`] — canonical labels for paths, trees (AHU encoding), simple
//!   cycles, and arbitrary small connected graphs (ordered-permutation
//!   canonical form). Two isomorphic features always receive the same
//!   canonical key, which is what makes cross-graph feature matching sound.
//! * [`paths`] — exhaustive enumeration of simple paths up to a maximum
//!   length, with per-graph occurrence counts and start-vertex location
//!   information (used by GraphGrepSX and Grapes).
//! * [`trees`] — exhaustive enumeration of subtrees up to a maximum number
//!   of edges (used by CT-Index and Tree+Δ).
//! * [`cycles`] — exhaustive enumeration of simple cycles up to a maximum
//!   length (used by CT-Index and Tree+Δ's Δ features).
//! * [`subgraphs`] — exhaustive enumeration of connected subgraphs up to a
//!   maximum number of edges (used by gIndex).
//! * [`mining`] — frequent-feature mining with support-ratio and
//!   discriminative-ratio pruning (used by gIndex and Tree+Δ).
//! * [`fingerprint`] — fixed-width bit-array fingerprints hashed from
//!   canonical keys (used by CT-Index).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod canonical;
pub mod cycles;
pub mod fingerprint;
pub mod mining;
pub mod paths;
pub mod subgraphs;
pub mod trees;

pub use canonical::FeatureKey;
pub use fingerprint::Fingerprint;
pub use mining::{FrequentFeature, FrequentMiner, MiningConfig};
pub use paths::{PathOccurrences, PathSet};
