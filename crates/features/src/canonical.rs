//! Canonical labels for graph features.
//!
//! Every index method in the paper identifies features by a *canonical
//! label*: a representation that is identical for any two isomorphic
//! features, so that a path/tree/subgraph extracted from a query can be
//! matched against the same structure extracted from a dataset graph no
//! matter how the vertices happened to be numbered.
//!
//! The encodings used here are:
//!
//! * **Paths** — the vertex-label sequence, taken as the lexicographic
//!   minimum of the sequence and its reverse (a path read from either end is
//!   the same path).
//! * **Simple cycles** — the label sequence around the cycle, minimized over
//!   all rotations and both directions.
//! * **Trees** — the AHU ("parenthesis") encoding of the free tree, rooted
//!   at its center (or at the lexicographically smaller of the two center
//!   encodings when the tree has two centers). Linear-time and exact.
//! * **General connected graphs** — an ordered-permutation canonical form:
//!   the minimum, over all vertex orderings consistent with the
//!   isomorphism-invariant sort key `(label, degree)`, of the string
//!   `labels ++ adjacency bits`. Exact, and fast for the small fragments
//!   (≤ ~10 vertices) produced by feature enumeration; larger graphs fall
//!   back to a Weisfeiler–Lehman style refinement encoding which is only
//!   used for statistics, never for correctness-critical dedup of small
//!   features.

use sqbench_graph::{Graph, Label, VertexId};
use std::collections::BTreeMap;

/// A canonical key identifying a feature. Keys embed the feature kind
/// (path / tree / cycle / graph) so that different feature types never
/// collide in a shared map.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FeatureKey(String);

impl FeatureKey {
    /// Builds a key from a raw encoded string. Exposed for index methods
    /// that assemble their own composite keys (e.g. labelled fingerprints).
    pub fn from_raw(raw: impl Into<String>) -> Self {
        FeatureKey(raw.into())
    }

    /// The underlying encoded string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Number of bytes in the encoded representation; used for index-size
    /// accounting.
    pub fn len_bytes(&self) -> usize {
        self.0.len()
    }
}

impl std::fmt::Display for FeatureKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Canonical key of a simple path given its vertex-label sequence.
pub fn path_key(labels: &[Label]) -> FeatureKey {
    let reversed: Vec<Label> = labels.iter().rev().copied().collect();
    let canonical = if reversed.as_slice() < labels {
        reversed
    } else {
        labels.to_vec()
    };
    FeatureKey(format!("P:{}", join_labels(&canonical)))
}

/// Canonical key of a simple cycle given the label sequence around it
/// (first vertex *not* repeated at the end). Minimizes over all rotations
/// and both traversal directions.
pub fn cycle_key(labels: &[Label]) -> FeatureKey {
    assert!(
        labels.len() >= 3,
        "a simple cycle has at least three vertices"
    );
    let n = labels.len();
    let mut best: Option<Vec<Label>> = None;
    for reverse in [false, true] {
        let seq: Vec<Label> = if reverse {
            labels.iter().rev().copied().collect()
        } else {
            labels.to_vec()
        };
        for start in 0..n {
            let rotated: Vec<Label> = (0..n).map(|i| seq[(start + i) % n]).collect();
            if best.as_ref().is_none_or(|b| &rotated < b) {
                best = Some(rotated);
            }
        }
    }
    FeatureKey(format!("C:{}", join_labels(&best.unwrap())))
}

/// Canonical key of a free tree (a connected acyclic [`Graph`]), using the
/// AHU encoding rooted at the tree's center.
///
/// # Panics
/// Panics if the graph is not a tree (i.e. not connected or contains a
/// cycle); callers enumerate trees so this is a programming error.
pub fn tree_key(tree: &Graph) -> FeatureKey {
    let n = tree.vertex_count();
    assert!(n > 0, "empty graph is not a tree");
    assert_eq!(
        tree.edge_count(),
        n - 1,
        "graph is not a tree (edge count mismatch)"
    );
    let centers = tree_centers(tree);
    let encoding = centers
        .iter()
        .map(|&c| ahu_encode(tree, c, usize::MAX))
        .min()
        .expect("a tree has at least one center");
    FeatureKey(format!("T:{encoding}"))
}

/// Canonical key of an arbitrary small connected graph.
pub fn graph_key(g: &Graph) -> FeatureKey {
    FeatureKey(format!("G:{}", graph_canonical_string(g)))
}

/// Maximum number of vertices for which the exact permutation-based
/// canonical form is attempted; larger graphs use the WL fallback.
pub const MAX_EXACT_CANON_VERTICES: usize = 10;

/// Canonical string of an arbitrary graph: exact for graphs with up to
/// [`MAX_EXACT_CANON_VERTICES`] vertices, Weisfeiler–Lehman based beyond
/// that (prefixed so exact and approximate encodings cannot collide).
pub fn graph_canonical_string(g: &Graph) -> String {
    if g.vertex_count() <= MAX_EXACT_CANON_VERTICES {
        exact_canonical_string(g)
    } else {
        format!("wl:{}", wl_refinement_string(g, 3))
    }
}

fn join_labels(labels: &[Label]) -> String {
    labels
        .iter()
        .map(|l| l.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// The center vertex (or two center vertices) of a tree, found by repeatedly
/// stripping leaves.
fn tree_centers(tree: &Graph) -> Vec<VertexId> {
    let n = tree.vertex_count();
    if n == 1 {
        return vec![0];
    }
    let mut degree: Vec<usize> = (0..n).map(|v| tree.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut leaves: Vec<VertexId> = (0..n).filter(|&v| degree[v] <= 1).collect();
    let mut remaining = n;
    while remaining > 2 {
        let mut next = Vec::new();
        for &leaf in &leaves {
            removed[leaf] = true;
            remaining -= 1;
            for &w in tree.neighbors(leaf) {
                if !removed[w] {
                    degree[w] -= 1;
                    if degree[w] == 1 {
                        next.push(w);
                    }
                }
            }
        }
        leaves = next;
    }
    (0..n).filter(|&v| !removed[v]).collect()
}

/// AHU encoding of the subtree rooted at `root`, where `parent` is the
/// vertex we arrived from (`usize::MAX` for the actual root).
fn ahu_encode(tree: &Graph, root: VertexId, parent: VertexId) -> String {
    let mut child_encodings: Vec<String> = tree
        .neighbors(root)
        .iter()
        .filter(|&&w| w != parent)
        .map(|&w| ahu_encode(tree, w, root))
        .collect();
    child_encodings.sort();
    format!("({}{})", tree.label(root), child_encodings.concat())
}

/// Exact canonical string by minimizing over all vertex orderings that are
/// consistent with the isomorphism-invariant sort key `(label, degree)`.
fn exact_canonical_string(g: &Graph) -> String {
    let n = g.vertex_count();
    if n == 0 {
        return "empty".to_string();
    }
    // Partition vertices into classes by (label, degree). Only orderings
    // that keep the classes in sorted order are considered; permutations are
    // generated within each class.
    let mut classes: BTreeMap<(Label, usize), Vec<VertexId>> = BTreeMap::new();
    for v in g.vertices() {
        classes
            .entry((g.label(v), g.degree(v)))
            .or_default()
            .push(v);
    }
    let class_list: Vec<Vec<VertexId>> = classes.into_values().collect();

    let mut best: Option<String> = None;
    let mut ordering: Vec<VertexId> = Vec::with_capacity(n);
    permute_classes(g, &class_list, 0, &mut ordering, &mut best);
    best.expect("at least one ordering exists")
}

/// Recursively generates orderings class by class and keeps the minimal
/// encoded string.
fn permute_classes(
    g: &Graph,
    classes: &[Vec<VertexId>],
    class_idx: usize,
    ordering: &mut Vec<VertexId>,
    best: &mut Option<String>,
) {
    if class_idx == classes.len() {
        let encoded = encode_ordering(g, ordering);
        if best.as_ref().is_none_or(|b| &encoded < b) {
            *best = Some(encoded);
        }
        return;
    }
    let class = &classes[class_idx];
    let mut perm: Vec<VertexId> = class.clone();
    permute_within(g, classes, class_idx, &mut perm, 0, ordering, best);
}

fn permute_within(
    g: &Graph,
    classes: &[Vec<VertexId>],
    class_idx: usize,
    perm: &mut Vec<VertexId>,
    k: usize,
    ordering: &mut Vec<VertexId>,
    best: &mut Option<String>,
) {
    if k == perm.len() {
        let before = ordering.len();
        ordering.extend_from_slice(perm);
        permute_classes(g, classes, class_idx + 1, ordering, best);
        ordering.truncate(before);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute_within(g, classes, class_idx, perm, k + 1, ordering, best);
        perm.swap(k, i);
    }
}

/// Encodes a full vertex ordering as `labels|upper-triangular adjacency`.
fn encode_ordering(g: &Graph, ordering: &[VertexId]) -> String {
    let n = ordering.len();
    let mut out = String::with_capacity(n * 3 + n * n / 2);
    for &v in ordering {
        out.push_str(&g.label(v).to_string());
        out.push(',');
    }
    out.push('|');
    for i in 0..n {
        for j in (i + 1)..n {
            out.push(if g.has_edge(ordering[i], ordering[j]) {
                '1'
            } else {
                '0'
            });
        }
    }
    out
}

/// Weisfeiler–Lehman refinement encoding: iteratively replaces each vertex's
/// color with a hash of its own color and the multiset of neighbor colors,
/// then returns the sorted multiset of final colors. Not a true canonical
/// form (rare non-isomorphic graphs may collide) — used only as a fallback
/// for features too large for the exact encoder.
fn wl_refinement_string(g: &Graph, rounds: usize) -> String {
    let mut colors: Vec<u64> = g.labels().iter().map(|&l| l as u64).collect();
    for _ in 0..rounds {
        let mut next = Vec::with_capacity(colors.len());
        for v in g.vertices() {
            let mut neighbor_colors: Vec<u64> = g.neighbors(v).iter().map(|&w| colors[w]).collect();
            neighbor_colors.sort_unstable();
            let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ colors[v];
            for c in neighbor_colors {
                h = h.wrapping_mul(0x1000_0000_01b3).wrapping_add(c);
            }
            next.push(h);
        }
        colors = next;
    }
    let mut sorted = colors;
    sorted.sort_unstable();
    sorted
        .iter()
        .map(|c| format!("{c:x}"))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::GraphBuilder;

    #[test]
    fn path_key_is_direction_independent() {
        assert_eq!(path_key(&[1, 2, 3]), path_key(&[3, 2, 1]));
        assert_ne!(path_key(&[1, 2, 3]), path_key(&[1, 3, 2]));
        assert!(path_key(&[5]).as_str().starts_with("P:"));
    }

    #[test]
    fn cycle_key_is_rotation_and_reflection_independent() {
        let base = cycle_key(&[1, 2, 3, 4]);
        assert_eq!(base, cycle_key(&[2, 3, 4, 1]));
        assert_eq!(base, cycle_key(&[4, 3, 2, 1]));
        assert_eq!(base, cycle_key(&[3, 2, 1, 4]));
        assert_ne!(base, cycle_key(&[1, 3, 2, 4]));
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn cycle_key_rejects_short_sequences() {
        cycle_key(&[1, 2]);
    }

    fn star(center_label: Label, leaf_labels: &[Label]) -> Graph {
        let mut b = GraphBuilder::new("star").vertex(center_label);
        for &l in leaf_labels {
            b = b.vertex(l);
        }
        for i in 0..leaf_labels.len() {
            b = b.edge(0, i + 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn tree_key_ignores_vertex_numbering() {
        // Same star with leaves listed in different orders.
        let a = star(9, &[1, 2, 3]);
        let b = star(9, &[3, 1, 2]);
        assert_eq!(tree_key(&a), tree_key(&b));
    }

    #[test]
    fn tree_key_distinguishes_different_shapes() {
        // Path a-b-c-d vs star with 3 leaves: same size, different shape.
        let path = GraphBuilder::new("p")
            .vertices(&[1, 1, 1, 1])
            .edges(&[(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        let s = star(1, &[1, 1, 1]);
        assert_ne!(tree_key(&path), tree_key(&s));
    }

    #[test]
    fn tree_key_distinguishes_labels() {
        let a = star(1, &[2, 2]);
        let b = star(2, &[1, 1]);
        assert_ne!(tree_key(&a), tree_key(&b));
    }

    #[test]
    fn tree_key_two_center_path() {
        // Even-length path has two centers; both rootings must agree across
        // isomorphic copies.
        let a = GraphBuilder::new("p4")
            .vertices(&[1, 2, 3, 4])
            .edges(&[(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        let b = GraphBuilder::new("p4r")
            .vertices(&[4, 3, 2, 1])
            .edges(&[(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        assert_eq!(tree_key(&a), tree_key(&b));
    }

    #[test]
    #[should_panic(expected = "not a tree")]
    fn tree_key_rejects_cyclic_graph() {
        let g = GraphBuilder::new("tri")
            .vertices(&[0, 0, 0])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        tree_key(&g);
    }

    #[test]
    fn graph_key_matches_for_isomorphic_graphs() {
        // The same 4-cycle with chords, numbered two different ways.
        let a = GraphBuilder::new("a")
            .vertices(&[1, 2, 1, 2])
            .edges(&[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
            .build()
            .unwrap();
        let b = GraphBuilder::new("b")
            .vertices(&[2, 1, 2, 1])
            .edges(&[(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
            .build()
            .unwrap();
        assert_eq!(graph_key(&a), graph_key(&b));
    }

    #[test]
    fn graph_key_differs_for_non_isomorphic_graphs() {
        let path = GraphBuilder::new("p")
            .vertices(&[1, 1, 1, 1])
            .edges(&[(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        let cycle = GraphBuilder::new("c")
            .vertices(&[1, 1, 1, 1])
            .edges(&[(0, 1), (1, 2), (2, 3), (3, 0)])
            .build()
            .unwrap();
        assert_ne!(graph_key(&path), graph_key(&cycle));
    }

    #[test]
    fn graph_key_sensitive_to_labels() {
        let a = GraphBuilder::new("a")
            .vertices(&[1, 2])
            .edge(0, 1)
            .build()
            .unwrap();
        let b = GraphBuilder::new("b")
            .vertices(&[1, 3])
            .edge(0, 1)
            .build()
            .unwrap();
        assert_ne!(graph_key(&a), graph_key(&b));
    }

    #[test]
    fn large_graph_uses_wl_fallback() {
        let mut b = GraphBuilder::new("big");
        for i in 0..(MAX_EXACT_CANON_VERTICES + 5) {
            b = b.vertex((i % 3) as Label);
        }
        for i in 1..(MAX_EXACT_CANON_VERTICES + 5) {
            b = b.edge(i - 1, i);
        }
        let g = b.build().unwrap();
        assert!(graph_canonical_string(&g).starts_with("wl:"));
    }

    #[test]
    fn feature_key_kinds_do_not_collide() {
        // A single edge viewed as a path, a tree and a graph must produce
        // three distinct keys (they live in different key namespaces).
        let edge = GraphBuilder::new("e")
            .vertices(&[1, 2])
            .edge(0, 1)
            .build()
            .unwrap();
        let p = path_key(&[1, 2]);
        let t = tree_key(&edge);
        let g = graph_key(&edge);
        assert_ne!(p, t);
        assert_ne!(t, g);
        assert_ne!(p, g);
    }

    #[test]
    fn feature_key_display_and_len() {
        let k = path_key(&[1, 2, 3]);
        assert_eq!(format!("{k}"), k.as_str());
        assert_eq!(k.len_bytes(), k.as_str().len());
        let raw = FeatureKey::from_raw("X:custom");
        assert_eq!(raw.as_str(), "X:custom");
    }
}
