//! Exhaustive enumeration of connected subgraphs (edge subsets).
//!
//! gIndex's features are general connected graph fragments; CT-Index and
//! Tree+Δ restrict themselves to trees (and cycles). Both restrictions are
//! built on the same primitive: enumerate every connected subset of up to
//! `max_edges` edges of a graph, exactly once. This module provides that
//! primitive plus the convenience wrapper that groups fragments by canonical
//! key.

use crate::canonical::{graph_key, FeatureKey};
use sqbench_graph::{Graph, VertexId};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// An edge of the host graph identified by its endpoints with `u < v`.
pub type EdgeRef = (VertexId, VertexId);

/// Calls `visit` exactly once for every connected subset of at most
/// `max_edges` edges of `g` (subsets of size ≥ 1). The subset is passed as a
/// sorted slice of `(u, v)` pairs with `u < v`.
///
/// When `acyclic_only` is true, only subsets that form trees are visited
/// (the extension step never closes a cycle), which is both a correctness
/// filter and a large pruning win for tree-feature enumeration.
pub fn for_each_connected_edge_subset<F>(
    g: &Graph,
    max_edges: usize,
    acyclic_only: bool,
    mut visit: F,
) where
    F: FnMut(&[EdgeRef]),
{
    if max_edges == 0 {
        return;
    }
    let edges: Vec<EdgeRef> = g.edges().collect();
    let mut seen: HashSet<Vec<u32>> = HashSet::new();
    for (i, &first) in edges.iter().enumerate() {
        let mut subset: Vec<usize> = vec![i];
        let mut vertices: BTreeSet<VertexId> = BTreeSet::new();
        vertices.insert(first.0);
        vertices.insert(first.1);
        emit(&edges, &subset, &mut seen, &mut visit);
        extend(
            g,
            &edges,
            i,
            max_edges,
            acyclic_only,
            &mut subset,
            &mut vertices,
            &mut seen,
            &mut visit,
        );
    }
}

/// Reports the subset through `visit` if it has not been produced before.
fn emit<F>(edges: &[EdgeRef], subset: &[usize], seen: &mut HashSet<Vec<u32>>, visit: &mut F) -> bool
where
    F: FnMut(&[EdgeRef]),
{
    let mut key: Vec<u32> = subset.iter().map(|&i| i as u32).collect();
    key.sort_unstable();
    if !seen.insert(key) {
        return false;
    }
    let mut resolved: Vec<EdgeRef> = subset.iter().map(|&i| edges[i]).collect();
    resolved.sort_unstable();
    visit(&resolved);
    true
}

#[allow(clippy::too_many_arguments)]
// `g` is threaded through the recursion for the emit callback's sake.
#[allow(clippy::only_used_in_recursion)]
fn extend<F>(
    g: &Graph,
    edges: &[EdgeRef],
    min_edge: usize,
    max_edges: usize,
    acyclic_only: bool,
    subset: &mut Vec<usize>,
    vertices: &mut BTreeSet<VertexId>,
    seen: &mut HashSet<Vec<u32>>,
    visit: &mut F,
) where
    F: FnMut(&[EdgeRef]),
{
    if subset.len() >= max_edges {
        return;
    }
    // Candidate extensions: edges with index > min_edge (so each subset is
    // rooted at its minimum edge) that touch the current vertex set and are
    // not already included.
    for (j, &(u, v)) in edges.iter().enumerate().skip(min_edge + 1) {
        if subset.contains(&j) {
            continue;
        }
        let touches_u = vertices.contains(&u);
        let touches_v = vertices.contains(&v);
        if !touches_u && !touches_v {
            continue;
        }
        if acyclic_only && touches_u && touches_v {
            // Both endpoints already present: adding this edge closes a cycle.
            continue;
        }
        subset.push(j);
        let added_u = vertices.insert(u);
        let added_v = vertices.insert(v);
        if emit(edges, subset, seen, visit) {
            extend(
                g,
                edges,
                min_edge,
                max_edges,
                acyclic_only,
                subset,
                vertices,
                seen,
                visit,
            );
        }
        if added_u {
            vertices.remove(&u);
        }
        if added_v {
            vertices.remove(&v);
        }
        subset.pop();
    }
}

/// Builds a standalone [`Graph`] from a connected edge subset of `g`.
/// Vertices are renumbered densely; labels are preserved.
pub fn subgraph_from_edges(g: &Graph, edges: &[EdgeRef]) -> Graph {
    let mut mapping: BTreeMap<VertexId, VertexId> = BTreeMap::new();
    let mut sub = Graph::with_capacity("fragment", edges.len() + 1);
    for &(u, v) in edges {
        for w in [u, v] {
            mapping
                .entry(w)
                .or_insert_with(|| sub.add_vertex(g.label(w)));
        }
    }
    for &(u, v) in edges {
        let su = mapping[&u];
        let sv = mapping[&v];
        let _ = sub.add_edge_if_absent(su, sv);
    }
    sub
}

/// Enumerates all connected subgraphs of up to `max_edges` edges and groups
/// them by canonical key, counting the number of distinct edge subsets that
/// realize each key.
pub fn enumerate_connected_subgraphs(g: &Graph, max_edges: usize) -> BTreeMap<FeatureKey, usize> {
    let mut out: BTreeMap<FeatureKey, usize> = BTreeMap::new();
    for_each_connected_edge_subset(g, max_edges, false, |edges| {
        let fragment = subgraph_from_edges(g, edges);
        *out.entry(graph_key(&fragment)).or_insert(0) += 1;
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::GraphBuilder;

    fn triangle() -> Graph {
        GraphBuilder::new("tri")
            .vertices(&[1, 2, 3])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap()
    }

    fn path4() -> Graph {
        GraphBuilder::new("p4")
            .vertices(&[0, 0, 0, 0])
            .edges(&[(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap()
    }

    #[test]
    fn triangle_edge_subsets() {
        // Connected subsets of a triangle: 3 single edges, 3 two-edge paths,
        // 1 full triangle = 7.
        let mut count = 0;
        for_each_connected_edge_subset(&triangle(), 3, false, |_| count += 1);
        assert_eq!(count, 7);
    }

    #[test]
    fn triangle_acyclic_subsets() {
        // Acyclic subsets exclude the full triangle: 6.
        let mut count = 0;
        for_each_connected_edge_subset(&triangle(), 3, true, |_| count += 1);
        assert_eq!(count, 6);
    }

    #[test]
    fn subsets_are_unique_and_connected() {
        let g = path4();
        let mut seen = std::collections::HashSet::new();
        for_each_connected_edge_subset(&g, 3, false, |edges| {
            assert!(seen.insert(edges.to_vec()), "duplicate subset {edges:?}");
            let sub = subgraph_from_edges(&g, edges);
            assert!(sqbench_graph::algo::is_connected(&sub));
        });
        // Path with 3 edges: subsets = 3 singles + 2 pairs + 1 triple = 6.
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn max_edges_zero_visits_nothing() {
        let mut count = 0;
        for_each_connected_edge_subset(&triangle(), 0, false, |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn max_edges_one_visits_each_edge() {
        let mut count = 0;
        for_each_connected_edge_subset(&path4(), 1, false, |edges| {
            assert_eq!(edges.len(), 1);
            count += 1;
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn subgraph_from_edges_preserves_labels() {
        let g = triangle();
        let sub = subgraph_from_edges(&g, &[(0, 1), (1, 2)]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        let mut labels: Vec<u32> = sub.labels().to_vec();
        labels.sort_unstable();
        assert_eq!(labels, vec![1, 2, 3]);
    }

    #[test]
    fn canonical_grouping_counts_isomorphic_fragments() {
        // Path 0-0-0-0: single-edge fragments are all (0,0) -> one key with
        // count 3; two-edge fragments are all (0,0,0) -> one key count 2;
        // three-edge fragment -> one key count 1.
        let groups = enumerate_connected_subgraphs(&path4(), 3);
        assert_eq!(groups.len(), 3);
        let counts: Vec<usize> = groups.values().copied().collect();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn disconnected_host_graph_only_yields_connected_fragments() {
        let g = GraphBuilder::new("2e")
            .vertices(&[1, 1, 1, 1])
            .edges(&[(0, 1), (2, 3)])
            .build()
            .unwrap();
        let mut max_size = 0;
        for_each_connected_edge_subset(&g, 4, false, |edges| {
            max_size = max_size.max(edges.len());
        });
        // The two edges are disconnected from each other, so no subset has
        // more than one edge.
        assert_eq!(max_size, 1);
    }
}
