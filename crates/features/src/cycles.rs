//! Exhaustive enumeration of simple cycles.
//!
//! CT-Index hashes the canonical labels of simple cycles (alongside trees)
//! into its fingerprints, and Tree+Δ enumerates the simple cycles of query
//! graphs to build its on-demand Δ features. Cycle length is bounded by a
//! configurable maximum (CT-Index uses 4 in the paper's configuration).

use crate::canonical::{cycle_key, FeatureKey};
use sqbench_graph::{Graph, Label, VertexId};
use std::collections::BTreeMap;

/// A simple cycle reported by the enumerator: the vertices in traversal
/// order (the edge closing the cycle runs from the last vertex back to the
/// first) and the canonical key of its label sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleInstance {
    /// Vertices of the cycle in order; `vertices[0]` is the smallest id.
    pub vertices: Vec<VertexId>,
    /// Canonical key of the cycle's label sequence.
    pub key: FeatureKey,
}

/// Enumerates every simple cycle of length `3..=max_len` (number of edges ==
/// number of vertices) in `g`, each exactly once.
pub fn enumerate_cycle_instances(g: &Graph, max_len: usize) -> Vec<CycleInstance> {
    let mut cycles = Vec::new();
    if max_len < 3 {
        return cycles;
    }
    let n = g.vertex_count();
    let mut path: Vec<VertexId> = Vec::with_capacity(max_len);
    let mut on_path = vec![false; n];
    for start in 0..n {
        path.push(start);
        on_path[start] = true;
        dfs_cycles(
            g,
            start,
            start,
            max_len,
            &mut path,
            &mut on_path,
            &mut cycles,
        );
        on_path[start] = false;
        path.pop();
    }
    cycles
}

fn dfs_cycles(
    g: &Graph,
    start: VertexId,
    current: VertexId,
    max_len: usize,
    path: &mut Vec<VertexId>,
    on_path: &mut Vec<bool>,
    cycles: &mut Vec<CycleInstance>,
) {
    for &next in g.neighbors(current) {
        if next == start && path.len() >= 3 {
            // Close the cycle. To report each cycle exactly once, require
            // that the start vertex is the smallest on the cycle and that the
            // second vertex is smaller than the last (fixing a direction).
            if path.iter().all(|&v| v >= start) && path[1] < *path.last().unwrap() {
                let labels: Vec<Label> = path.iter().map(|&v| g.label(v)).collect();
                cycles.push(CycleInstance {
                    vertices: path.clone(),
                    key: cycle_key(&labels),
                });
            }
            continue;
        }
        if on_path[next] || next < start || path.len() >= max_len {
            continue;
        }
        path.push(next);
        on_path[next] = true;
        dfs_cycles(g, start, next, max_len, path, on_path, cycles);
        on_path[next] = false;
        path.pop();
    }
}

/// Enumerates simple cycles grouped by canonical key with occurrence counts.
pub fn enumerate_cycles(g: &Graph, max_len: usize) -> BTreeMap<FeatureKey, usize> {
    let mut out = BTreeMap::new();
    for cycle in enumerate_cycle_instances(g, max_len) {
        *out.entry(cycle.key).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::GraphBuilder;

    fn triangle() -> Graph {
        GraphBuilder::new("tri")
            .vertices(&[1, 2, 3])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap()
    }

    fn square() -> Graph {
        GraphBuilder::new("sq")
            .vertices(&[1, 2, 1, 2])
            .edges(&[(0, 1), (1, 2), (2, 3), (3, 0)])
            .build()
            .unwrap()
    }

    /// K4: four vertices, all six edges.
    fn k4() -> Graph {
        GraphBuilder::new("k4")
            .vertices(&[0, 0, 0, 0])
            .edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .build()
            .unwrap()
    }

    #[test]
    fn triangle_has_one_cycle() {
        let cycles = enumerate_cycle_instances(&triangle(), 4);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].vertices.len(), 3);
    }

    #[test]
    fn square_has_one_cycle_of_length_four() {
        let cycles = enumerate_cycle_instances(&square(), 4);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].vertices.len(), 4);
        // Not found if the limit is 3.
        assert!(enumerate_cycle_instances(&square(), 3).is_empty());
    }

    #[test]
    fn k4_cycle_census() {
        // K4 has 4 triangles and 3 four-cycles.
        let cycles = enumerate_cycle_instances(&k4(), 4);
        let triangles = cycles.iter().filter(|c| c.vertices.len() == 3).count();
        let squares = cycles.iter().filter(|c| c.vertices.len() == 4).count();
        assert_eq!(triangles, 4);
        assert_eq!(squares, 3);
        // With the limit at 3 only the triangles remain.
        assert_eq!(enumerate_cycle_instances(&k4(), 3).len(), 4);
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let path = GraphBuilder::new("p")
            .vertices(&[1, 2, 3, 4])
            .edges(&[(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        assert!(enumerate_cycle_instances(&path, 8).is_empty());
        assert!(enumerate_cycles(&path, 8).is_empty());
    }

    #[test]
    fn grouped_counts_sum_to_instance_count() {
        let g = k4();
        let instances = enumerate_cycle_instances(&g, 4);
        let grouped = enumerate_cycles(&g, 4);
        assert_eq!(grouped.values().sum::<usize>(), instances.len());
    }

    #[test]
    fn isomorphic_cycles_share_keys_across_graphs() {
        let a = enumerate_cycles(&triangle(), 3);
        let b_graph = GraphBuilder::new("tri2")
            .vertices(&[3, 1, 2]) // same labels, different numbering
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let b = enumerate_cycles(&b_graph, 3);
        assert_eq!(a.keys().collect::<Vec<_>>(), b.keys().collect::<Vec<_>>());
    }

    #[test]
    fn max_len_below_three_yields_nothing() {
        assert!(enumerate_cycle_instances(&triangle(), 2).is_empty());
    }
}
