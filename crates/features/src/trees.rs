//! Exhaustive enumeration of subtree features.
//!
//! CT-Index enumerates all subtrees of up to a configurable number of edges
//! (the paper uses 4, following the Grapes authors' tuning) and hashes their
//! canonical labels into a fingerprint; Tree+Δ mines *frequent* subtrees.
//! Both consume the enumeration provided here, which is the acyclic
//! restriction of the connected-edge-subset enumerator.

use crate::canonical::{tree_key, FeatureKey};
use crate::subgraphs::{for_each_connected_edge_subset, subgraph_from_edges};
use sqbench_graph::Graph;
use std::collections::BTreeMap;

/// Enumerates all subtrees of `1..=max_edges` edges of `g`, grouped by
/// canonical (AHU) key, counting the number of distinct edge subsets
/// realizing each key.
pub fn enumerate_trees(g: &Graph, max_edges: usize) -> BTreeMap<FeatureKey, usize> {
    let mut out: BTreeMap<FeatureKey, usize> = BTreeMap::new();
    for_each_connected_edge_subset(g, max_edges, true, |edges| {
        let fragment = subgraph_from_edges(g, edges);
        *out.entry(tree_key(&fragment)).or_insert(0) += 1;
    });
    out
}

/// Enumerates the subtree keys of a query graph. Identical to
/// [`enumerate_trees`]; the alias mirrors the filtering-stage vocabulary of
/// the method implementations.
pub fn query_trees(query: &Graph, max_edges: usize) -> BTreeMap<FeatureKey, usize> {
    enumerate_trees(query, max_edges)
}

/// Enumerates each subtree of `g` as a standalone [`Graph`] alongside its
/// canonical key. Used by the frequent-tree miner, which needs the fragment
/// structure (not just the key) to compute sub-feature relationships.
pub fn enumerate_tree_fragments(g: &Graph, max_edges: usize) -> Vec<(FeatureKey, Graph)> {
    let mut out = Vec::new();
    for_each_connected_edge_subset(g, max_edges, true, |edges| {
        let fragment = subgraph_from_edges(g, edges);
        out.push((tree_key(&fragment), fragment));
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::GraphBuilder;

    fn star3() -> Graph {
        GraphBuilder::new("star")
            .vertices(&[9, 1, 1, 1])
            .edges(&[(0, 1), (0, 2), (0, 3)])
            .build()
            .unwrap()
    }

    fn triangle() -> Graph {
        GraphBuilder::new("tri")
            .vertices(&[1, 1, 1])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap()
    }

    #[test]
    fn star_subtrees() {
        // Star with 3 identical leaves: subtrees are the single edge (count 3),
        // the 2-edge path through the center (count 3), and the full star
        // (count 1); all leaves share labels so 3 distinct keys.
        let trees = enumerate_trees(&star3(), 3);
        assert_eq!(trees.len(), 3);
        let mut counts: Vec<usize> = trees.values().copied().collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 3, 3]);
    }

    #[test]
    fn triangle_has_no_three_edge_subtree() {
        let trees = enumerate_trees(&triangle(), 3);
        // Single edge (3 subsets, 1 key) and two-edge path (3 subsets, 1 key).
        assert_eq!(trees.len(), 2);
        assert_eq!(trees.values().sum::<usize>(), 6);
    }

    #[test]
    fn max_edges_bounds_tree_size() {
        let trees = enumerate_trees(&star3(), 2);
        // Full star (3 edges) excluded.
        assert_eq!(trees.values().sum::<usize>(), 3 + 3);
    }

    #[test]
    fn query_trees_is_an_alias() {
        let g = star3();
        assert_eq!(query_trees(&g, 3), enumerate_trees(&g, 3));
    }

    #[test]
    fn fragments_are_trees_and_match_keys() {
        let g = star3();
        for (key, fragment) in enumerate_tree_fragments(&g, 3) {
            assert_eq!(fragment.edge_count(), fragment.vertex_count() - 1);
            assert!(sqbench_graph::algo::is_connected(&fragment));
            assert_eq!(tree_key(&fragment), key);
        }
    }

    #[test]
    fn isomorphic_subtrees_in_different_graphs_share_keys() {
        let a = GraphBuilder::new("a")
            .vertices(&[2, 3])
            .edge(0, 1)
            .build()
            .unwrap();
        let b = GraphBuilder::new("b")
            .vertices(&[3, 2])
            .edge(0, 1)
            .build()
            .unwrap();
        let ta = enumerate_trees(&a, 1);
        let tb = enumerate_trees(&b, 1);
        assert_eq!(ta.keys().collect::<Vec<_>>(), tb.keys().collect::<Vec<_>>());
    }

    #[test]
    fn empty_graph_yields_no_trees() {
        let g = Graph::new("empty");
        assert!(enumerate_trees(&g, 4).is_empty());
    }
}
