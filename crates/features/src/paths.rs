//! Exhaustive enumeration of simple paths.
//!
//! GraphGrepSX and Grapes both index *all* simple paths of up to a maximum
//! length (the paper uses length 4). For each canonical path label the index
//! stores, per dataset graph, how many times the path occurs and — for
//! Grapes — the ids of the vertices at which occurrences start (the
//! "location information" that gives Grapes its extra filtering power).

use crate::canonical::{path_key, FeatureKey};
use sqbench_graph::{Graph, Label, VertexId};
use std::collections::BTreeMap;

/// Occurrence information for one path feature within one graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathOccurrences {
    /// Number of directed simple-path traversals matching the feature.
    pub count: usize,
    /// Vertices at which those traversals start (Grapes' location info).
    /// Sorted and deduplicated.
    pub start_vertices: Vec<VertexId>,
}

impl PathOccurrences {
    fn record(&mut self, start: VertexId) {
        self.count += 1;
        if let Err(pos) = self.start_vertices.binary_search(&start) {
            self.start_vertices.insert(pos, start);
        }
    }

    /// Estimated heap bytes used by this record (for index size accounting).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.start_vertices.capacity() * std::mem::size_of::<VertexId>()
    }
}

/// All path features of a graph, keyed by canonical path label.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathSet {
    /// Canonical path label → occurrence info.
    pub paths: BTreeMap<FeatureKey, PathOccurrences>,
}

impl PathSet {
    /// Number of distinct path features.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` if no paths were enumerated (empty graph).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Iterator over `(key, occurrences)`.
    pub fn iter(&self) -> impl Iterator<Item = (&FeatureKey, &PathOccurrences)> {
        self.paths.iter()
    }

    /// The occurrence record for a given canonical key, if present.
    pub fn get(&self, key: &FeatureKey) -> Option<&PathOccurrences> {
        self.paths.get(key)
    }

    /// Estimated heap bytes used by the whole set.
    pub fn memory_bytes(&self) -> usize {
        self.paths
            .iter()
            .map(|(k, v)| k.len_bytes() + v.memory_bytes())
            .sum()
    }
}

/// Calls `visit(labels, start_vertex)` once for every *directed* simple-path
/// traversal of `0..=max_edges` edges in `g` (the zero-edge traversal is the
/// single start vertex). This is the raw DFS enumeration that GraphGrepSX
/// and Grapes run during index construction; both insert traversals directly
/// into their trie keyed by the label sequence.
pub fn for_each_path<F>(g: &Graph, max_edges: usize, mut visit: F)
where
    F: FnMut(&[Label], VertexId),
{
    let mut labels_buf: Vec<Label> = Vec::with_capacity(max_edges + 1);
    let mut visited = vec![false; g.vertex_count()];
    for start in g.vertices() {
        labels_buf.push(g.label(start));
        visit(&labels_buf, start);
        visited[start] = true;
        dfs_paths(
            g,
            start,
            start,
            max_edges,
            &mut labels_buf,
            &mut visited,
            &mut visit,
        );
        visited[start] = false;
        labels_buf.pop();
    }
}

/// Enumerates all simple paths of `1..=max_edges` edges (and the length-0
/// single-vertex "paths") in `g`, grouped by canonical label.
///
/// Each *directed* traversal is counted once, matching the behaviour of the
/// GraphGrepSX/Grapes DFS enumerators; because the canonical label folds a
/// path and its reverse together, a symmetric path contributes two counts
/// (one per direction), which is exactly how those systems count
/// occurrences.
pub fn enumerate_paths(g: &Graph, max_edges: usize) -> PathSet {
    let mut set = PathSet::default();
    for_each_path(g, max_edges, |labels, start| {
        set.paths.entry(path_key(labels)).or_default().record(start);
    });
    set
}

fn dfs_paths<F>(
    g: &Graph,
    start: VertexId,
    current: VertexId,
    remaining: usize,
    labels_buf: &mut Vec<Label>,
    visited: &mut Vec<bool>,
    visit: &mut F,
) where
    F: FnMut(&[Label], VertexId),
{
    if remaining == 0 {
        return;
    }
    for &next in g.neighbors(current) {
        if visited[next] {
            continue;
        }
        visited[next] = true;
        labels_buf.push(g.label(next));
        visit(labels_buf, start);
        dfs_paths(g, start, next, remaining - 1, labels_buf, visited, visit);
        labels_buf.pop();
        visited[next] = false;
    }
}

/// Enumerates only the canonical keys of all simple paths up to `max_edges`
/// edges of a *query* graph. During filtering the occurrence counts of the
/// query itself are also needed (GGSX compares per-graph frequencies), so
/// the full [`PathSet`] is returned; this helper simply mirrors
/// [`enumerate_paths`] under a more intention-revealing name.
pub fn query_paths(query: &Graph, max_edges: usize) -> PathSet {
    enumerate_paths(query, max_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::GraphBuilder;

    fn labeled_path(labels: &[Label]) -> Graph {
        let mut b = GraphBuilder::new("p").vertices(labels);
        for i in 1..labels.len() {
            b = b.edge(i - 1, i);
        }
        b.build().unwrap()
    }

    #[test]
    fn single_vertex_graph_has_one_feature() {
        let g = GraphBuilder::new("v").vertex(7).build().unwrap();
        let set = enumerate_paths(&g, 4);
        assert_eq!(set.len(), 1);
        let (key, occ) = set.iter().next().unwrap();
        assert_eq!(key, &path_key(&[7]));
        assert_eq!(occ.count, 1);
        assert_eq!(occ.start_vertices, vec![0]);
    }

    #[test]
    fn path_graph_features() {
        // labels 1-2-3: paths of length 0: {1},{2},{3}; length 1: (1,2),(2,3);
        // length 2: (1,2,3).
        let g = labeled_path(&[1, 2, 3]);
        let set = enumerate_paths(&g, 4);
        assert_eq!(set.len(), 6);
        // The length-1 path (1,2) occurs once in each direction.
        assert_eq!(set.get(&path_key(&[1, 2])).unwrap().count, 2);
        // The full path occurs twice (once per direction) but its canonical
        // key is shared.
        assert_eq!(set.get(&path_key(&[1, 2, 3])).unwrap().count, 2);
        // Start vertices of (1,2,3): traversals start at 0 and at 2.
        assert_eq!(
            set.get(&path_key(&[1, 2, 3])).unwrap().start_vertices,
            vec![0, 2]
        );
    }

    #[test]
    fn max_edges_limits_path_length() {
        let g = labeled_path(&[0, 1, 2, 3, 4]);
        let set = enumerate_paths(&g, 2);
        assert!(set.get(&path_key(&[0, 1, 2])).is_some());
        assert!(set.get(&path_key(&[0, 1, 2, 3])).is_none());
    }

    #[test]
    fn triangle_paths_do_not_repeat_vertices() {
        let g = GraphBuilder::new("tri")
            .vertices(&[1, 1, 1])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let set = enumerate_paths(&g, 4);
        // Longest simple path in a triangle has 2 edges.
        assert!(set.get(&path_key(&[1, 1, 1, 1])).is_none());
        // 2-edge paths: from each start there are 2 traversals of 2 edges.
        assert_eq!(set.get(&path_key(&[1, 1, 1])).unwrap().count, 6);
    }

    #[test]
    fn same_label_paths_from_different_places_share_key() {
        // Two disjoint edges with the same labels: one key, two start sets.
        let g = GraphBuilder::new("2e")
            .vertices(&[5, 6, 5, 6])
            .edges(&[(0, 1), (2, 3)])
            .build()
            .unwrap();
        let set = enumerate_paths(&g, 3);
        let occ = set.get(&path_key(&[5, 6])).unwrap();
        assert_eq!(occ.count, 4); // two edges, two directions each
        assert_eq!(occ.start_vertices, vec![0, 1, 2, 3]);
    }

    #[test]
    fn query_paths_matches_enumerate_paths() {
        let g = labeled_path(&[1, 2, 3, 4]);
        assert_eq!(query_paths(&g, 3), enumerate_paths(&g, 3));
    }

    #[test]
    fn memory_accounting_is_positive() {
        let g = labeled_path(&[1, 2, 3, 4]);
        let set = enumerate_paths(&g, 3);
        assert!(set.memory_bytes() > 0);
        assert!(!set.is_empty());
    }

    #[test]
    fn zero_max_edges_yields_only_vertex_features() {
        let g = labeled_path(&[1, 2]);
        let set = enumerate_paths(&g, 0);
        assert_eq!(set.len(), 2);
        assert!(set.get(&path_key(&[1, 2])).is_none());
    }

    #[test]
    fn for_each_path_emits_every_directed_traversal() {
        let g = labeled_path(&[1, 2, 3]);
        let mut traversals: Vec<(Vec<Label>, usize)> = Vec::new();
        for_each_path(&g, 2, |labels, start| {
            traversals.push((labels.to_vec(), start));
        });
        // 3 single-vertex + 4 one-edge (two per edge) + 2 two-edge = 9.
        assert_eq!(traversals.len(), 9);
        assert!(traversals.contains(&(vec![1, 2, 3], 0)));
        assert!(traversals.contains(&(vec![3, 2, 1], 2)));
        assert!(traversals.contains(&(vec![2], 1)));
    }
}
