//! Fixed-width bit-array fingerprints.
//!
//! CT-Index does not store its (tree and cycle) features: it hashes the
//! canonical label of every enumerated feature into a fixed-size bit array —
//! one fingerprint per dataset graph, 4096 bits in the paper's configuration.
//! Filtering a query then reduces to a bitwise check: a graph can only
//! contain the query if the graph's fingerprint has a 1 in every position
//! where the query's fingerprint has a 1. Hash collisions make the filter
//! lossy (different features may map to the same bit), which is exactly the
//! space/filtering-power trade-off the paper attributes to CT-Index.

use crate::canonical::FeatureKey;

/// A fixed-width bit-array fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    bits: usize,
    words: Vec<u64>,
}

impl Fingerprint {
    /// Creates an all-zero fingerprint with the given number of bits
    /// (rounded up to a multiple of 64). At least 64 bits are allocated.
    pub fn new(bits: usize) -> Self {
        let bits = bits.max(64);
        let words = bits.div_ceil(64);
        Fingerprint {
            bits: words * 64,
            words: vec![0; words],
        }
    }

    /// Number of bits in the fingerprint.
    pub fn bit_len(&self) -> usize {
        self.bits
    }

    /// Number of bits currently set.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hashes a feature key and sets `hashes_per_key` positions derived from
    /// it (double hashing). CT-Index uses a single position per feature; a
    /// higher value behaves like a Bloom filter with more probes.
    pub fn insert_key(&mut self, key: &FeatureKey, hashes_per_key: usize) {
        let (h1, h2) = hash_pair(key.as_str());
        let probes = hashes_per_key.max(1);
        for i in 0..probes {
            let pos = (h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.bits as u64) as usize;
            self.set(pos);
        }
    }

    /// Sets an individual bit.
    pub fn set(&mut self, position: usize) {
        assert!(position < self.bits, "bit position out of range");
        self.words[position / 64] |= 1u64 << (position % 64);
    }

    /// Tests an individual bit.
    pub fn get(&self, position: usize) -> bool {
        if position >= self.bits {
            return false;
        }
        (self.words[position / 64] >> (position % 64)) & 1 == 1
    }

    /// `true` iff every bit set in `other` is also set in `self` — the
    /// CT-Index filtering test (`self` is the dataset graph's fingerprint,
    /// `other` the query's).
    pub fn covers(&self, other: &Fingerprint) -> bool {
        assert_eq!(
            self.bits, other.bits,
            "fingerprints must have the same width"
        );
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == *b)
    }

    /// ORs `other`'s bits into `self`. This is how a *collection* synopsis
    /// is folded from per-graph fingerprints (e.g. a shard-level routing
    /// fingerprint): the union covers every member's fingerprint, so any
    /// query fingerprint covered by some member is covered by the union.
    pub fn union_with(&mut self, other: &Fingerprint) {
        assert_eq!(
            self.bits, other.bits,
            "fingerprints must have the same width"
        );
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// Estimated heap bytes used by the fingerprint.
    pub fn memory_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>() + std::mem::size_of::<Self>()
    }
}

/// 64-bit FNV-1a hash plus a secondary hash for double hashing.
fn hash_pair(text: &str) -> (u64, u64) {
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h1 ^= *b as u64;
        h1 = h1.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Derive a second, independent-ish hash by re-mixing.
    let mut h2 = h1 ^ 0x9e37_79b9_7f4a_7c15;
    h2 ^= h2 >> 33;
    h2 = h2.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h2 ^= h2 >> 33;
    // Make the second hash odd so every probe position can be reached.
    (h1, h2 | 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> FeatureKey {
        FeatureKey::from_raw(s)
    }

    #[test]
    fn new_fingerprint_is_empty() {
        let fp = Fingerprint::new(4096);
        assert_eq!(fp.bit_len(), 4096);
        assert_eq!(fp.count_ones(), 0);
    }

    #[test]
    fn width_is_rounded_up_to_word_multiple() {
        let fp = Fingerprint::new(100);
        assert_eq!(fp.bit_len(), 128);
        let tiny = Fingerprint::new(1);
        assert_eq!(tiny.bit_len(), 64);
    }

    #[test]
    fn insert_key_sets_bits_deterministically() {
        let mut a = Fingerprint::new(512);
        let mut b = Fingerprint::new(512);
        a.insert_key(&key("T:(1(2))"), 1);
        b.insert_key(&key("T:(1(2))"), 1);
        assert_eq!(a, b);
        assert_eq!(a.count_ones(), 1);
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut fp = Fingerprint::new(128);
        fp.set(0);
        fp.set(63);
        fp.set(64);
        fp.set(127);
        assert!(fp.get(0) && fp.get(63) && fp.get(64) && fp.get(127));
        assert!(!fp.get(1));
        assert!(!fp.get(4096)); // out of range reads as false
        assert_eq!(fp.count_ones(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut fp = Fingerprint::new(64);
        fp.set(64);
    }

    #[test]
    fn covers_detects_subset_relation() {
        let mut graph_fp = Fingerprint::new(256);
        let mut query_fp = Fingerprint::new(256);
        for k in ["P:1,2", "P:2,3", "T:(1(2)(3))"] {
            graph_fp.insert_key(&key(k), 1);
        }
        query_fp.insert_key(&key("P:1,2"), 1);
        assert!(graph_fp.covers(&query_fp));
        // A feature the graph does not have breaks coverage (with high
        // probability; these particular keys do not collide at 256 bits).
        query_fp.insert_key(&key("C:9,9,9"), 1);
        assert!(!graph_fp.covers(&query_fp));
        // Every fingerprint covers the empty fingerprint.
        assert!(graph_fp.covers(&Fingerprint::new(256)));
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn covers_requires_equal_width() {
        let a = Fingerprint::new(64);
        let b = Fingerprint::new(128);
        let _ = a.covers(&b);
    }

    #[test]
    fn multiple_probes_set_multiple_bits() {
        let mut fp = Fingerprint::new(4096);
        fp.insert_key(&key("G:x"), 3);
        assert!(fp.count_ones() >= 2); // probes may rarely collide, never all three
    }

    #[test]
    fn different_keys_usually_map_to_different_bits() {
        let mut fp = Fingerprint::new(4096);
        for i in 0..50 {
            fp.insert_key(&key(&format!("P:{i}")), 1);
        }
        // Some collisions are tolerated, but most keys must land on distinct
        // bits for the filter to be useful.
        assert!(fp.count_ones() > 40);
    }

    #[test]
    fn memory_accounting() {
        let fp = Fingerprint::new(4096);
        assert!(fp.memory_bytes() >= 4096 / 8);
    }
}
