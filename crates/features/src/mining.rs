//! Frequent-feature mining with support and discriminative ratios.
//!
//! gIndex and Tree+Δ do not index every substructure: they *mine* the
//! dataset for features that are
//!
//! * **frequent** — contained in at least a `min_support_ratio` fraction of
//!   the dataset graphs (size-1 features are always kept, as in gIndex), and
//! * **discriminative** — knowing that a graph contains the feature prunes
//!   the candidate set noticeably more than its sub-features already do.
//!   Following gIndex, a feature `f` with support set `D_f` is
//!   discriminative iff `|∩ D_sub| / |D_f| >= discriminative_ratio`, where
//!   the intersection ranges over `f`'s maximal proper sub-features (those
//!   obtained by deleting one edge while keeping the fragment connected).
//!
//! The miner enumerates candidate fragments exhaustively per graph (general
//! connected subgraphs for gIndex, subtrees for Tree+Δ) and then applies the
//! two filters. This mirrors the cost profile the paper reports — frequent
//! mining is by far the most expensive indexing strategy and degrades
//! steeply as graphs grow — which is precisely the behaviour the benchmark
//! needs to reproduce.

use crate::canonical::{graph_key, tree_key, FeatureKey};
use crate::subgraphs::{for_each_connected_edge_subset, subgraph_from_edges};
use sqbench_graph::{Dataset, Graph, GraphId};
use std::collections::{BTreeMap, BTreeSet};

/// Which structural class of fragments the miner enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// General connected subgraphs (gIndex).
    Subgraph,
    /// Subtrees only (Tree+Δ).
    Tree,
}

/// Configuration of the frequent miner.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningConfig {
    /// Maximum fragment size in edges (paper default: 10 for gIndex and
    /// Tree+Δ; the benches use smaller values to stay laptop-scale).
    pub max_feature_edges: usize,
    /// Minimum support ratio (fraction of dataset graphs containing the
    /// feature) for a feature of size ≥ 2 to be retained. Paper default 0.1.
    pub min_support_ratio: f64,
    /// Discriminative-ratio threshold (paper default 2.0 for gIndex).
    /// A value ≤ 1.0 disables the discriminative filter.
    pub discriminative_ratio: f64,
    /// Fragment class to enumerate.
    pub kind: FeatureKind,
}

impl MiningConfig {
    /// gIndex defaults from §4.1 of the paper, with a configurable fragment
    /// size limit.
    pub fn gindex(max_feature_edges: usize) -> Self {
        MiningConfig {
            max_feature_edges,
            min_support_ratio: 0.1,
            discriminative_ratio: 2.0,
            kind: FeatureKind::Subgraph,
        }
    }

    /// Tree+Δ defaults from §4.1 of the paper (its discriminative ratio uses
    /// a different formula and threshold; the 0.1 value is applied to the
    /// same ratio definition used here).
    pub fn tree_delta(max_feature_edges: usize) -> Self {
        MiningConfig {
            max_feature_edges,
            min_support_ratio: 0.1,
            discriminative_ratio: 1.0,
            kind: FeatureKind::Tree,
        }
    }
}

/// A mined feature: its canonical key, a representative fragment, and the
/// ids of the dataset graphs containing it.
#[derive(Debug, Clone)]
pub struct FrequentFeature {
    /// Canonical key of the fragment.
    pub key: FeatureKey,
    /// A representative fragment graph (vertices renumbered densely).
    pub fragment: Graph,
    /// Sorted ids of the dataset graphs containing the fragment.
    pub supporting_graphs: Vec<GraphId>,
    /// Number of edges in the fragment.
    pub edge_count: usize,
}

impl FrequentFeature {
    /// Support ratio of the feature with respect to a dataset of
    /// `dataset_size` graphs.
    pub fn support_ratio(&self, dataset_size: usize) -> f64 {
        if dataset_size == 0 {
            0.0
        } else {
            self.supporting_graphs.len() as f64 / dataset_size as f64
        }
    }

    /// Estimated heap bytes used by this feature record.
    pub fn memory_bytes(&self) -> usize {
        self.key.len_bytes()
            + self.fragment.memory_bytes()
            + self.supporting_graphs.capacity() * std::mem::size_of::<GraphId>()
    }
}

/// The frequent-feature miner.
#[derive(Debug, Clone)]
pub struct FrequentMiner {
    config: MiningConfig,
}

/// Result of a mining run: the retained features, keyed by canonical key.
pub type MinedFeatures = BTreeMap<FeatureKey, FrequentFeature>;

impl FrequentMiner {
    /// Creates a miner with the given configuration.
    pub fn new(config: MiningConfig) -> Self {
        FrequentMiner { config }
    }

    /// The miner's configuration.
    pub fn config(&self) -> &MiningConfig {
        &self.config
    }

    /// Enumerates the fragments of a single graph, grouped by canonical key.
    /// Returns, for each key, a representative fragment. Exposed so the
    /// index methods can reuse the same enumeration during query processing.
    pub fn enumerate_graph(&self, g: &Graph) -> BTreeMap<FeatureKey, Graph> {
        let mut out: BTreeMap<FeatureKey, Graph> = BTreeMap::new();
        let acyclic_only = self.config.kind == FeatureKind::Tree;
        for_each_connected_edge_subset(g, self.config.max_feature_edges, acyclic_only, |edges| {
            let fragment = subgraph_from_edges(g, edges);
            let key = match self.config.kind {
                FeatureKind::Subgraph => graph_key(&fragment),
                FeatureKind::Tree => tree_key(&fragment),
            };
            out.entry(key).or_insert(fragment);
        });
        out
    }

    /// Mines the dataset and returns the retained (frequent + discriminative)
    /// features.
    pub fn mine(&self, dataset: &Dataset) -> MinedFeatures {
        // Phase 1: per-graph enumeration, accumulate supports.
        let mut all: MinedFeatures = BTreeMap::new();
        for (gid, graph) in dataset.iter() {
            for (key, fragment) in self.enumerate_graph(graph) {
                let edge_count = fragment.edge_count();
                let entry = all.entry(key.clone()).or_insert_with(|| FrequentFeature {
                    key,
                    fragment,
                    supporting_graphs: Vec::new(),
                    edge_count,
                });
                entry.supporting_graphs.push(gid);
            }
        }

        // Phase 2: frequency filter (size-1 features are always retained).
        let n = dataset.len();
        let min_support = (self.config.min_support_ratio * n as f64).ceil() as usize;
        let frequent: MinedFeatures = all
            .into_iter()
            .filter(|(_, f)| f.edge_count <= 1 || f.supporting_graphs.len() >= min_support.max(1))
            .collect();

        // Phase 3: discriminative filter.
        if self.config.discriminative_ratio <= 1.0 {
            return frequent;
        }
        let mut retained: MinedFeatures = BTreeMap::new();
        // Process in increasing fragment size so sub-features are decided
        // before their super-features (the discriminative test intersects
        // the supports of *retained* sub-features, per gIndex).
        let mut by_size: Vec<&FrequentFeature> = frequent.values().collect();
        by_size.sort_by_key(|f| f.edge_count);
        for feature in by_size {
            if feature.edge_count <= 1 {
                retained.insert(feature.key.clone(), feature.clone());
                continue;
            }
            let sub_support = self.sub_feature_candidate_count(feature, &retained);
            let own_support = feature.supporting_graphs.len().max(1);
            let ratio = sub_support as f64 / own_support as f64;
            if ratio >= self.config.discriminative_ratio {
                retained.insert(feature.key.clone(), feature.clone());
            }
        }
        retained
    }

    /// Size of the candidate set implied by the feature's maximal proper
    /// sub-features (the intersection of their supports); if no sub-feature
    /// is retained, the whole dataset (approximated by the union bound of
    /// the feature's own support times the ratio threshold) is returned so
    /// the feature is kept.
    fn sub_feature_candidate_count(
        &self,
        feature: &FrequentFeature,
        retained: &MinedFeatures,
    ) -> usize {
        let fragment = &feature.fragment;
        let mut intersection: Option<BTreeSet<GraphId>> = None;
        // Maximal proper sub-features: remove one edge, keep the fragment
        // connected (and, for trees, still a tree — removing an edge from a
        // tree always disconnects it, so take the larger of the two sides).
        for (u, v) in fragment.edges().collect::<Vec<_>>() {
            let sub = remove_edge_keep_connected(fragment, u, v);
            let Some(sub) = sub else { continue };
            if sub.edge_count() == 0 {
                continue;
            }
            let key = match self.config.kind {
                FeatureKind::Subgraph => graph_key(&sub),
                FeatureKind::Tree => tree_key(&sub),
            };
            if let Some(parent) = retained.get(&key) {
                let support: BTreeSet<GraphId> = parent.supporting_graphs.iter().copied().collect();
                intersection = Some(match intersection {
                    None => support,
                    Some(acc) => acc.intersection(&support).copied().collect(),
                });
            }
        }
        match intersection {
            Some(set) => set.len(),
            // No retained sub-feature to compare against: treat the feature
            // as maximally discriminative so it is kept.
            None => usize::MAX / 2,
        }
    }
}

/// Removes edge `(u, v)` from `fragment`; if the removal disconnects the
/// fragment, returns the largest remaining connected component. Returns
/// `None` for fragments with a single edge.
fn remove_edge_keep_connected(fragment: &Graph, u: usize, v: usize) -> Option<Graph> {
    if fragment.edge_count() <= 1 {
        return None;
    }
    // Rebuild without the edge.
    let mut g = Graph::with_capacity("sub", fragment.vertex_count());
    for w in fragment.vertices() {
        g.add_vertex(fragment.label(w));
    }
    for (a, b) in fragment.edges() {
        if (a, b) != (u, v) && (a, b) != (v, u) {
            let _ = g.add_edge_if_absent(a, b);
        }
    }
    let components = sqbench_graph::algo::connected_components(&g);
    let largest = components.into_iter().max_by_key(|c| {
        // Prefer the component with the most edges (ties broken by size).
        let sub = g.induced_subgraph(c);
        (sub.edge_count(), c.len())
    })?;
    let sub = g.induced_subgraph(&largest);
    if sub.edge_count() == 0 {
        None
    } else {
        Some(sub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::GraphBuilder;

    fn triangle(labels: [u32; 3]) -> Graph {
        GraphBuilder::new("tri")
            .vertices(&labels)
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap()
    }

    fn path(labels: &[u32]) -> Graph {
        let mut b = GraphBuilder::new("path").vertices(labels);
        for i in 1..labels.len() {
            b = b.edge(i - 1, i);
        }
        b.build().unwrap()
    }

    fn dataset() -> Dataset {
        Dataset::from_graphs(
            "mine",
            vec![
                triangle([1, 1, 1]),
                triangle([1, 1, 1]),
                triangle([1, 1, 2]),
                path(&[1, 1, 1, 1]),
                path(&[1, 2, 1]),
            ],
        )
    }

    #[test]
    fn enumerate_graph_respects_kind() {
        let g = triangle([1, 1, 1]);
        let sub_miner = FrequentMiner::new(MiningConfig::gindex(3));
        let tree_miner = FrequentMiner::new(MiningConfig::tree_delta(3));
        let subs = sub_miner.enumerate_graph(&g);
        let trees = tree_miner.enumerate_graph(&g);
        // Subgraph enumeration sees the triangle itself; tree enumeration
        // does not.
        assert!(subs.keys().any(|k| k.as_str().starts_with("G:")));
        assert_eq!(subs.len(), 3); // edge, 2-path, triangle
        assert_eq!(trees.len(), 2); // edge, 2-path
    }

    #[test]
    fn size_one_features_always_retained() {
        let cfg = MiningConfig {
            max_feature_edges: 2,
            min_support_ratio: 0.9, // very strict
            discriminative_ratio: 10.0,
            kind: FeatureKind::Subgraph,
        };
        let mined = FrequentMiner::new(cfg).mine(&dataset());
        // Edge (1,1) appears in 4 graphs, edge (1,2) in 2, edge (2,1)… same
        // key. Both single-edge keys must be present despite the filters.
        let single_edge_features: Vec<_> = mined.values().filter(|f| f.edge_count == 1).collect();
        assert_eq!(single_edge_features.len(), 2);
    }

    #[test]
    fn support_filter_removes_rare_large_features() {
        let cfg = MiningConfig {
            max_feature_edges: 3,
            min_support_ratio: 0.5,
            discriminative_ratio: 1.0,
            kind: FeatureKind::Subgraph,
        };
        let mined = FrequentMiner::new(cfg).mine(&dataset());
        // The all-1 triangle appears in 2/5 graphs (support 0.4 < 0.5) so it
        // must be filtered out; the all-1 two-edge path appears in 4/5.
        let has_triangle = mined
            .values()
            .any(|f| f.edge_count == 3 && f.fragment.vertex_count() == 3);
        assert!(!has_triangle);
        let two_edge_paths = mined.values().filter(|f| f.edge_count == 2).count();
        assert!(two_edge_paths >= 1);
    }

    #[test]
    fn supports_are_sorted_and_correct() {
        let cfg = MiningConfig {
            max_feature_edges: 1,
            min_support_ratio: 0.0,
            discriminative_ratio: 1.0,
            kind: FeatureKind::Subgraph,
        };
        let ds = dataset();
        let mined = FrequentMiner::new(cfg).mine(&ds);
        for f in mined.values() {
            let mut sorted = f.supporting_graphs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted, f.supporting_graphs);
            assert!(f.supporting_graphs.iter().all(|&g| g < ds.len()));
        }
        // Edge 1-2 appears in graphs 2 and 4.
        let edge12 = mined
            .values()
            .find(|f| f.edge_count == 1 && f.fragment.labels().contains(&2))
            .unwrap();
        assert_eq!(edge12.supporting_graphs, vec![2, 4]);
    }

    #[test]
    fn discriminative_filter_prunes_redundant_features() {
        // In this dataset every graph containing the 2-edge path 1-1-1 also
        // contains the edge 1-1 and vice versa is nearly true, so with a
        // high discriminative threshold the larger feature is pruned.
        let strict = MiningConfig {
            max_feature_edges: 2,
            min_support_ratio: 0.0,
            discriminative_ratio: 5.0,
            kind: FeatureKind::Subgraph,
        };
        let relaxed = MiningConfig {
            max_feature_edges: 2,
            min_support_ratio: 0.0,
            discriminative_ratio: 1.0,
            kind: FeatureKind::Subgraph,
        };
        let ds = dataset();
        let strict_mined = FrequentMiner::new(strict).mine(&ds);
        let relaxed_mined = FrequentMiner::new(relaxed).mine(&ds);
        assert!(strict_mined.len() <= relaxed_mined.len());
        // Size-1 features survive in both.
        assert!(strict_mined.values().any(|f| f.edge_count == 1));
    }

    #[test]
    fn tree_mining_only_produces_trees() {
        let cfg = MiningConfig::tree_delta(3);
        let mined = FrequentMiner::new(cfg).mine(&dataset());
        for f in mined.values() {
            assert_eq!(f.fragment.edge_count(), f.fragment.vertex_count() - 1);
            assert!(f.key.as_str().starts_with("T:"));
        }
    }

    #[test]
    fn support_ratio_helper() {
        let cfg = MiningConfig::gindex(1);
        let ds = dataset();
        let mined = FrequentMiner::new(cfg).mine(&ds);
        for f in mined.values() {
            let r = f.support_ratio(ds.len());
            assert!(r > 0.0 && r <= 1.0);
            assert_eq!(f.support_ratio(0), 0.0);
            assert!(f.memory_bytes() > 0);
        }
    }

    #[test]
    fn remove_edge_keeps_largest_component() {
        let p = path(&[1, 2, 3, 4]);
        // Removing the middle edge splits 1-2 / 3-4; the helper keeps one
        // single-edge side.
        let sub = remove_edge_keep_connected(&p, 1, 2).unwrap();
        assert_eq!(sub.edge_count(), 1);
        // Removing an end edge keeps the 2-edge remainder.
        let sub2 = remove_edge_keep_connected(&p, 0, 1).unwrap();
        assert_eq!(sub2.edge_count(), 2);
        // Single-edge fragments have no proper sub-feature.
        let e = path(&[1, 2]);
        assert!(remove_edge_keep_connected(&e, 0, 1).is_none());
    }

    #[test]
    fn mining_empty_dataset_returns_nothing() {
        let mined = FrequentMiner::new(MiningConfig::gindex(2)).mine(&Dataset::new("empty"));
        assert!(mined.is_empty());
    }
}
