//! Metric definitions: per-method measurements and the false positive ratio.

use serde::{Deserialize, Serialize};
use sqbench_index::QueryOutcome;
use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in seconds as `f64`.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// The false positive ratio of a query workload, per Equation (3) of the
/// paper: the mean over queries of `(|C| - |A|) / |C|`, where `C` is the
/// candidate set and `A` the answer set. Queries with an empty candidate
/// set contribute 0 (they produced no false positives).
pub fn workload_false_positive_ratio(outcomes: &[QueryOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes
        .iter()
        .map(QueryOutcome::false_positive_ratio)
        .sum::<f64>()
        / outcomes.len() as f64
}

/// All measurements collected for one method at one experiment point — the
/// quantities plotted in panels (a)–(d) of each figure in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodMetrics {
    /// Method name (as in the paper's legends).
    pub method: String,
    /// Index construction wall-clock time, seconds.
    pub indexing_time_s: f64,
    /// Index size in bytes.
    pub index_size_bytes: usize,
    /// Number of distinct features (or encoded signatures) in the index.
    pub distinct_features: usize,
    /// Mean query processing time (filter + verify), seconds per query.
    pub avg_query_time_s: f64,
    /// False positive ratio per Equation (3), averaged over the workload.
    pub false_positive_ratio: f64,
    /// Number of queries actually executed (smaller than the workload when
    /// the time budget ran out).
    pub queries_executed: usize,
    /// Whether the method exceeded the experiment's time budget (the
    /// scaled-down analogue of the paper's 8-hour DNF entries).
    pub timed_out: bool,
}

impl MethodMetrics {
    /// Index size in megabytes (the unit the paper plots).
    pub fn index_size_mb(&self) -> f64 {
        self.index_size_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Formats the record as a single log line.
    pub fn to_log_line(&self) -> String {
        format!(
            "{method:12} index_time={it:9.3}s index_size={sz:10.3}MB features={feat:8} \
             query_time={qt:9.5}s fp_ratio={fp:6.3} queries={q:4}{dnf}",
            method = self.method,
            it = self.indexing_time_s,
            sz = self.index_size_mb(),
            feat = self.distinct_features,
            qt = self.avg_query_time_s,
            fp = self.false_positive_ratio,
            q = self.queries_executed,
            dnf = if self.timed_out { " [DNF]" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(candidates: usize, answers: usize) -> QueryOutcome {
        QueryOutcome {
            candidates: (0..candidates).collect(),
            answers: (0..answers).collect(),
        }
    }

    #[test]
    fn stopwatch_measures_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(sw.elapsed_secs() >= 0.004);
    }

    #[test]
    fn fp_ratio_of_equation_3() {
        // Query 1: 10 candidates, 5 answers -> 0.5; query 2: 4/4 -> 0.0.
        let outcomes = vec![outcome(10, 5), outcome(4, 4)];
        assert!((workload_false_positive_ratio(&outcomes) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fp_ratio_handles_empty_inputs() {
        assert_eq!(workload_false_positive_ratio(&[]), 0.0);
        let outcomes = vec![outcome(0, 0)];
        assert_eq!(workload_false_positive_ratio(&outcomes), 0.0);
    }

    #[test]
    fn fp_ratio_is_one_when_nothing_verifies() {
        let outcomes = vec![outcome(7, 0)];
        assert!((workload_false_positive_ratio(&outcomes) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_formatting() {
        let m = MethodMetrics {
            method: "Grapes".into(),
            indexing_time_s: 1.25,
            index_size_bytes: 2 * 1024 * 1024,
            distinct_features: 100,
            avg_query_time_s: 0.01,
            false_positive_ratio: 0.125,
            queries_executed: 40,
            timed_out: false,
        };
        assert!((m.index_size_mb() - 2.0).abs() < 1e-9);
        let line = m.to_log_line();
        assert!(line.contains("Grapes"));
        assert!(!line.contains("DNF"));
        let dnf = MethodMetrics {
            timed_out: true,
            ..m
        };
        assert!(dnf.to_log_line().contains("DNF"));
    }
}
