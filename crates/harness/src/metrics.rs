//! Metric definitions: per-method measurements and the false positive ratio.

use serde::{Deserialize, Serialize};
use sqbench_index::QueryOutcome;
use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in seconds as `f64`.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// The instant at which `budget` expires, measured from this stopwatch's
    /// start — what the query service takes as a batch deadline.
    pub fn deadline_after(&self, budget: Duration) -> Instant {
        self.start + budget
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// The false positive ratio of a query workload, per Equation (3) of the
/// paper: the mean over queries of `(|C| - |A|) / |C|`, where `C` is the
/// candidate set and `A` the answer set. Queries with an empty candidate
/// set contribute 0 (they produced no false positives).
pub fn workload_false_positive_ratio(outcomes: &[QueryOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes
        .iter()
        .map(QueryOutcome::false_positive_ratio)
        .sum::<f64>()
        / outcomes.len() as f64
}

/// The false positive ratio of a workload from `(candidates, answers)`
/// cardinality pairs — the counts-only twin of
/// [`workload_false_positive_ratio`], used by the batch query service,
/// which never materializes candidate id lists.
pub fn counted_false_positive_ratio<I>(counts: I) -> f64
where
    I: IntoIterator<Item = (usize, usize)>,
{
    let mut sum = 0.0f64;
    let mut queries = 0usize;
    for (candidates, answers) in counts {
        if candidates > 0 {
            sum += (candidates - answers) as f64 / candidates as f64;
        }
        queries += 1;
    }
    if queries == 0 {
        0.0
    } else {
        sum / queries as f64
    }
}

/// A mergeable log-bucketed latency histogram (seconds in, seconds out).
///
/// Samples are bucketed on their nanosecond value with HdrHistogram-style
/// log-linear buckets: exact below 64 ns, then 64 sub-buckets per octave,
/// so any reported percentile is within a **1/64 ≈ 1.6% relative error**
/// of the true sample value (plus the nearest-rank rounding inherent to
/// percentiles on discrete samples). Buckets are stored sparsely, so an
/// empty histogram costs nothing and a typical run stores a few dozen
/// `(bucket, count)` pairs regardless of sample count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Sorted `(bucket index, sample count)` pairs; only non-empty buckets
    /// are stored.
    buckets: Vec<(u32, u64)>,
    /// Total samples observed.
    count: u64,
}

/// Sub-buckets per octave: resolution/relative-error knob (1/64 ≈ 1.6%).
const HIST_SUB: u64 = 64;
/// log2 of [`HIST_SUB`].
const HIST_SUB_BITS: u32 = 6;

impl LatencyHistogram {
    /// Bucket index for a nanosecond value (log-linear, exact under 64 ns).
    fn bucket_of(nanos: u64) -> u32 {
        if nanos < HIST_SUB {
            return nanos as u32;
        }
        let exp = 63 - nanos.leading_zeros(); // 2^exp <= nanos < 2^(exp+1)
        let sub = ((nanos >> (exp - HIST_SUB_BITS)) & (HIST_SUB - 1)) as u32;
        (exp - HIST_SUB_BITS + 1) * HIST_SUB as u32 + sub
    }

    /// Lower bound (in nanoseconds) of the values mapping to `bucket` —
    /// the representative value percentiles report.
    fn bucket_value(bucket: u32) -> u64 {
        let b = bucket as u64;
        if b < HIST_SUB {
            return b;
        }
        let octave = b / HIST_SUB; // >= 1
        let sub = b % HIST_SUB;
        (HIST_SUB + sub) << (octave - 1)
    }

    /// Records one latency sample, in seconds. Non-finite and negative
    /// samples are clamped to zero; samples beyond ~584 years saturate.
    pub fn observe(&mut self, seconds: f64) {
        let nanos = if seconds.is_nan() || seconds <= 0.0 {
            0
        } else {
            (seconds * 1e9).min(u64::MAX as f64) as u64
        };
        let bucket = Self::bucket_of(nanos);
        match self.buckets.binary_search_by_key(&bucket, |&(b, _)| b) {
            Ok(i) => self.buckets[i].1 += 1,
            Err(i) => self.buckets.insert(i, (bucket, 1)),
        }
        self.count += 1;
    }

    /// Samples observed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Nearest-rank percentile in seconds: the smallest recorded bucket
    /// value such that at least `q` of the samples fall at or below it.
    /// `q` is a fraction in `[0, 1]`; an empty histogram reports 0.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: ceil(q * count), at least the first sample.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(bucket, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Self::bucket_value(bucket) as f64 / 1e9;
            }
        }
        // Unreachable when counts are consistent; report the max bucket.
        self.buckets
            .last()
            .map(|&(b, _)| Self::bucket_value(b) as f64 / 1e9)
            .unwrap_or(0.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for &(bucket, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&bucket, |&(b, _)| b) {
                Ok(i) => self.buckets[i].1 += n,
                Err(i) => self.buckets.insert(i, (bucket, n)),
            }
        }
        self.count += other.count;
    }
}

/// Aggregated per-stage measurements of a batch run through the query
/// service pipeline: where each query's wall time went (waiting in the
/// request queue, filtering, verification) and how hard filtering pruned.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTotals {
    /// Queries the totals cover (executed queries only, not skipped ones).
    pub queries: u64,
    /// Total time queries spent queued before their filter stage started.
    pub queue_wait_s: f64,
    /// Total time spent probing the cross-query caches (feature-cache
    /// probes inside the filter stage plus admission-time answer-memo
    /// probes). Always 0 when caching is disabled.
    pub cache_probe_s: f64,
    /// Total time spent in the filtering stage, cache probes excluded.
    pub filter_s: f64,
    /// Total time spent in the verification stage (including any query-time
    /// index maintenance, e.g. Tree+Δ feature learning).
    pub verify_s: f64,
    /// Total graphs pruned by filtering: Σ (universe − |candidates|).
    pub candidates_pruned: u64,
    /// End-to-end per-query latency distribution (admission to completion)
    /// over the executed queries, for tail percentiles. Populated by the
    /// serving paths via [`StageTotals::observe_latency`]; empty histograms
    /// report 0 for every percentile.
    pub latency: LatencyHistogram,
}

impl StageTotals {
    /// Folds one executed query's stage measurements into the totals.
    pub fn add_query(
        &mut self,
        queue_wait_s: f64,
        cache_probe_s: f64,
        filter_s: f64,
        verify_s: f64,
        pruned: usize,
    ) {
        self.queries += 1;
        self.queue_wait_s += queue_wait_s;
        self.cache_probe_s += cache_probe_s;
        self.filter_s += filter_s;
        self.verify_s += verify_s;
        self.candidates_pruned += pruned as u64;
    }

    /// Merges another totals record into this one.
    pub fn merge(&mut self, other: &StageTotals) {
        self.queries += other.queries;
        self.queue_wait_s += other.queue_wait_s;
        self.cache_probe_s += other.cache_probe_s;
        self.filter_s += other.filter_s;
        self.verify_s += other.verify_s;
        self.candidates_pruned += other.candidates_pruned;
        self.latency.merge(&other.latency);
    }

    /// Records one query's end-to-end latency (seconds) in the histogram.
    pub fn observe_latency(&mut self, seconds: f64) {
        self.latency.observe(seconds);
    }

    /// End-to-end latency percentile in seconds (`q` in `[0, 1]`); 0 when
    /// no latencies were observed. See [`LatencyHistogram::percentile`]
    /// for the resolution guarantee.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        self.latency.percentile(q)
    }

    fn per_query(&self, total: f64) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            total / self.queries as f64
        }
    }

    /// Mean queue wait per executed query, seconds.
    pub fn avg_queue_wait_s(&self) -> f64 {
        self.per_query(self.queue_wait_s)
    }

    /// Mean cache-probe time per executed query, seconds.
    pub fn avg_cache_probe_s(&self) -> f64 {
        self.per_query(self.cache_probe_s)
    }

    /// Mean filtering time per executed query, seconds.
    pub fn avg_filter_s(&self) -> f64 {
        self.per_query(self.filter_s)
    }

    /// Mean verification time per executed query, seconds.
    pub fn avg_verify_s(&self) -> f64 {
        self.per_query(self.verify_s)
    }
}

/// Cumulative hit/miss/eviction counters of the cross-query caching layer
/// over one method run. All zeros when caching is disabled (the default) —
/// the runner constructs a fresh service per method run, so cumulative
/// service counters and per-run counters coincide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Feature-cache lookups that found a cached candidate bitset
    /// (summed across shards for sharded runs).
    pub feature_hits: u64,
    /// Feature-cache lookups that missed.
    pub feature_misses: u64,
    /// Answer-memo lookups that hit (memo-eligible queries only).
    pub answer_hits: u64,
    /// Answer-memo lookups that missed.
    pub answer_misses: u64,
    /// Entries evicted by capacity pressure, both levels combined.
    pub evictions: u64,
}

impl CacheCounters {
    /// Adds another run's counters into this one (used by the sharded
    /// merge, which sums per-shard feature caches).
    pub fn merge(&mut self, other: &CacheCounters) {
        self.feature_hits += other.feature_hits;
        self.feature_misses += other.feature_misses;
        self.answer_hits += other.answer_hits;
        self.answer_misses += other.answer_misses;
        self.evictions += other.evictions;
    }
}

/// All measurements collected for one method at one experiment point — the
/// quantities plotted in panels (a)–(d) of each figure in the paper, plus
/// the per-stage breakdown the pipelined query service records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodMetrics {
    /// Method name (as in the paper's legends).
    pub method: String,
    /// Index construction wall-clock time, seconds.
    pub indexing_time_s: f64,
    /// Index size in bytes.
    pub index_size_bytes: usize,
    /// Number of distinct features (or encoded signatures) in the index.
    pub distinct_features: usize,
    /// Mean query processing time (filter + verify), seconds per query.
    pub avg_query_time_s: f64,
    /// False positive ratio per Equation (3), averaged over the workload.
    pub false_positive_ratio: f64,
    /// Number of queries actually executed (smaller than the workload when
    /// the time budget ran out).
    pub queries_executed: usize,
    /// Whether the method exceeded the experiment's time budget (the
    /// scaled-down analogue of the paper's 8-hour DNF entries).
    pub timed_out: bool,
    /// Queries answered with a sound partial union because one or more
    /// shards missed their deadline budget (always 0 for unsharded runs,
    /// whose single index either answers in full or times out).
    pub queries_degraded: usize,
    /// Queries whose every probe failed (panicked or lost its worker) and
    /// whose retry budget was exhausted.
    pub queries_failed: usize,
    /// Queries rejected at admission by cost-aware load shedding (only the
    /// open-admission serving path sheds; batch runs report 0).
    pub queries_shed: usize,
    /// Total per-shard retry probes dispatched after transient failures.
    pub retries: u64,
    /// Graphs inserted online during the run (typed `IngestOp::Insert`
    /// mutations drained from the admission queue, or direct
    /// `insert_graph` calls). Batch runs serve a frozen snapshot: 0.
    pub inserts_applied: usize,
    /// Graphs removed online during the run. Batch runs report 0.
    pub removes_applied: usize,
    /// Per-stage totals from the service pipeline (queue wait, filter,
    /// verify, candidates pruned) over the executed queries.
    pub stages: StageTotals,
    /// Number of dataset shards the workload was served on (1 = the
    /// unsharded single-index service).
    pub shards: usize,
    /// Total `(query, shard)` index probes dispatched over the executed
    /// workload. A fanned-out sharded run probes `queries × shards`; an
    /// unsharded run probes its single index once per query; synopsis
    /// routing probes fewer.
    pub shards_probed: u64,
    /// Total `(query, shard)` probes the routing tier skipped because the
    /// shard synopsis proved no match was possible. 0 for unsharded and
    /// fanned-out runs; `shards_probed + shards_skipped` always equals
    /// `queries_executed × shards`.
    pub shards_skipped: u64,
    /// Per-shard stage totals, indexed by shard, as aggregated by the
    /// sharded service's merge stage. Empty for unsharded runs.
    pub shard_stages: Vec<StageTotals>,
    /// Incremental heap bytes the shard partition added on top of the
    /// source dataset (the shards' `Arc` pointer spines — graph storage is
    /// shared, not copied). 0 for unsharded runs.
    pub partition_overhead_bytes: usize,
    /// Hit/miss/eviction counters of the cross-query caching layer (all
    /// zeros when caching is disabled, the default).
    pub cache: CacheCounters,
}

impl MethodMetrics {
    /// Index size in megabytes (the unit the paper plots).
    pub fn index_size_mb(&self) -> f64 {
        self.index_size_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Median end-to-end query latency, seconds (0 when not recorded).
    pub fn latency_p50_s(&self) -> f64 {
        self.stages.latency_percentile(0.50)
    }

    /// 95th-percentile end-to-end query latency, seconds.
    pub fn latency_p95_s(&self) -> f64 {
        self.stages.latency_percentile(0.95)
    }

    /// 99th-percentile end-to-end query latency, seconds.
    pub fn latency_p99_s(&self) -> f64 {
        self.stages.latency_percentile(0.99)
    }

    /// Busiest-shard processing time (filter + verify seconds of the shard
    /// that worked hardest) — the critical path a sharded wave cannot beat.
    /// Falls back to the workload totals for unsharded runs.
    pub fn max_shard_time_s(&self) -> f64 {
        if self.shard_stages.is_empty() {
            self.stages.filter_s + self.stages.verify_s
        } else {
            self.shard_stages
                .iter()
                .map(|s| s.filter_s + s.verify_s)
                .fold(0.0, f64::max)
        }
    }

    /// Shard load balance: lightest-shard over heaviest-shard processing
    /// time, in `[0, 1]` with `1.0` meaning perfectly even (also reported
    /// for unsharded runs and for idle waves, where there is nothing to
    /// balance).
    ///
    /// Only *probed* shards — shards that executed at least one query —
    /// participate: when routing dispatches a wave to a shard subset, the
    /// skipped shards sit idle by design, and counting their zero seconds
    /// would misreport a perfectly routed wave as maximally unbalanced.
    pub fn shard_balance(&self) -> f64 {
        let times: Vec<f64> = self
            .shard_stages
            .iter()
            .filter(|s| s.queries > 0)
            .map(|s| s.filter_s + s.verify_s)
            .collect();
        if times.len() <= 1 {
            return 1.0; // nothing (or only one shard's load) to balance
        }
        let max = times.iter().copied().fold(0.0, f64::max);
        if max <= 0.0 {
            return 1.0;
        }
        times.iter().copied().fold(f64::INFINITY, f64::min) / max
    }

    /// Formats the record as a single log line.
    pub fn to_log_line(&self) -> String {
        format!(
            "{method:12} index_time={it:9.3}s index_size={sz:10.3}MB features={feat:8} \
             query_time={qt:9.5}s (filter={ft:9.5}s verify={vt:9.5}s) fp_ratio={fp:6.3} \
             queries={q:4}{dnf}",
            method = self.method,
            it = self.indexing_time_s,
            sz = self.index_size_mb(),
            feat = self.distinct_features,
            qt = self.avg_query_time_s,
            ft = self.stages.avg_filter_s(),
            vt = self.stages.avg_verify_s(),
            fp = self.false_positive_ratio,
            q = self.queries_executed,
            dnf = if self.timed_out { " [DNF]" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(candidates: usize, answers: usize) -> QueryOutcome {
        QueryOutcome {
            candidates: (0..candidates).collect(),
            answers: (0..answers).collect(),
        }
    }

    #[test]
    fn stopwatch_measures_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(sw.elapsed_secs() >= 0.004);
    }

    #[test]
    fn fp_ratio_of_equation_3() {
        // Query 1: 10 candidates, 5 answers -> 0.5; query 2: 4/4 -> 0.0.
        let outcomes = vec![outcome(10, 5), outcome(4, 4)];
        assert!((workload_false_positive_ratio(&outcomes) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fp_ratio_handles_empty_inputs() {
        assert_eq!(workload_false_positive_ratio(&[]), 0.0);
        let outcomes = vec![outcome(0, 0)];
        assert_eq!(workload_false_positive_ratio(&outcomes), 0.0);
    }

    #[test]
    fn fp_ratio_is_one_when_nothing_verifies() {
        let outcomes = vec![outcome(7, 0)];
        assert!((workload_false_positive_ratio(&outcomes) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counted_fp_ratio_matches_outcome_based_ratio() {
        let outcomes = vec![outcome(10, 5), outcome(4, 4), outcome(0, 0)];
        let counted = counted_false_positive_ratio(
            outcomes
                .iter()
                .map(|o| (o.candidates.len(), o.answers.len())),
        );
        assert!((counted - workload_false_positive_ratio(&outcomes)).abs() < 1e-12);
        assert_eq!(counted_false_positive_ratio(std::iter::empty()), 0.0);
    }

    #[test]
    fn stage_totals_accumulate_and_average() {
        let mut totals = StageTotals::default();
        totals.add_query(0.5, 0.25, 1.0, 2.0, 90);
        totals.add_query(1.5, 0.75, 3.0, 4.0, 10);
        assert_eq!(totals.queries, 2);
        assert_eq!(totals.candidates_pruned, 100);
        assert!((totals.avg_queue_wait_s() - 1.0).abs() < 1e-12);
        assert!((totals.avg_cache_probe_s() - 0.5).abs() < 1e-12);
        assert!((totals.avg_filter_s() - 2.0).abs() < 1e-12);
        assert!((totals.avg_verify_s() - 3.0).abs() < 1e-12);
        let mut merged = StageTotals::default();
        merged.merge(&totals);
        merged.merge(&totals);
        assert_eq!(merged.queries, 4);
        assert_eq!(merged.candidates_pruned, 200);
        assert_eq!(StageTotals::default().avg_filter_s(), 0.0);
    }

    /// Relative tolerance of the log-bucketed histogram (1/64 per the
    /// bucketing contract, with a little slack for float conversion).
    const HIST_TOL: f64 = 1.0 / 64.0 + 1e-9;

    fn assert_close(got: f64, want: f64) {
        assert!(
            (got - want).abs() <= want * HIST_TOL,
            "got {got}, want {want} ± {:.2}%",
            HIST_TOL * 100.0
        );
    }

    #[test]
    fn empty_histogram_reports_zero_everywhere() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.0), 0.0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.percentile(1.0), 0.0);
        assert_eq!(StageTotals::default().latency_percentile(0.99), 0.0);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = LatencyHistogram::default();
        h.observe(0.125);
        assert_eq!(h.count(), 1);
        for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_close(h.percentile(q), 0.125);
        }
    }

    #[test]
    fn percentiles_of_a_known_uniform_distribution() {
        // 100 samples: 1 ms, 2 ms, ..., 100 ms. Nearest-rank percentiles
        // are exactly the q*100-th sample.
        let mut h = LatencyHistogram::default();
        for ms in 1..=100u64 {
            h.observe(ms as f64 / 1000.0);
        }
        assert_eq!(h.count(), 100);
        assert_close(h.percentile(0.50), 0.050);
        assert_close(h.percentile(0.95), 0.095);
        assert_close(h.percentile(0.99), 0.099);
        assert_close(h.percentile(1.0), 0.100);
        // p0 is defined as the first sample (rank clamps to 1).
        assert_close(h.percentile(0.0), 0.001);
    }

    #[test]
    fn percentiles_are_monotone_in_q_and_see_outliers() {
        let mut h = LatencyHistogram::default();
        for _ in 0..98 {
            h.observe(0.001);
        }
        h.observe(1.0);
        h.observe(2.0);
        let (p50, p95, p99, p100) = (
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99),
            h.percentile(1.0),
        );
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p100);
        assert_close(p50, 0.001);
        assert_close(p95, 0.001);
        assert_close(p99, 1.0);
        assert_close(p100, 2.0);
    }

    #[test]
    fn histogram_merge_matches_observing_the_union() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut union = LatencyHistogram::default();
        for i in 0..50u64 {
            let s = (i + 1) as f64 * 1e-4;
            a.observe(s);
            union.observe(s);
        }
        for i in 0..50u64 {
            let s = (i + 1) as f64 * 1e-2;
            b.observe(s);
            union.observe(s);
        }
        a.merge(&b);
        assert_eq!(a.count(), union.count());
        for q in [0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            assert_eq!(a.percentile(q), union.percentile(q));
        }
    }

    #[test]
    fn degenerate_samples_are_clamped_not_panicking() {
        let mut h = LatencyHistogram::default();
        h.observe(-1.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(0.0);
        assert_eq!(h.count(), 4);
        // Negative/NaN/zero clamp to the zero bucket; infinity saturates.
        assert_eq!(h.percentile(0.5), 0.0);
        assert!(h.percentile(1.0) > 1e9); // ~584 years, the saturation cap
    }

    #[test]
    fn stage_totals_thread_latency_through_merge() {
        let mut a = StageTotals::default();
        a.observe_latency(0.010);
        a.observe_latency(0.020);
        let mut b = StageTotals::default();
        b.observe_latency(0.030);
        b.merge(&a);
        assert_eq!(b.latency.count(), 3);
        assert_close(b.latency_percentile(1.0), 0.030);
        assert_close(b.latency_percentile(0.33), 0.010);
    }

    #[test]
    fn method_metrics_percentile_accessors_read_stage_latency() {
        let mut stages = StageTotals::default();
        for ms in 1..=100u64 {
            stages.observe_latency(ms as f64 / 1000.0);
        }
        let m = MethodMetrics {
            method: "Grapes".into(),
            indexing_time_s: 0.0,
            index_size_bytes: 0,
            distinct_features: 0,
            avg_query_time_s: 0.0,
            false_positive_ratio: 0.0,
            queries_executed: 100,
            timed_out: false,
            queries_degraded: 0,
            queries_failed: 0,
            queries_shed: 0,
            retries: 0,
            inserts_applied: 0,
            removes_applied: 0,
            stages,
            shards: 1,
            shards_probed: 0,
            shards_skipped: 0,
            shard_stages: Vec::new(),
            partition_overhead_bytes: 0,
            cache: CacheCounters::default(),
        };
        assert_close(m.latency_p50_s(), 0.050);
        assert_close(m.latency_p95_s(), 0.095);
        assert_close(m.latency_p99_s(), 0.099);
    }

    #[test]
    fn metrics_formatting() {
        let m = MethodMetrics {
            method: "Grapes".into(),
            indexing_time_s: 1.25,
            index_size_bytes: 2 * 1024 * 1024,
            distinct_features: 100,
            avg_query_time_s: 0.01,
            false_positive_ratio: 0.125,
            queries_executed: 40,
            timed_out: false,
            queries_degraded: 0,
            queries_failed: 0,
            queries_shed: 0,
            retries: 0,
            inserts_applied: 0,
            removes_applied: 0,
            stages: StageTotals::default(),
            shards: 1,
            shards_probed: 0,
            shards_skipped: 0,
            shard_stages: Vec::new(),
            partition_overhead_bytes: 0,
            cache: CacheCounters::default(),
        };
        assert!((m.index_size_mb() - 2.0).abs() < 1e-9);
        let line = m.to_log_line();
        assert!(line.contains("Grapes"));
        assert!(!line.contains("DNF"));
        let dnf = MethodMetrics {
            timed_out: true,
            ..m
        };
        assert!(dnf.to_log_line().contains("DNF"));
    }

    fn stage(filter_s: f64, verify_s: f64) -> StageTotals {
        let mut s = StageTotals::default();
        s.add_query(0.0, 0.0, filter_s, verify_s, 0);
        s
    }

    #[test]
    fn shard_accessors_fall_back_for_unsharded_runs() {
        let mut stages = StageTotals::default();
        stages.add_query(0.1, 0.0, 2.0, 3.0, 5);
        let m = MethodMetrics {
            method: "GGSX".into(),
            indexing_time_s: 0.0,
            index_size_bytes: 1,
            distinct_features: 1,
            avg_query_time_s: 0.0,
            false_positive_ratio: 0.0,
            queries_executed: 1,
            timed_out: false,
            queries_degraded: 0,
            queries_failed: 0,
            queries_shed: 0,
            retries: 0,
            inserts_applied: 0,
            removes_applied: 0,
            stages,
            shards: 1,
            shards_probed: 0,
            shards_skipped: 0,
            shard_stages: Vec::new(),
            partition_overhead_bytes: 0,
            cache: CacheCounters::default(),
        };
        assert!((m.max_shard_time_s() - 5.0).abs() < 1e-12);
        assert_eq!(m.shard_balance(), 1.0);
    }

    #[test]
    fn shard_accessors_report_critical_path_and_balance() {
        let m = MethodMetrics {
            method: "GGSX".into(),
            indexing_time_s: 0.0,
            index_size_bytes: 1,
            distinct_features: 1,
            avg_query_time_s: 0.0,
            false_positive_ratio: 0.0,
            queries_executed: 4,
            timed_out: false,
            queries_degraded: 0,
            queries_failed: 0,
            queries_shed: 0,
            retries: 0,
            inserts_applied: 0,
            removes_applied: 0,
            stages: StageTotals::default(),
            shards: 3,
            shards_probed: 12,
            shards_skipped: 0,
            shard_stages: vec![stage(1.0, 1.0), stage(0.5, 0.5), stage(2.0, 2.0)],
            partition_overhead_bytes: 96,
            cache: CacheCounters::default(),
        };
        assert!((m.max_shard_time_s() - 4.0).abs() < 1e-12);
        assert!((m.shard_balance() - 0.25).abs() < 1e-12);
        // An idle sharded wave balances trivially instead of dividing 0/0.
        let idle = MethodMetrics {
            shard_stages: vec![StageTotals::default(); 3],
            ..m
        };
        assert_eq!(idle.shard_balance(), 1.0);
        assert_eq!(idle.max_shard_time_s(), 0.0);
        assert!(idle.shard_balance().is_finite());
    }

    /// Regression: when routing probes only a shard subset, the skipped
    /// shards' zero seconds must not drag the balance to 0 — balance is
    /// computed over probed shards only.
    #[test]
    fn shard_balance_ignores_unprobed_shards() {
        let m = MethodMetrics {
            method: "GGSX".into(),
            indexing_time_s: 0.0,
            index_size_bytes: 1,
            distinct_features: 1,
            avg_query_time_s: 0.0,
            false_positive_ratio: 0.0,
            queries_executed: 2,
            timed_out: false,
            queries_degraded: 0,
            queries_failed: 0,
            queries_shed: 0,
            retries: 0,
            inserts_applied: 0,
            removes_applied: 0,
            stages: StageTotals::default(),
            shards: 3,
            shards_probed: 2,
            shards_skipped: 4,
            // Two probed shards (2 s and 1 s) and one the router skipped
            // for the whole wave (no queries, zero time).
            shard_stages: vec![stage(1.0, 1.0), stage(0.5, 0.5), StageTotals::default()],
            partition_overhead_bytes: 48,
            cache: CacheCounters::default(),
        };
        assert!(
            (m.shard_balance() - 0.5).abs() < 1e-12,
            "balance must be 1s/2s over the probed shards, got {}",
            m.shard_balance()
        );
        // A wave where only one shard was probed has nothing to balance.
        let single = MethodMetrics {
            shard_stages: vec![stage(1.0, 1.0), StageTotals::default()],
            ..m
        };
        assert_eq!(single.shard_balance(), 1.0);
        // max_shard_time_s still reports the busiest probed shard.
        assert!((single.max_shard_time_s() - 2.0).abs() < 1e-12);
    }
}
