//! The two pipeline stages a query passes through, plus the job record that
//! travels between them.
//!
//! The filter stage narrows a worker-owned arena [`CandidateSet`] in place
//! via [`GraphIndex::filter_into`] — no candidate `Vec` is materialized.
//! The arena then travels *inside* the [`VerifyJob`] to the verify stage
//! (usually popped right back by the same worker, sometimes stolen by an
//! idle one), which runs [`GraphIndex::verify_set`] straight off the bits —
//! preserving each method's specialized verification (CT-Index's tuned
//! matcher, Grapes' location-restricted matching, Tree+Δ's Δ learning) —
//! and hands the set back for recycling.

use crate::metrics::Stopwatch;
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_index::{CandidateSet, FeatureCacheStore, FilterCacheCtx, GraphIndex};

/// How one query's service-side execution ended. Every query a wave or
/// batch accepts gets exactly one outcome — there is no implicit
/// assume-success path — and the merge, the metrics and the CSV report all
/// speak this vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Every probed shard (or the single pool) verified the query: the
    /// answer set is exact.
    Complete,
    /// Some probed shards finished and others failed or timed out within
    /// the deadline budget. The answer set is the union of the finished
    /// shards — *sound* (every reported id is a real match; shards verify
    /// exactly) but possibly incomplete by up to `shards_missing` shards'
    /// worth of answers.
    Degraded {
        /// Probed shards that contributed nothing (failed or timed out).
        shards_missing: usize,
    },
    /// The deadline expired before the query could start anywhere; no
    /// answers are reported.
    TimedOut,
    /// The query's execution panicked (or its pool died) on every shard
    /// that could have answered it, and retries did not recover it.
    Failed,
    /// Admission shed the query before it entered a wave: its deadline was
    /// infeasible given the backlog. Only admission-side accounting uses
    /// this variant — a shed query never reaches a wave.
    Shed,
}

impl QueryOutcome {
    /// `true` for outcomes that produced a (possibly partial) answer set:
    /// [`QueryOutcome::Complete`] and [`QueryOutcome::Degraded`].
    pub fn is_executed(&self) -> bool {
        matches!(self, QueryOutcome::Complete | QueryOutcome::Degraded { .. })
    }

    /// Short name used in logs and test diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            QueryOutcome::Complete => "complete",
            QueryOutcome::Degraded { .. } => "degraded",
            QueryOutcome::TimedOut => "timed-out",
            QueryOutcome::Failed => "failed",
            QueryOutcome::Shed => "shed",
        }
    }
}

/// A query that passed the filter stage and awaits verification, carrying
/// its candidate arena and the timings recorded so far.
pub struct VerifyJob<'q> {
    /// Position of the query in the submitted batch.
    pub query_index: usize,
    /// The query graph itself.
    pub query: &'q Graph,
    /// The filtered candidate set (an arena on loan from a worker; returned
    /// to whichever worker verifies the job).
    pub candidates: CandidateSet,
    /// Seconds the query waited in the request queue before filtering.
    pub queue_wait_s: f64,
    /// Seconds the filter stage spent probing the cross-query feature
    /// cache (0.0 when caching is disabled or the method opts out).
    pub cache_probe_s: f64,
    /// Seconds the filter stage took, cache probes excluded.
    pub filter_s: f64,
}

/// What the service records for one executed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// Number of graphs that survived filtering.
    pub candidate_count: usize,
    /// Graphs pruned by filtering (`universe − candidate_count`).
    pub candidates_pruned: usize,
    /// The verified answer ids, sorted ascending.
    pub answers: Vec<GraphId>,
    /// Seconds spent waiting in the request queue.
    pub queue_wait_s: f64,
    /// Seconds spent probing the cross-query caches (feature-cache probes
    /// inside the filter stage, or the admission-time answer-memo probe for
    /// a memo-served query). `0.0` when caching is disabled.
    pub cache_probe_s: f64,
    /// Seconds spent in the filter stage, cache probes excluded.
    pub filter_s: f64,
    /// Seconds spent in the verify stage.
    pub verify_s: f64,
}

impl QueryRecord {
    /// Number of verified answers.
    pub fn answer_count(&self) -> usize {
        self.answers.len()
    }
}

/// Filter stage: narrows the borrowed arena to the query's candidates and
/// returns `(filter_s, cache_probe_s)` — the stage's wall time split into
/// filtering proper and cross-query cache probing. With `cache: None` (or
/// a method that opts out of [`GraphIndex::filter_into_cached`]) the probe
/// time is exactly `0.0` and the path is byte-identical to the uncached
/// service.
pub fn filter_stage(
    index: &dyn GraphIndex,
    query: &Graph,
    arena: &mut CandidateSet,
    cache: Option<&dyn FeatureCacheStore>,
) -> (f64, f64) {
    let watch = Stopwatch::start();
    let cache_probe_s = match cache {
        Some(store) => {
            let mut ctx = FilterCacheCtx::new(store);
            index.filter_into_cached(query, arena, &mut ctx);
            ctx.probe_seconds()
        }
        None => {
            index.filter_into(query, arena);
            0.0
        }
    };
    let total = watch.elapsed_secs();
    ((total - cache_probe_s).max(0.0), cache_probe_s)
}

/// Verify stage: consumes a [`VerifyJob`], verifies its candidates straight
/// off the bitset, and returns the finished record together with the arena
/// set for recycling.
pub fn verify_stage(
    index: &dyn GraphIndex,
    dataset: &Dataset,
    job: VerifyJob<'_>,
) -> (usize, QueryRecord, CandidateSet) {
    let watch = Stopwatch::start();
    let answers = index.verify_set(dataset, job.query, &job.candidates);
    let verify_s = watch.elapsed_secs();
    let candidate_count = job.candidates.len();
    let record = QueryRecord {
        candidate_count,
        candidates_pruned: job.candidates.universe() - candidate_count,
        answers,
        queue_wait_s: job.queue_wait_s,
        cache_probe_s: job.cache_probe_s,
        filter_s: job.filter_s,
        verify_s,
    };
    (job.query_index, record, job.candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::GraphBuilder;
    use sqbench_index::{build_index, MethodConfig, MethodKind};

    #[test]
    fn stages_compose_into_a_full_query() {
        let tri = GraphBuilder::new("tri")
            .vertices(&[1, 1, 2])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let path = GraphBuilder::new("path")
            .vertices(&[1, 2, 3])
            .edges(&[(0, 1), (1, 2)])
            .build()
            .unwrap();
        let ds = Dataset::from_graphs("ds", vec![tri, path]);
        let index = build_index(MethodKind::Ggsx, &MethodConfig::fast(), &ds);
        let query = GraphBuilder::new("q")
            .vertices(&[1, 2])
            .edge(0, 1)
            .build()
            .unwrap();

        let mut arena = CandidateSet::empty(0); // dirty universe on purpose
        let (filter_s, cache_probe_s) = filter_stage(&*index, &query, &mut arena, None);
        assert!(filter_s >= 0.0);
        assert_eq!(cache_probe_s, 0.0, "no cache, no probe time");
        let job = VerifyJob {
            query_index: 7,
            query: &query,
            candidates: arena,
            queue_wait_s: 0.0,
            cache_probe_s,
            filter_s,
        };
        let (idx, record, recycled) = verify_stage(&*index, &ds, job);
        assert_eq!(idx, 7);
        assert_eq!(record.candidate_count + record.candidates_pruned, ds.len());
        assert_eq!(recycled.universe(), ds.len());

        // The staged result equals the one-shot query path.
        let outcome = index.query(&ds, &query);
        assert_eq!(record.answers, outcome.answers);
        assert_eq!(record.candidate_count, outcome.candidates.len());
        assert_eq!(record.answer_count(), outcome.answers.len());
    }
}
