//! Request queue primitives of the batch query service.
//!
//! Two queues drive the pipeline:
//!
//! * [`BatchQueue`] — the injector the whole batch is submitted to. Workers
//!   *claim* queries with a single atomic fetch-add, which is both the
//!   cheapest possible MPMC pop for an indexed batch and a work-stealing
//!   discipline: an idle worker always takes the next unstarted query, so
//!   load balances dynamically no matter how skewed per-query costs are.
//!   Claiming also timestamps the query's queue wait.
//! * [`StealDeque`] — one double-ended verify queue per worker. The owning
//!   worker pushes filtered jobs to the back and pops from the back (LIFO —
//!   its freshest arena contents stay cache-hot); idle workers steal from
//!   the front (FIFO — the oldest parked job has waited longest).

use sqbench_graph::Graph;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// The filter-stage injector: an indexed batch of queries plus an atomic
/// cursor. See the module docs for the claiming discipline.
pub struct BatchQueue<'q> {
    queries: &'q [&'q Graph],
    /// Optional per-query deadlines, indexed like `queries`. A query whose
    /// deadline has passed when a worker claims it is skipped, independent
    /// of the batch-wide deadline — this is how the open admission path
    /// honours the deadline each caller attached at `submit` time.
    deadlines: Option<&'q [Option<Instant>]>,
    next: AtomicUsize,
    /// Claimed-but-unrecorded queries: incremented by [`BatchQueue::claim`],
    /// decremented by [`BatchQueue::complete_one`]. Workers may only exit
    /// when the cursor is exhausted *and* this is zero.
    in_flight: AtomicUsize,
    started: Instant,
}

impl<'q> BatchQueue<'q> {
    /// Wraps a batch of queries as a queue; queue waits are measured from
    /// this call.
    pub fn new(queries: &'q [&'q Graph]) -> Self {
        Self::with_deadlines(queries, None)
    }

    /// Like [`BatchQueue::new`], but attaching a per-query deadline slice
    /// (indexed like `queries`; `None` entries mean no individual deadline).
    ///
    /// # Panics
    ///
    /// Panics when the deadline slice length differs from the batch length.
    pub fn with_deadlines(
        queries: &'q [&'q Graph],
        deadlines: Option<&'q [Option<Instant>]>,
    ) -> Self {
        if let Some(d) = deadlines {
            assert_eq!(
                d.len(),
                queries.len(),
                "per-query deadline slice must match the batch length"
            );
        }
        BatchQueue {
            queries,
            deadlines,
            next: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// The individual deadline attached to query `idx`, if any.
    pub fn deadline_of(&self, idx: usize) -> Option<Instant> {
        self.deadlines.and_then(|d| d.get(idx).copied().flatten())
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Claims the next unstarted query: `(index, query, queue wait in
    /// seconds)`. Returns `None` once every query has been claimed. The
    /// claim counts as in-flight until [`BatchQueue::complete_one`] is
    /// called for it.
    pub fn claim(&self) -> Option<(usize, &'q Graph, f64)> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        let query = self.queries.get(idx)?;
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        Some((idx, query, self.started.elapsed().as_secs_f64()))
    }

    /// Marks one claimed query as fully processed (verified or skipped).
    pub fn complete_one(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// `true` when every query has been claimed *and* recorded — the
    /// worker-pool exit condition.
    pub fn drained(&self) -> bool {
        self.next.load(Ordering::SeqCst) >= self.queries.len()
            && self.in_flight.load(Ordering::SeqCst) == 0
    }
}

/// A mutex-guarded double-ended job queue with owner-LIFO / thief-FIFO
/// semantics. The service keeps one per worker for parked verify jobs.
pub struct StealDeque<T> {
    jobs: Mutex<VecDeque<T>>,
}

impl<T> Default for StealDeque<T> {
    fn default() -> Self {
        StealDeque {
            jobs: Mutex::new(VecDeque::new()),
        }
    }
}

impl<T> StealDeque<T> {
    /// Poison-tolerant lock. The guarded `VecDeque` operations are single
    /// push/pop calls that either complete or leave the deque untouched, so
    /// a panic on some *other* worker's stack (per-query faults are caught,
    /// but defence in depth) must not cascade into every queue access —
    /// recover the guard instead.
    fn jobs(&self) -> MutexGuard<'_, VecDeque<T>> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pushes a job at the owner's end.
    pub fn push(&self, job: T) {
        self.jobs().push_back(job);
    }

    /// Pops the owner's most recently pushed job.
    pub fn pop(&self) -> Option<T> {
        self.jobs().pop_back()
    }

    /// Steals the oldest parked job (called by other workers).
    pub fn steal(&self) -> Option<T> {
        self.jobs().pop_front()
    }

    /// Number of parked jobs.
    pub fn len(&self) -> usize {
        self.jobs().len()
    }

    /// `true` when no job is parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::Graph;

    #[test]
    fn claims_are_exclusive_and_ordered() {
        let g = Graph::new("q");
        let queries: Vec<&Graph> = vec![&g, &g, &g];
        let queue = BatchQueue::new(&queries);
        assert_eq!(queue.len(), 3);
        let (i0, _, w0) = queue.claim().unwrap();
        let (i1, _, _) = queue.claim().unwrap();
        let (i2, _, _) = queue.claim().unwrap();
        assert_eq!((i0, i1, i2), (0, 1, 2));
        assert!(w0 >= 0.0);
        assert!(queue.claim().is_none());
        assert!(!queue.drained());
        queue.complete_one();
        queue.complete_one();
        queue.complete_one();
        assert!(queue.drained());
    }

    #[test]
    fn per_query_deadlines_are_indexed_like_the_batch() {
        let g = Graph::new("q");
        let queries: Vec<&Graph> = vec![&g, &g];
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let deadlines = [Some(past), None];
        let queue = BatchQueue::with_deadlines(&queries, Some(&deadlines));
        assert_eq!(queue.deadline_of(0), Some(past));
        assert_eq!(queue.deadline_of(1), None);
        assert_eq!(queue.deadline_of(7), None); // out of range is just "none"
        let plain = BatchQueue::new(&queries);
        assert_eq!(plain.deadline_of(0), None);
    }

    #[test]
    #[should_panic(expected = "deadline slice must match")]
    fn mismatched_deadline_slice_panics() {
        let g = Graph::new("q");
        let queries: Vec<&Graph> = vec![&g, &g];
        let deadlines = [None];
        let _ = BatchQueue::with_deadlines(&queries, Some(&deadlines));
    }

    #[test]
    fn empty_batch_is_immediately_drained() {
        let queries: Vec<&Graph> = Vec::new();
        let queue = BatchQueue::new(&queries);
        assert!(queue.is_empty());
        assert!(queue.claim().is_none());
        assert!(queue.drained());
    }

    #[test]
    fn deque_owner_lifo_thief_fifo() {
        let deque: StealDeque<u32> = StealDeque::default();
        deque.push(1);
        deque.push(2);
        deque.push(3);
        assert_eq!(deque.len(), 3);
        assert_eq!(deque.steal(), Some(1)); // oldest
        assert_eq!(deque.pop(), Some(3)); // newest
        assert_eq!(deque.pop(), Some(2));
        assert!(deque.is_empty());
        assert_eq!(deque.pop(), None);
        assert_eq!(deque.steal(), None);
    }
}
