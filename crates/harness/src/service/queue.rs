//! Request queue primitives of the batch query service.
//!
//! Two queues drive the pipeline:
//!
//! * [`BatchQueue`] — the injector the whole batch is submitted to. Workers
//!   *claim* queries with a single atomic fetch-add, which is both the
//!   cheapest possible MPMC pop for an indexed batch and a work-stealing
//!   discipline: an idle worker always takes the next unstarted query, so
//!   load balances dynamically no matter how skewed per-query costs are.
//!   Claiming also timestamps the query's queue wait.
//! * [`StealDeque`] — one double-ended verify queue per worker. The owning
//!   worker pushes filtered jobs to the back and pops from the back (LIFO —
//!   its freshest arena contents stay cache-hot); idle workers steal from
//!   the front (FIFO — the oldest parked job has waited longest).

use sqbench_graph::Graph;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The filter-stage injector: an indexed batch of queries plus an atomic
/// cursor. See the module docs for the claiming discipline.
pub struct BatchQueue<'q> {
    queries: &'q [&'q Graph],
    next: AtomicUsize,
    /// Claimed-but-unrecorded queries: incremented by [`BatchQueue::claim`],
    /// decremented by [`BatchQueue::complete_one`]. Workers may only exit
    /// when the cursor is exhausted *and* this is zero.
    in_flight: AtomicUsize,
    started: Instant,
}

impl<'q> BatchQueue<'q> {
    /// Wraps a batch of queries as a queue; queue waits are measured from
    /// this call.
    pub fn new(queries: &'q [&'q Graph]) -> Self {
        BatchQueue {
            queries,
            next: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Claims the next unstarted query: `(index, query, queue wait in
    /// seconds)`. Returns `None` once every query has been claimed. The
    /// claim counts as in-flight until [`BatchQueue::complete_one`] is
    /// called for it.
    pub fn claim(&self) -> Option<(usize, &'q Graph, f64)> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        let query = self.queries.get(idx)?;
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        Some((idx, query, self.started.elapsed().as_secs_f64()))
    }

    /// Marks one claimed query as fully processed (verified or skipped).
    pub fn complete_one(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// `true` when every query has been claimed *and* recorded — the
    /// worker-pool exit condition.
    pub fn drained(&self) -> bool {
        self.next.load(Ordering::SeqCst) >= self.queries.len()
            && self.in_flight.load(Ordering::SeqCst) == 0
    }
}

/// A mutex-guarded double-ended job queue with owner-LIFO / thief-FIFO
/// semantics. The service keeps one per worker for parked verify jobs.
pub struct StealDeque<T> {
    jobs: Mutex<VecDeque<T>>,
}

impl<T> Default for StealDeque<T> {
    fn default() -> Self {
        StealDeque {
            jobs: Mutex::new(VecDeque::new()),
        }
    }
}

impl<T> StealDeque<T> {
    /// Pushes a job at the owner's end.
    pub fn push(&self, job: T) {
        self.jobs
            .lock()
            .expect("verify deque poisoned")
            .push_back(job);
    }

    /// Pops the owner's most recently pushed job.
    pub fn pop(&self) -> Option<T> {
        self.jobs.lock().expect("verify deque poisoned").pop_back()
    }

    /// Steals the oldest parked job (called by other workers).
    pub fn steal(&self) -> Option<T> {
        self.jobs.lock().expect("verify deque poisoned").pop_front()
    }

    /// Number of parked jobs.
    pub fn len(&self) -> usize {
        self.jobs.lock().expect("verify deque poisoned").len()
    }

    /// `true` when no job is parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::Graph;

    #[test]
    fn claims_are_exclusive_and_ordered() {
        let g = Graph::new("q");
        let queries: Vec<&Graph> = vec![&g, &g, &g];
        let queue = BatchQueue::new(&queries);
        assert_eq!(queue.len(), 3);
        let (i0, _, w0) = queue.claim().unwrap();
        let (i1, _, _) = queue.claim().unwrap();
        let (i2, _, _) = queue.claim().unwrap();
        assert_eq!((i0, i1, i2), (0, 1, 2));
        assert!(w0 >= 0.0);
        assert!(queue.claim().is_none());
        assert!(!queue.drained());
        queue.complete_one();
        queue.complete_one();
        queue.complete_one();
        assert!(queue.drained());
    }

    #[test]
    fn empty_batch_is_immediately_drained() {
        let queries: Vec<&Graph> = Vec::new();
        let queue = BatchQueue::new(&queries);
        assert!(queue.is_empty());
        assert!(queue.claim().is_none());
        assert!(queue.drained());
    }

    #[test]
    fn deque_owner_lifo_thief_fifo() {
        let deque: StealDeque<u32> = StealDeque::default();
        deque.push(1);
        deque.push(2);
        deque.push(3);
        assert_eq!(deque.len(), 3);
        assert_eq!(deque.steal(), Some(1)); // oldest
        assert_eq!(deque.pop(), Some(3)); // newest
        assert_eq!(deque.pop(), Some(2));
        assert!(deque.is_empty());
        assert_eq!(deque.pop(), None);
        assert_eq!(deque.steal(), None);
    }
}
