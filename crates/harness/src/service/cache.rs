//! The cross-query caching layer: a per-shard LRU of hot per-feature
//! candidate bitsets plus an optional whole-answer memo keyed by the
//! query's canonical graph key.
//!
//! Both levels exist for the same workload shape — heavy traffic that
//! hammers the same few query patterns — and both are *sound by
//! construction* rather than by revalidation:
//!
//! * **Feature cache** ([`FeatureCache`]): one store per (shard, method)
//!   index instance, implementing
//!   [`sqbench_index::FeatureCacheStore`]. Every cached bitset is an
//!   immutable posting list of that one instance (trie payloads and mined
//!   supports are frozen at build time; Tree+Δ's learned Δ supports never
//!   change once inserted), so a hit can never be stale within one cache
//!   epoch. Binding stores per instance also makes keys shard-local —
//!   a shard never sees another shard's bits.
//! * **Answer memo** ([`AnswerMemo`]): maps a query's *exact* canonical
//!   form to its complete verified answer set. Entries are only admitted
//!   for queries small enough for exact canonicalization
//!   ([`sqbench_features::canonical::MAX_EXACT_CANON_VERTICES`]) — the
//!   Weisfeiler–Lehman fallback beyond that MAY collide and must never
//!   gate correctness — and only from [`QueryOutcome::Complete`] runs, so
//!   a hit is bit-identical to re-executing the query. Isomorphic queries
//!   share an entry by design: same canonical form, same answer set.
//!
//! [`QueryOutcome::Complete`]: super::stages::QueryOutcome::Complete
//!
//! # Invalidation (the ingest path)
//!
//! The dataset is mutable: [`super::ShardedService::insert_graph`] and
//! [`super::ShardedService::remove_graph`] (and the typed
//! [`super::IngestOp`] mutations drained from the admission queue) change
//! what every cached entry was computed against. Both cache levels carry
//! a monotonically increasing **epoch** ([`FeatureCache::epoch`],
//! [`AnswerMemo::epoch`]), and [`FeatureCache::invalidate_all`] /
//! [`AnswerMemo::invalidate_all`] bump it and drop every entry. **Every
//! mutation entry point calls the owning service's `invalidate_caches()`
//! automatically**, so a cached answer or feature bitset can never span a
//! mutation — which is exactly what lets the answer memo stay *enabled*
//! on mutable workloads: a memo hit skips the shards entirely, and
//! without the automatic flush it would replay answers from before the
//! mutation (the stale-cache hazard pinned by the
//! `mutations_invalidate_the_answer_memo` regression test).

use sqbench_features::canonical::{graph_key, MAX_EXACT_CANON_VERTICES};
use sqbench_graph::{Graph, GraphId};
use sqbench_index::{CandidateSet, FeatureCacheStore};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The cache knobs of the unified [`super::ServiceOptions`] surface — the
/// *only* config surface that carries them. Capacity `0` disables a level;
/// the default disables both, so every pre-cache code path (and every
/// committed golden number) is byte-for-byte unchanged until a caller opts
/// in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachePolicy {
    /// Max entries of each per-shard feature-bitset LRU (0 = disabled).
    pub feature_capacity: usize,
    /// Max entries of the whole-answer memo (0 = disabled).
    pub answer_capacity: usize,
}

impl CachePolicy {
    /// Both levels off — the default, preserving pre-cache behavior.
    pub fn disabled() -> Self {
        CachePolicy {
            feature_capacity: 0,
            answer_capacity: 0,
        }
    }

    /// Both levels on with serving-friendly capacities.
    pub fn enabled() -> Self {
        CachePolicy {
            feature_capacity: 4096,
            answer_capacity: 1024,
        }
    }

    /// `true` when neither level is enabled.
    pub fn is_disabled(&self) -> bool {
        self.feature_capacity == 0 && self.answer_capacity == 0
    }
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy::disabled()
    }
}

const NIL: usize = usize::MAX;

struct Slot<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

/// A string-keyed LRU map: O(1) `get`/`put` via a slot-index doubly-linked
/// recency list over a `HashMap`, with an eviction counter. Interior
/// mutability and thread safety are the wrapping cache's concern — both
/// [`FeatureCache`] and [`AnswerMemo`] hold one behind a `Mutex`.
pub struct Lru<V> {
    map: HashMap<String, usize>,
    slots: Vec<Slot<V>>,
    head: usize,
    tail: usize,
    capacity: usize,
    evictions: u64,
}

impl<V> Lru<V> {
    /// An empty LRU holding at most `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Lru {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            evictions: 0,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Evictions performed since construction (or the last [`Lru::clear`]).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn link_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, marking the entry most-recently used on a hit.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.unlink(idx);
            self.link_front(idx);
        }
        Some(&self.slots[idx].value)
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when at capacity.
    pub fn put(&mut self, key: String, value: V) {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            if idx != self.head {
                self.unlink(idx);
                self.link_front(idx);
            }
            return;
        }
        let idx = if self.map.len() >= self.capacity {
            // Reuse the evicted tail slot in place.
            let idx = self.tail;
            self.unlink(idx);
            let old_key = std::mem::replace(&mut self.slots[idx].key, key.clone());
            self.map.remove(&old_key);
            self.slots[idx].value = value;
            self.evictions += 1;
            idx
        } else {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.map.insert(key, idx);
        self.link_front(idx);
    }

    /// Drops every entry (the eviction counter is preserved — counted
    /// evictions were capacity pressure, a clear is invalidation).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// Per-(shard, method) LRU of hot per-feature candidate bitsets — the
/// store behind [`sqbench_index::GraphIndex::filter_into_cached`]. Shared
/// by all of one shard's workers; hits and misses are counted here (across
/// every query that probed the store), evictions inside the LRU.
pub struct FeatureCache {
    entries: Mutex<Lru<Arc<CandidateSet>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    epoch: AtomicU64,
}

impl FeatureCache {
    /// An empty cache holding at most `capacity` feature bitsets.
    pub fn new(capacity: usize) -> Self {
        FeatureCache {
            entries: Mutex::new(Lru::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Lru<Arc<CandidateSet>>> {
        // Poison-tolerant like the admission queue: a worker that panicked
        // while holding the lock cannot leave a half-written entry (puts
        // are single `HashMap`/`Vec` operations), so serving continues.
        self.entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Feature lookups that found a cached bitset.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Feature lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions()
    }

    /// Current cache epoch; bumped by [`FeatureCache::invalidate_all`].
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Drops every entry and bumps the epoch. Invoked automatically (via
    /// the owning service's `invalidate_caches()`) by every mutation entry
    /// point — `ShardedService::insert_graph`/`remove_graph` and drained
    /// `IngestOp` mutations — so no cached entry ever spans a mutation.
    pub fn invalidate_all(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        self.lock().clear();
    }
}

impl FeatureCacheStore for FeatureCache {
    fn get(&self, key: &str) -> Option<Arc<CandidateSet>> {
        let hit = self.lock().get(key).cloned();
        match hit {
            Some(set) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(set)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, key: String, value: Arc<CandidateSet>) {
        self.lock().put(key, value);
    }
}

/// What the answer memo stores for one canonical query: everything needed
/// to synthesize a [`super::stages::QueryRecord`] without touching a
/// shard, so a memo hit reports the same candidate accounting (and thus
/// the same false-positive ratio) as the run that populated it.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerEntry {
    /// The complete verified answer ids, sorted ascending.
    pub answers: Vec<GraphId>,
    /// Candidate-set size of the populating run.
    pub candidate_count: usize,
    /// Graphs pruned by the populating run's filter stage.
    pub candidates_pruned: usize,
}

/// Whole-answer memo keyed by exact canonical graph form. One per service
/// (not per shard — the memoized answer set is the merged, global one);
/// probed at admission before any shard is planned.
pub struct AnswerMemo {
    entries: Mutex<Lru<Arc<AnswerEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    epoch: AtomicU64,
}

/// The memo key of a query, or `None` when the query is too large for
/// *exact* canonicalization. Beyond
/// [`MAX_EXACT_CANON_VERTICES`] vertices `graph_key` falls back to a
/// Weisfeiler–Lehman refinement string that MAY collide across
/// non-isomorphic graphs, and a collision here would serve one query
/// another query's answers — so such queries always take the full path.
pub fn answer_memo_key(query: &Graph) -> Option<String> {
    if query.vertex_count() <= MAX_EXACT_CANON_VERTICES {
        Some(graph_key(query).as_str().to_string())
    } else {
        None
    }
}

impl AnswerMemo {
    /// An empty memo holding at most `capacity` answer sets.
    pub fn new(capacity: usize) -> Self {
        AnswerMemo {
            entries: Mutex::new(Lru::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Lru<Arc<AnswerEntry>>> {
        self.entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Looks up a memoized answer set by canonical key.
    pub fn lookup(&self, key: &str) -> Option<Arc<AnswerEntry>> {
        let hit = self.lock().get(key).cloned();
        match hit {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a completed query's answer set. Callers only insert
    /// [`super::stages::QueryOutcome::Complete`] results — a degraded or
    /// partial answer set must never be served as complete later.
    pub fn insert(&self, key: String, entry: AnswerEntry) {
        self.lock().put(key, Arc::new(entry));
    }

    /// Memo lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Memo lookups that missed (eligible queries only — oversized queries
    /// never probe).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions()
    }

    /// Current memo epoch; bumped by [`AnswerMemo::invalidate_all`].
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Drops every entry and bumps the epoch. Invoked automatically (via
    /// the owning service's `invalidate_caches()`) by every mutation entry
    /// point — `ShardedService::insert_graph`/`remove_graph` and drained
    /// `IngestOp` mutations — so no cached entry ever spans a mutation.
    pub fn invalidate_all(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        self.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::GraphBuilder;

    #[test]
    fn lru_capacity_two_evicts_lru_not_mru() {
        // The ISSUE's pinned eviction scenario: A, B, A, C — the A probe
        // refreshes A's recency, so inserting C must evict B, not A.
        let mut lru = Lru::new(2);
        lru.put("A".into(), 1);
        lru.put("B".into(), 2);
        assert_eq!(lru.get("A"), Some(&1));
        lru.put("C".into(), 3);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.evictions(), 1);
        assert_eq!(lru.get("B"), None, "B was LRU and must be evicted");
        assert_eq!(lru.get("A"), Some(&1), "A was refreshed and must survive");
        assert_eq!(lru.get("C"), Some(&3));
    }

    #[test]
    fn lru_refresh_on_put_updates_value_and_recency() {
        let mut lru = Lru::new(2);
        lru.put("A".into(), 1);
        lru.put("B".into(), 2);
        lru.put("A".into(), 10); // refresh, not insert: no eviction
        assert_eq!(lru.evictions(), 0);
        lru.put("C".into(), 3); // now B is LRU
        assert_eq!(lru.get("B"), None);
        assert_eq!(lru.get("A"), Some(&10));
    }

    #[test]
    fn lru_single_slot_churns() {
        let mut lru = Lru::new(1);
        for (i, key) in ["x", "y", "z"].iter().enumerate() {
            lru.put((*key).into(), i);
            assert_eq!(lru.get(key), Some(&i));
            assert_eq!(lru.len(), 1);
        }
        assert_eq!(lru.evictions(), 2);
    }

    #[test]
    fn feature_cache_counts_and_invalidates() {
        let cache = FeatureCache::new(8);
        assert!(FeatureCacheStore::get(&cache, "k").is_none());
        FeatureCacheStore::put(&cache, "k".into(), Arc::new(CandidateSet::full(5)));
        assert_eq!(FeatureCacheStore::get(&cache, "k").expect("hit").len(), 5);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let epoch = cache.epoch();
        cache.invalidate_all();
        assert_eq!(cache.epoch(), epoch + 1);
        assert!(FeatureCacheStore::get(&cache, "k").is_none());
    }

    #[test]
    fn answer_memo_round_trips_and_keys_isomorphic_queries_together() {
        // The same triangle built with two different vertex orders: exact
        // canonicalization gives both the same memo key.
        let q1 = GraphBuilder::new("q1")
            .vertices(&[1, 2, 3])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let q2 = GraphBuilder::new("q2")
            .vertices(&[3, 1, 2])
            .edges(&[(1, 2), (2, 0), (0, 1)])
            .build()
            .unwrap();
        let k1 = answer_memo_key(&q1).expect("small query is eligible");
        let k2 = answer_memo_key(&q2).expect("small query is eligible");
        assert_eq!(k1, k2);

        let memo = AnswerMemo::new(4);
        assert!(memo.lookup(&k1).is_none());
        memo.insert(
            k1.clone(),
            AnswerEntry {
                answers: vec![0, 2],
                candidate_count: 3,
                candidates_pruned: 7,
            },
        );
        let entry = memo.lookup(&k2).expect("isomorphic query hits");
        assert_eq!(entry.answers, vec![0, 2]);
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
    }

    #[test]
    fn oversized_queries_are_never_memo_eligible() {
        let n = MAX_EXACT_CANON_VERTICES + 1;
        let labels: Vec<u32> = vec![1; n];
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let q = GraphBuilder::new("big")
            .vertices(&labels)
            .edges(&edges)
            .build()
            .unwrap();
        assert!(
            answer_memo_key(&q).is_none(),
            "WL-fallback keys may collide and must not gate correctness"
        );
    }
}
