//! Long-lived batch query service: a pipelined filter → verify worker pool
//! over one loaded index.
//!
//! The paper measures one query at a time; a reproduction that wants to
//! expose how filtering and verification costs trade off *at scale* has to
//! serve whole workloads. This module is that serving layer — the
//! experiment runner and every figure driver route their workloads through
//! it.
//!
//! # Architecture
//!
//! ```text
//!             ┌────────────────────── QueryService ─────────────────────┐
//!  batch ───► │ BatchQueue (injector, atomic claim = work stealing)     │
//!             │      │ claim                                            │
//!             │      ▼                                                  │
//!             │ ┌─ worker 0 ─┐  ┌─ worker 1 ─┐ … ┌─ worker N ─┐         │
//!             │ │ filter_into│  │ filter_into│   │ filter_into│  stage 1│
//!             │ │  (arena)   │  │  (arena)   │   │  (arena)   │         │
//!             │ │     ▼      │  │     ▼      │   │     ▼      │         │
//!             │ │ VerifyJob ─┼─► StealDeque per worker ◄──────┼─ steal  │
//!             │ │     ▼      │  │     ▼      │   │     ▼      │         │
//!             │ │ verify_set │  │ verify_set │   │ verify_set │  stage 2│
//!             │ └────────────┘  └────────────┘   └────────────┘         │
//!             │      ▼ per-query records + stage timings                │
//!             └──────┴──► BatchReport (records, StageTotals, wall time) │
//!             └─────────────────────────────────────────────────────────┘
//! ```
//!
//! * **Request queue** ([`queue`]) — the batch is an indexed slice; workers
//!   claim the next unstarted query with an atomic fetch-add. Claiming is
//!   the load-balancing mechanism: whichever worker is free takes the next
//!   query, so skewed per-query costs never idle the pool.
//! * **Worker pool** ([`pool`]) — workers are scoped threads (they borrow
//!   the index and dataset; no `Arc` plumbing), but each worker's
//!   [`pool::WorkerArena`] is owned by the service and **persists across
//!   batches**: the filter stage narrows a recycled [`CandidateSet`] in
//!   place via [`GraphIndex::filter_into`] and never materializes a
//!   `Vec<GraphId>` of candidates.
//! * **Pipeline stages** ([`stages`]) — filtering produces a
//!   [`stages::VerifyJob`] carrying the arena; verification runs
//!   [`GraphIndex::verify_set`] straight off the bits and recycles the
//!   arena. In a multi-worker pool each worker *filters ahead* by up to two
//!   queries before verifying, parking the filtered jobs in its
//!   [`queue::StealDeque`] — while it filters (or grinds through a long
//!   verification) those parked jobs are stealable by idle workers, which
//!   is what lets the filter of one query overlap the verification of
//!   another across the pool.
//!
//! # Arena ownership
//!
//! A [`CandidateSet`] arena is owned by exactly one [`pool::WorkerArena`]
//! at rest and by exactly one [`stages::VerifyJob`] in flight. The verify
//! stage returns the set to the pool of whichever worker ran it (stealing
//! migrates sets between workers); the filter-ahead bound caps in-flight
//! jobs at two per worker, so the fleet-wide set count stays a small
//! multiple of the pool size and reuse is total after warm-up.
//!
//! # Determinism
//!
//! With one worker the service claims, filters and verifies queries in
//! batch order — bit-for-bit the sequential runner semantics, including the
//! order-dependent feature learning of Tree+Δ. With several workers answer
//! sets are still exact per query (verification is exact regardless of
//! filtering power); only order-sensitive *candidate* trajectories of
//! learning methods may differ.
//!
//! # Beyond one index and one closed batch
//!
//! Four sibling modules generalize this serving layer:
//!
//! * [`sharded`] — partitions the dataset across N cooperating shard pools
//!   (each with its own index and arenas), fans every wave out across the
//!   shards concurrently and merges the per-shard match sets back into
//!   global answers;
//! * [`synopsis`] — the selective shard-routing tier: per-shard label /
//!   degree / size synopses and the [`Router`] that lets a wave skip
//!   shards which provably hold no match, instead of fanning every query
//!   to every shard;
//! * [`admission`] — a bounded, continuously-admitting query queue
//!   (`submit`/`drain` with backpressure and per-query deadlines) that
//!   replaces the closed `run_batch`-only entry point for open traffic;
//! * [`cache`] — the cross-query caching layer: a per-(shard, method) LRU
//!   of hot per-feature candidate bitsets consulted inside the filter
//!   stage, plus an optional whole-answer memo keyed by canonical graph
//!   form and probed at admission before any shard is planned.
//!
//! # Constructor convention
//!
//! Every long-lived object of the serving stack is constructed from the
//! unified [`options::ServiceOptions`] builder: `Type::new(opts)` — taking
//! `impl Into<ServiceOptions>` or `&ServiceOptions` — is the single entry
//! point ([`QueryService::new`], [`ShardedService::new`],
//! [`AdmissionQueue::new`]). The legacy per-type configs
//! ([`ServiceConfig`], [`ShardedConfig`]) and bespoke `with_*`
//! constructors survive only as deprecated delegating shims; new knobs —
//! the cache policy is the first — land on `ServiceOptions` only.

pub mod admission;
pub mod cache;
pub mod fault;
pub mod options;
pub mod pool;
pub mod queue;
pub mod sharded;
pub mod stages;
pub mod synopsis;

pub use admission::{AdmissionQueue, AdmittedQuery, CostModel, IngestOp, SubmitError, Ticket};
pub use cache::{answer_memo_key, AnswerEntry, AnswerMemo, CachePolicy, FeatureCache, Lru};
pub use fault::{silence_injected_panics, FaultPlan, FaultSpec, InjectedPanic};
pub use options::ServiceOptions;
#[allow(deprecated)]
pub use sharded::ShardedConfig;
pub use sharded::{
    partition_dataset, RetryPolicy, ShardPart, ShardStrategy, ShardedQueryRecord, ShardedReport,
    ShardedService,
};
pub use stages::{QueryOutcome, QueryRecord};
pub use synopsis::{Router, RoutingMode};

use crate::metrics::{counted_false_positive_ratio, CacheCounters, StageTotals, Stopwatch};
use pool::{worker_loop, BatchShared, WaveFaults, WorkerArena};
use sqbench_graph::{Dataset, Graph};
use sqbench_index::{CandidateSet, FeatureCacheStore, GraphIndex};
use std::sync::Arc;
use std::time::Instant;

/// Legacy configuration of a [`QueryService`], kept as a compatibility
/// shim: it converts into [`ServiceOptions`] (the unified surface) and
/// carries only the worker count — cache knobs never landed here.
#[deprecated(note = "use ServiceOptions::new().workers(n) — the unified service config surface")]
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the pool. Clamped to at least 1; a batch never
    /// spawns more workers than it has queries.
    pub workers: usize,
}

#[allow(deprecated)]
impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { workers: 1 }
    }
}

#[allow(deprecated)]
impl ServiceConfig {
    /// A service config with the given worker count.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers: workers.max(1),
        }
    }
}

/// The batch query service. Construct once per loaded index, then feed it
/// any number of batches; worker arenas — and, when enabled, both cache
/// levels — persist between batches.
pub struct QueryService<'a> {
    index: &'a dyn GraphIndex,
    dataset: &'a Dataset,
    arenas: Vec<WorkerArena>,
    /// Cross-query feature-bitset cache shared by the pool's workers
    /// (`None` = disabled, the zero-overhead default).
    features: Option<FeatureCache>,
    /// Whole-answer memo probed at admission (`None` = disabled).
    answers: Option<AnswerMemo>,
}

/// Everything a batch run produced: one record per query (in batch order)
/// plus aggregate stage totals and the batch wall time.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-query records, indexed like the submitted batch. `None` marks a
    /// query that produced no record — skipped on deadline or failed (see
    /// the matching [`BatchReport::outcomes`] entry for which).
    pub records: Vec<Option<QueryRecord>>,
    /// Per-query outcomes, indexed like the submitted batch. At this layer
    /// the vocabulary is `Complete` (record present), `TimedOut` (skipped
    /// on deadline) or `Failed` (the query's execution panicked, or its
    /// worker died before reporting); the sharded merge refines these
    /// across shards.
    pub outcomes: Vec<QueryOutcome>,
    /// Stage totals over the executed queries.
    pub totals: StageTotals,
    /// Wall-clock seconds the batch took end to end.
    pub wall_s: f64,
    /// Workers the batch actually ran on (after clamping to batch size).
    pub workers: usize,
}

impl BatchReport {
    /// Number of queries that executed (claimed before the deadline).
    pub fn executed(&self) -> usize {
        self.records.iter().flatten().count()
    }

    /// `true` when at least one query was skipped on deadline.
    pub fn timed_out(&self) -> bool {
        self.outcomes
            .iter()
            .any(|o| matches!(o, QueryOutcome::TimedOut))
    }

    /// Number of queries whose execution failed (panicked or lost).
    pub fn failed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, QueryOutcome::Failed))
            .count()
    }

    /// Workload false positive ratio (Equation 3) over executed queries.
    /// `0.0` for an empty batch (no executed queries) — never NaN, so the
    /// value is always safe to write into a CSV report.
    pub fn false_positive_ratio(&self) -> f64 {
        counted_false_positive_ratio(
            self.records
                .iter()
                .flatten()
                .map(|r| (r.candidate_count, r.answer_count())),
        )
    }

    /// Executed queries per wall-clock second — the service's throughput.
    /// `0.0` for an empty or zero-duration batch (and for a corrupted
    /// non-finite wall time) — never NaN or infinity.
    pub fn throughput_qps(&self) -> f64 {
        if self.executed() == 0 || self.wall_s <= 0.0 || !self.wall_s.is_finite() {
            0.0
        } else {
            self.executed() as f64 / self.wall_s
        }
    }
}

impl<'a> QueryService<'a> {
    /// Creates a service over a loaded index and its dataset from the
    /// unified options (`workers` and `cache` are read; the sharding knobs
    /// are ignored at this layer). Accepts anything convertible into
    /// [`ServiceOptions`], which keeps legacy [`ServiceConfig`] callers
    /// compiling through the deprecated `From` shim.
    pub fn new(
        index: &'a dyn GraphIndex,
        dataset: &'a Dataset,
        opts: impl Into<ServiceOptions>,
    ) -> Self {
        let opts = opts.into();
        let workers = opts.workers.max(1);
        QueryService {
            index,
            dataset,
            arenas: (0..workers).map(|_| WorkerArena::default()).collect(),
            features: (opts.cache.feature_capacity > 0)
                .then(|| FeatureCache::new(opts.cache.feature_capacity)),
            answers: (opts.cache.answer_capacity > 0)
                .then(|| AnswerMemo::new(opts.cache.answer_capacity)),
        }
    }

    /// The configured worker count.
    pub fn worker_count(&self) -> usize {
        self.arenas.len()
    }

    /// Candidate sets currently pooled across all worker arenas
    /// (diagnostics: after a batch this is the in-flight high-water mark).
    pub fn pooled_sets(&self) -> usize {
        self.arenas.iter().map(WorkerArena::pooled_sets).sum()
    }

    /// Cumulative hit/miss/eviction counters of both cache levels (all
    /// zeros when caching is disabled).
    pub fn cache_counters(&self) -> CacheCounters {
        let mut counters = CacheCounters::default();
        if let Some(features) = &self.features {
            counters.feature_hits = features.hits();
            counters.feature_misses = features.misses();
            counters.evictions += features.evictions();
        }
        if let Some(memo) = &self.answers {
            counters.answer_hits = memo.hits();
            counters.answer_misses = memo.misses();
            counters.evictions += memo.evictions();
        }
        counters
    }

    /// Drops every entry of both cache levels and bumps their epochs.
    /// `QueryService` borrows its index and dataset, so they cannot be
    /// mutated while it is alive — staleness is ruled out at compile time
    /// here. The online mutation surface is [`ShardedService`], whose
    /// `insert_graph`/`remove_graph` (and drained [`IngestOp`] mutations)
    /// call its equivalent of this hook automatically.
    pub fn invalidate_caches(&self) {
        if let Some(features) = &self.features {
            features.invalidate_all();
        }
        if let Some(memo) = &self.answers {
            memo.invalidate_all();
        }
    }

    /// Runs one batch through the pipeline. Queries claimed after
    /// `deadline` are skipped (recorded as `None`), mirroring the
    /// experiment budget semantics; `None` means no deadline.
    pub fn run_batch(&mut self, queries: &[&Graph], deadline: Option<Instant>) -> BatchReport {
        self.run_batch_inner(queries, deadline, None)
    }

    /// Like [`QueryService::run_batch`], but additionally honouring a
    /// per-query deadline slice (indexed like `queries`): a query whose own
    /// deadline has passed when a worker claims it is skipped even if the
    /// batch-wide deadline is still open. This is the entry point the open
    /// admission path uses — each submitted query carries the deadline its
    /// producer attached.
    pub fn run_batch_with_deadlines(
        &mut self,
        queries: &[&Graph],
        deadline: Option<Instant>,
        per_query: &[Option<Instant>],
    ) -> BatchReport {
        self.run_batch_inner(queries, deadline, Some(per_query))
    }

    fn run_batch_inner(
        &mut self,
        queries: &[&Graph],
        deadline: Option<Instant>,
        per_query: Option<&[Option<Instant>]>,
    ) -> BatchReport {
        let store = self.features.as_ref().map(|f| f as &dyn FeatureCacheStore);
        let Some(memo) = &self.answers else {
            return run_batch_on(
                self.index,
                self.dataset,
                &mut self.arenas,
                queries,
                deadline,
                per_query,
                None,
                store,
            );
        };

        // Admission-time memo probe: a hit never reaches the worker pool.
        // A query whose deadline already passed is not probed — it goes to
        // the pool, which reports it `TimedOut` exactly like the uncached
        // path would (a memo must never change outcome semantics).
        let watch = Stopwatch::start();
        let expired = |i: usize| {
            let now = Instant::now();
            deadline.is_some_and(|d| now >= d)
                || per_query.and_then(|p| p[i]).is_some_and(|d| now >= d)
        };
        let mut keys: Vec<Option<String>> = Vec::with_capacity(queries.len());
        let mut hits: Vec<Option<(Arc<AnswerEntry>, f64)>> = Vec::with_capacity(queries.len());
        let mut miss_indexes: Vec<usize> = Vec::new();
        for (i, query) in queries.iter().enumerate() {
            let key = if expired(i) {
                None
            } else {
                answer_memo_key(query)
            };
            let probe = Stopwatch::start();
            match key.as_deref().and_then(|k| memo.lookup(k)) {
                Some(entry) => hits.push(Some((entry, probe.elapsed_secs()))),
                None => {
                    hits.push(None);
                    miss_indexes.push(i);
                }
            }
            keys.push(key);
        }

        // Run the misses as a sub-batch on the pool (preserving relative
        // batch order), then merge hits and misses back by batch index.
        let sub_queries: Vec<&Graph> = miss_indexes.iter().map(|&i| queries[i]).collect();
        let sub_deadlines: Option<Vec<Option<Instant>>> =
            per_query.map(|p| miss_indexes.iter().map(|&i| p[i]).collect());
        let mut sub = run_batch_on(
            self.index,
            self.dataset,
            &mut self.arenas,
            &sub_queries,
            deadline,
            sub_deadlines.as_deref(),
            None,
            store,
        );

        let mut records: Vec<Option<QueryRecord>> = Vec::new();
        records.resize_with(queries.len(), || None);
        let mut outcomes = vec![QueryOutcome::Failed; queries.len()];
        let mut totals = sub.totals;
        for (i, hit) in hits.into_iter().enumerate() {
            if let Some((entry, probe_s)) = hit {
                totals.add_query(0.0, probe_s, 0.0, 0.0, entry.candidates_pruned);
                totals.observe_latency(probe_s);
                records[i] = Some(QueryRecord {
                    candidate_count: entry.candidate_count,
                    candidates_pruned: entry.candidates_pruned,
                    answers: entry.answers.clone(),
                    queue_wait_s: 0.0,
                    cache_probe_s: probe_s,
                    filter_s: 0.0,
                    verify_s: 0.0,
                });
                outcomes[i] = QueryOutcome::Complete;
            }
        }
        for (sub_idx, &i) in miss_indexes.iter().enumerate() {
            // Only complete results are memoized — a degraded or partial
            // answer set must never be served as complete later.
            if matches!(sub.outcomes[sub_idx], QueryOutcome::Complete) {
                if let (Some(key), Some(record)) = (&keys[i], &sub.records[sub_idx]) {
                    memo.insert(
                        key.clone(),
                        AnswerEntry {
                            answers: record.answers.clone(),
                            candidate_count: record.candidate_count,
                            candidates_pruned: record.candidates_pruned,
                        },
                    );
                }
            }
            records[i] = sub.records[sub_idx].take();
            outcomes[i] = sub.outcomes[sub_idx];
        }
        BatchReport {
            records,
            outcomes,
            totals,
            wall_s: watch.elapsed_secs(),
            workers: sub.workers,
        }
    }

    /// Warm-up helper: pre-sizes every worker's arena pool with one set for
    /// the index's universe, so even a batch's first queries filter into
    /// recycled memory.
    pub fn prewarm(&mut self) {
        let universe = self.index.universe();
        for arena in &mut self.arenas {
            if arena.pooled_sets() == 0 {
                arena.recycle(CandidateSet::empty(universe));
            }
        }
    }
}

/// Runs one batch of queries through the pipelined worker pool, drawing the
/// per-worker candidate arenas from `arenas` (which persist across calls —
/// this is the body of [`QueryService::run_batch`], factored out so callers
/// that *own* their index and dataset, like the sharded service's per-shard
/// pools, can reuse it without the service's borrowed-lifetime plumbing).
///
/// `deadline` is the batch-wide cutoff; `per_query` optionally attaches an
/// individual deadline to each query (indexed like `queries`); `faults`
/// optionally arms the fault-injection hooks (tickets indexed like
/// `queries`); `cache` optionally shares a cross-query feature-bitset
/// store with every worker's filter stage (see
/// [`sqbench_index::GraphIndex::filter_into_cached`]). Workers spawn up to
/// `arenas.len()` strong, clamped to the batch size.
#[allow(clippy::too_many_arguments)] // internal fan-in point: every shard caller threads the same set
pub(crate) fn run_batch_on(
    index: &dyn GraphIndex,
    dataset: &Dataset,
    arenas: &mut [WorkerArena],
    queries: &[&Graph],
    deadline: Option<Instant>,
    per_query: Option<&[Option<Instant>]>,
    faults: Option<WaveFaults<'_>>,
    cache: Option<&dyn FeatureCacheStore>,
) -> BatchReport {
    let workers = arenas.len().min(queries.len()).max(1);
    let shared = BatchShared::with_deadlines(queries, workers, deadline, per_query, faults, cache);
    let watch = Stopwatch::start();
    let completed: Vec<Vec<(usize, QueryOutcome, Option<QueryRecord>)>> = if workers == 1 {
        // In-place fast path: no thread spawn, strict batch order.
        vec![worker_loop(0, &shared, index, dataset, &mut arenas[0])]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = arenas
                .iter_mut()
                .take(workers)
                .enumerate()
                .map(|(w, arena)| {
                    let shared = &shared;
                    scope.spawn(move || worker_loop(w, shared, index, dataset, arena))
                })
                .collect();
            // Per-query panics are caught inside `worker_loop`, so a join
            // error means the worker died in pool infrastructure. Don't
            // take the whole batch down with it: the queries that worker
            // claimed but never reported keep their `Failed` default
            // below, and the sharded layer's retry can still recover them.
            handles.into_iter().filter_map(|h| h.join().ok()).collect()
        })
    };
    let wall_s = watch.elapsed_secs();

    let mut records: Vec<Option<QueryRecord>> = Vec::new();
    records.resize_with(queries.len(), || None);
    // Failed-by-default: a query nobody reported (its worker died) must
    // still carry an explicit outcome.
    let mut outcomes = vec![QueryOutcome::Failed; queries.len()];
    let mut totals = StageTotals::default();
    for (idx, outcome, record) in completed.into_iter().flatten() {
        if let Some(r) = &record {
            totals.add_query(
                r.queue_wait_s,
                r.cache_probe_s,
                r.filter_s,
                r.verify_s,
                r.candidates_pruned,
            );
            // Unsharded latency = the query's summed stage walk (it runs
            // on one worker start to finish; the sharded merge overrides
            // this with true submission-to-finalize time).
            totals.observe_latency(r.queue_wait_s + r.cache_probe_s + r.filter_s + r.verify_s);
        }
        records[idx] = record;
        outcomes[idx] = outcome;
    }
    BatchReport {
        records,
        outcomes,
        totals,
        wall_s,
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
    use sqbench_index::{build_index, MethodConfig, MethodKind};
    use std::time::Duration;

    fn setup(graphs: usize) -> (Dataset, Vec<sqbench_graph::Graph>) {
        let ds = GraphGen::new(
            GraphGenConfig::default()
                .with_graph_count(graphs)
                .with_avg_nodes(12)
                .with_avg_density(0.15)
                .with_label_count(4)
                .with_seed(11),
        )
        .generate();
        let workload = QueryGen::new(5).generate(&ds, 8, 4);
        let queries: Vec<sqbench_graph::Graph> = workload.iter().map(|(q, _)| q.clone()).collect();
        (ds, queries)
    }

    #[test]
    fn single_worker_batch_equals_one_shot_queries() {
        let (ds, queries) = setup(16);
        let index = build_index(MethodKind::Ggsx, &MethodConfig::fast(), &ds);
        let refs: Vec<&Graph> = queries.iter().collect();
        let mut service = QueryService::new(&*index, &ds, ServiceOptions::new());
        let report = service.run_batch(&refs, None);
        assert_eq!(report.workers, 1);
        assert_eq!(report.executed(), queries.len());
        assert!(!report.timed_out());
        for (record, query) in report.records.iter().zip(queries.iter()) {
            let record = record.as_ref().expect("executed");
            let outcome = index.query(&ds, query);
            assert_eq!(record.answers, outcome.answers);
            assert_eq!(record.candidate_count, outcome.candidates.len());
        }
        assert_eq!(report.totals.queries as usize, queries.len());
        assert!(report.totals.filter_s >= 0.0);
    }

    #[test]
    fn multi_worker_batch_matches_single_worker_answers() {
        let (ds, queries) = setup(20);
        let refs: Vec<&Graph> = queries.iter().collect();
        for kind in MethodKind::ALL {
            let index = build_index(kind, &MethodConfig::fast(), &ds);
            let mut serial = QueryService::new(&*index, &ds, ServiceOptions::new().workers(1));
            let serial_report = serial.run_batch(&refs, None);
            let mut pooled = QueryService::new(&*index, &ds, ServiceOptions::new().workers(4));
            let pooled_report = pooled.run_batch(&refs, None);
            assert_eq!(pooled_report.workers, 4.min(queries.len()));
            for (i, (s, p)) in serial_report
                .records
                .iter()
                .zip(pooled_report.records.iter())
                .enumerate()
            {
                let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
                assert_eq!(
                    s.answers,
                    p.answers,
                    "{}: answers diverged on query {i}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn arenas_persist_and_are_recycled_across_batches() {
        let (ds, queries) = setup(16);
        let index = build_index(MethodKind::GIndex, &MethodConfig::fast(), &ds);
        let refs: Vec<&Graph> = queries.iter().collect();
        let mut service = QueryService::new(&*index, &ds, ServiceOptions::new().workers(2));
        service.prewarm();
        let prewarmed = service.pooled_sets();
        assert_eq!(prewarmed, 2);
        let first = service.run_batch(&refs, None);
        // Every arena returned to a pool; no set leaked into jobs.
        assert!(service.pooled_sets() >= prewarmed);
        let second = service.run_batch(&refs, None);
        assert_eq!(first.executed(), second.executed());
        for (a, b) in first.records.iter().zip(second.records.iter()) {
            assert_eq!(a.as_ref().unwrap().answers, b.as_ref().unwrap().answers);
        }
    }

    #[test]
    fn expired_deadline_skips_all_queries() {
        let (ds, queries) = setup(10);
        let index = build_index(MethodKind::Ggsx, &MethodConfig::fast(), &ds);
        let refs: Vec<&Graph> = queries.iter().collect();
        let mut service = QueryService::new(&*index, &ds, ServiceOptions::new().workers(2));
        let past = Instant::now() - Duration::from_secs(1);
        let report = service.run_batch(&refs, Some(past));
        assert!(report.timed_out());
        assert_eq!(report.executed(), 0);
        assert_eq!(report.false_positive_ratio(), 0.0);
        assert_eq!(report.throughput_qps(), 0.0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (ds, _) = setup(6);
        let index = build_index(MethodKind::GCode, &MethodConfig::fast(), &ds);
        let mut service = QueryService::new(&*index, &ds, ServiceOptions::new().workers(3));
        let report = service.run_batch(&[], None);
        assert_eq!(report.records.len(), 0);
        assert_eq!(report.executed(), 0);
        assert!(!report.timed_out());
    }

    /// Empty batches must not leak NaN (0/0) or infinity into the metrics
    /// that end up in CSV reports — every ratio degrades to exactly 0.0.
    #[test]
    fn empty_batch_divisions_are_zero_not_nan() {
        let report = BatchReport {
            records: Vec::new(),
            outcomes: Vec::new(),
            totals: StageTotals::default(),
            wall_s: 0.0, // degenerate wall time on top of zero queries
            workers: 1,
        };
        assert_eq!(report.false_positive_ratio(), 0.0);
        assert_eq!(report.throughput_qps(), 0.0);
        assert!(report.false_positive_ratio().is_finite());
        assert!(report.throughput_qps().is_finite());
        let corrupt = BatchReport {
            records: vec![None],
            outcomes: vec![QueryOutcome::TimedOut],
            totals: StageTotals::default(),
            wall_s: f64::NAN,
            workers: 1,
        };
        assert_eq!(corrupt.throughput_qps(), 0.0);
        assert_eq!(corrupt.false_positive_ratio(), 0.0);
    }

    #[test]
    fn per_query_deadlines_skip_only_expired_queries() {
        let (ds, queries) = setup(12);
        let index = build_index(MethodKind::Ggsx, &MethodConfig::fast(), &ds);
        let refs: Vec<&Graph> = queries.iter().collect();
        let mut service = QueryService::new(&*index, &ds, ServiceOptions::new().workers(2));
        let past = Instant::now() - Duration::from_secs(1);
        let mut per_query: Vec<Option<Instant>> = vec![None; refs.len()];
        per_query[1] = Some(past);
        per_query[4] = Some(past);
        let report = service.run_batch_with_deadlines(&refs, None, &per_query);
        assert!(report.timed_out());
        assert_eq!(report.executed(), refs.len() - 2);
        for (i, record) in report.records.iter().enumerate() {
            if i == 1 || i == 4 {
                assert!(record.is_none(), "expired query {i} must be skipped");
            } else {
                let record = record.as_ref().expect("live query executed");
                assert_eq!(record.answers, index.query(&ds, &queries[i]).answers);
            }
        }
    }

    /// Tentpole: a query whose verify stage panics is recorded as `Failed`
    /// while every other query of the batch still completes — on the
    /// single-worker fast path and on a multi-worker pool (where the
    /// panicking claim must not deadlock the other workers' drain).
    #[test]
    fn injected_verify_panic_is_isolated_to_its_query() {
        fault::silence_injected_panics();
        let (ds, queries) = setup(14);
        let index = build_index(MethodKind::Ggsx, &MethodConfig::fast(), &ds);
        let refs: Vec<&Graph> = queries.iter().collect();
        let tickets: Vec<Ticket> = (0..refs.len() as u64).collect();
        for workers in [1usize, 4] {
            let plan = FaultPlan::new().panic_in_verify(2, 1).panic_in_verify(5, 1);
            let mut arenas: Vec<WorkerArena> =
                (0..workers).map(|_| WorkerArena::default()).collect();
            let report = run_batch_on(
                &*index,
                &ds,
                &mut arenas,
                &refs,
                None,
                None,
                Some(WaveFaults {
                    plan: &plan,
                    tickets: &tickets,
                }),
                None,
            );
            assert_eq!(plan.injected_panics(), 2, "{workers} workers");
            assert_eq!(report.failed(), 2);
            assert_eq!(report.executed(), refs.len() - 2);
            assert!(!report.timed_out());
            for (i, (record, outcome)) in report
                .records
                .iter()
                .zip(report.outcomes.iter())
                .enumerate()
            {
                if i == 2 || i == 5 {
                    assert_eq!(*outcome, QueryOutcome::Failed);
                    assert!(record.is_none());
                } else {
                    assert_eq!(*outcome, QueryOutcome::Complete);
                    let record = record.as_ref().expect("healthy query completed");
                    assert_eq!(record.answers, index.query(&ds, &queries[i]).answers);
                }
            }
        }
    }

    /// The fault hook really is zero-cost-off: a fault-free batch reports
    /// all-complete outcomes and bit-identical answers with `faults: None`.
    #[test]
    fn fault_free_batch_reports_all_complete() {
        let (ds, queries) = setup(10);
        let index = build_index(MethodKind::Grapes, &MethodConfig::fast(), &ds);
        let refs: Vec<&Graph> = queries.iter().collect();
        let mut service = QueryService::new(&*index, &ds, ServiceOptions::new().workers(3));
        let report = service.run_batch(&refs, None);
        assert_eq!(report.failed(), 0);
        assert!(report.outcomes.iter().all(|o| *o == QueryOutcome::Complete));
    }

    /// Tentpole: with the feature cache enabled, answers stay bit-identical
    /// to the uncached service for every participating method, and the
    /// caching methods actually hit on a repeated batch.
    #[test]
    fn feature_cache_keeps_answers_identical() {
        let (ds, queries) = setup(18);
        let refs: Vec<&Graph> = queries.iter().collect();
        for kind in MethodKind::ALL {
            let index = build_index(kind, &MethodConfig::fast(), &ds);
            let mut cold = QueryService::new(&*index, &ds, ServiceOptions::new());
            let cold_report = cold.run_batch(&refs, None);
            let mut warm = QueryService::new(
                &*index,
                &ds,
                ServiceOptions::new().cache(CachePolicy {
                    feature_capacity: 512,
                    answer_capacity: 0,
                }),
            );
            // Two batches: the first populates, the second probes hot.
            warm.run_batch(&refs, None);
            let warm_report = warm.run_batch(&refs, None);
            for (i, (c, w)) in cold_report
                .records
                .iter()
                .zip(warm_report.records.iter())
                .enumerate()
            {
                assert_eq!(
                    c.as_ref().unwrap().answers,
                    w.as_ref().unwrap().answers,
                    "{}: cached answers diverged on query {i}",
                    kind.name()
                );
            }
            let counters = warm.cache_counters();
            match kind {
                MethodKind::Ggsx | MethodKind::Grapes | MethodKind::GIndex => {
                    assert!(
                        counters.feature_hits > 0,
                        "{} participates and must hit on a repeat batch",
                        kind.name()
                    );
                }
                MethodKind::CtIndex | MethodKind::GCode | MethodKind::Scan => {
                    assert_eq!(
                        (counters.feature_hits, counters.feature_misses),
                        (0, 0),
                        "{} opts out and must never probe",
                        kind.name()
                    );
                }
                // Tree+Δ probes (tree features hit; Δ probes depend on the
                // learned set) — participation is covered above.
                MethodKind::TreeDelta => {}
            }
        }
    }

    /// Tentpole: the answer memo serves a repeated batch entirely from the
    /// memo — zero filter/verify work — with bit-identical answers.
    #[test]
    fn answer_memo_serves_repeat_batches_identically() {
        let (ds, queries) = setup(16);
        let index = build_index(MethodKind::Ggsx, &MethodConfig::fast(), &ds);
        let refs: Vec<&Graph> = queries.iter().collect();
        let mut service = QueryService::new(
            &*index,
            &ds,
            ServiceOptions::new().workers(2).cache(CachePolicy {
                feature_capacity: 0,
                answer_capacity: 64,
            }),
        );
        let first = service.run_batch(&refs, None);
        let eligible = queries
            .iter()
            .filter(|q| answer_memo_key(q).is_some())
            .count();
        assert!(eligible > 0, "workload must contain memo-eligible queries");
        let second = service.run_batch(&refs, None);
        assert_eq!(second.executed(), refs.len());
        for (i, (a, b)) in first.records.iter().zip(second.records.iter()).enumerate() {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.answers, b.answers, "memo answers diverged on query {i}");
            assert_eq!(a.candidate_count, b.candidate_count);
        }
        let counters = service.cache_counters();
        assert_eq!(counters.answer_hits, eligible as u64);
        // Memo-served queries do no filter or verify work.
        let hit_records: Vec<&QueryRecord> = second
            .records
            .iter()
            .flatten()
            .filter(|r| r.filter_s == 0.0 && r.verify_s == 0.0)
            .collect();
        assert_eq!(hit_records.len(), eligible);
        // Invalidation drops every entry: the next batch misses again.
        service.invalidate_caches();
        let third = service.run_batch(&refs, None);
        assert_eq!(third.executed(), refs.len());
        assert_eq!(service.cache_counters().answer_hits, eligible as u64);
    }

    #[test]
    fn more_workers_than_queries_clamps() {
        let (ds, queries) = setup(8);
        let index = build_index(MethodKind::CtIndex, &MethodConfig::fast(), &ds);
        let two: Vec<&Graph> = queries.iter().take(2).collect();
        let mut service = QueryService::new(&*index, &ds, ServiceOptions::new().workers(16));
        assert_eq!(service.worker_count(), 16);
        let report = service.run_batch(&two, None);
        assert_eq!(report.workers, 2, "batch must not spawn idle workers");
        assert_eq!(report.executed(), 2);
    }
}
