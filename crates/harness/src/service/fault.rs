//! Deterministic fault injection for the serving stack.
//!
//! A production-shaped service has to treat worker panics, stalled shards
//! and admission failures as *normal events* — but none of those occur on a
//! healthy test box, so every recovery path would ship untested. This
//! module closes that gap with a seeded, fully deterministic [`FaultPlan`]
//! that the service consults at three injection points:
//!
//! * **panic-in-verify** — [`FaultPlan::fire_verify_panic`] panics (with an
//!   [`InjectedPanic`] payload) inside the worker's verify stage for a
//!   chosen ticket, exercising the `catch_unwind` isolation in
//!   `worker_loop` and the per-shard retry path in the sharded merge;
//! * **shard stall** — [`FaultPlan::take_stall`] makes a shard sleep before
//!   serving its first wave, exercising deadline-budgeted degradation (the
//!   merge returns the partial union of the healthy shards, flagged
//!   [`super::QueryOutcome::Degraded`]);
//! * **admission failure** — [`FaultPlan::take_admission_failure`] makes
//!   the admission queue reject the submission that would have received a
//!   chosen ticket, exercising producer-side retry and load shedding.
//!
//! Every fault is *budgeted*: it fires a configured number of times and
//! then stops, so a bounded retry can observe the transient clearing. The
//! hook is zero-cost when disabled — services hold an
//! `Option<Arc<FaultPlan>>` and the fault-free path is a `None` check.
//!
//! Counter accessors ([`FaultPlan::injected_panics`] and friends) let soak
//! tests assert that every configured fault class actually fired, so a
//! refactor cannot silently route around an injection point.

use super::admission::Ticket;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Panic payload of an injected verify panic — lets a custom panic hook
/// (see [`silence_injected_panics`]) distinguish deliberate test faults
/// from real bugs.
#[derive(Debug)]
pub struct InjectedPanic {
    /// The admission ticket (or batch position, for closed waves) whose
    /// verify stage was poisoned.
    pub ticket: Ticket,
}

/// A seeded, deterministic set of faults to inject into the service stack.
/// Build one explicitly ([`FaultPlan::new`] + the builder methods) or
/// derive one from a seed ([`FaultPlan::seeded`]); share it between the
/// admission queue and the sharded service via `Arc`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Remaining verify panics per ticket: the verify stage of ticket `t`
    /// panics while `verify_panics[t] > 0`, decrementing per firing.
    verify_panics: Mutex<HashMap<Ticket, u32>>,
    /// One-shot stall budget per shard: the shard sleeps this long before
    /// its next wave, then the entry is consumed.
    shard_stalls: Mutex<HashMap<usize, Duration>>,
    /// Remaining admission failures per would-be ticket: the submission
    /// that would receive ticket `t` is rejected while the budget lasts
    /// (the ticket is *not* consumed — the retry gets it).
    admission_failures: Mutex<HashMap<Ticket, u32>>,
    injected_panics: AtomicU64,
    injected_stalls: AtomicU64,
    injected_admission_failures: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (no faults). Compose with the builder methods.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arms the verify stage of `ticket` to panic on its next `times`
    /// executions (attempts beyond that succeed — how retry tests model a
    /// transient fault).
    pub fn panic_in_verify(self, ticket: Ticket, times: u32) -> Self {
        lock(&self.verify_panics).insert(ticket, times);
        self
    }

    /// Arms shard `shard` to stall for `stall` before serving its next
    /// wave (one-shot: consumed by the first wave that touches the shard).
    pub fn stall_shard(self, shard: usize, stall: Duration) -> Self {
        lock(&self.shard_stalls).insert(shard, stall);
        self
    }

    /// Arms the admission queue to reject the next `times` submissions
    /// that would have received `ticket`.
    pub fn fail_admission(self, ticket: Ticket, times: u32) -> Self {
        lock(&self.admission_failures).insert(ticket, times);
        self
    }

    /// Derives a deterministic plan from `seed`: `spec.panic_queries`
    /// distinct tickets panic in verify (each `spec.panic_times` times),
    /// `spec.stalled_shards` distinct shards stall for `spec.stall`, and
    /// `spec.admission_failures` distinct tickets fail admission once.
    /// The same seed and spec always produce the same plan.
    pub fn seeded(seed: u64, spec: &FaultSpec) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        for ticket in rng.distinct(spec.panic_queries, spec.tickets) {
            plan = plan.panic_in_verify(ticket, spec.panic_times);
        }
        for shard in rng.distinct(spec.stalled_shards.min(spec.shards) as usize, spec.shards) {
            plan = plan.stall_shard(shard as usize, spec.stall);
        }
        for ticket in rng.distinct(spec.admission_failures, spec.tickets) {
            plan = plan.fail_admission(ticket, 1);
        }
        plan
    }

    /// Verify-stage hook: panics (with an [`InjectedPanic`] payload) when
    /// `ticket` still has panic budget, decrementing it first so a bounded
    /// retry eventually succeeds. No-op for unarmed tickets.
    #[inline]
    pub fn fire_verify_panic(&self, ticket: Ticket) {
        let mut armed = lock(&self.verify_panics);
        if let Some(remaining) = armed.get_mut(&ticket) {
            if *remaining > 0 {
                *remaining -= 1;
                drop(armed); // do not poison or hold the plan lock across the unwind
                self.injected_panics.fetch_add(1, Ordering::Relaxed);
                std::panic::panic_any(InjectedPanic { ticket });
            }
        }
    }

    /// Shard hook: takes shard `shard`'s one-shot stall budget, if armed.
    /// The caller is expected to sleep for the returned duration before
    /// serving its wave.
    #[inline]
    pub fn take_stall(&self, shard: usize) -> Option<Duration> {
        let stall = lock(&self.shard_stalls).remove(&shard);
        if stall.is_some() {
            self.injected_stalls.fetch_add(1, Ordering::Relaxed);
        }
        stall
    }

    /// Admission hook: `true` when the submission that would receive
    /// `ticket` must be rejected (consumes one unit of that ticket's
    /// failure budget).
    #[inline]
    pub fn take_admission_failure(&self, ticket: Ticket) -> bool {
        let mut armed = lock(&self.admission_failures);
        match armed.get_mut(&ticket) {
            Some(remaining) if *remaining > 0 => {
                *remaining -= 1;
                drop(armed);
                self.injected_admission_failures
                    .fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Verify panics fired so far.
    pub fn injected_panics(&self) -> u64 {
        self.injected_panics.load(Ordering::Relaxed)
    }

    /// Shard stalls fired so far.
    pub fn injected_stalls(&self) -> u64 {
        self.injected_stalls.load(Ordering::Relaxed)
    }

    /// Admission failures fired so far.
    pub fn injected_admission_failures(&self) -> u64 {
        self.injected_admission_failures.load(Ordering::Relaxed)
    }
}

/// Shape of a [`FaultPlan::seeded`] plan: how many of each fault class to
/// arm over a `tickets`-query, `shards`-shard run.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Tickets the run will admit (faulted tickets are drawn from
    /// `0..tickets`).
    pub tickets: u64,
    /// Shards the service runs (stalled shards are drawn from
    /// `0..shards`).
    pub shards: u64,
    /// Distinct tickets whose verify stage panics.
    pub panic_queries: usize,
    /// Panics injected per faulted ticket before it recovers (set above
    /// the retry bound to exercise permanent failures, at or below it to
    /// exercise recovery).
    pub panic_times: u32,
    /// Distinct shards that stall once.
    pub stalled_shards: u64,
    /// How long a stalled shard sleeps before its wave.
    pub stall: Duration,
    /// Distinct tickets whose admission fails once.
    pub admission_failures: usize,
}

/// Installs a process-wide panic hook that swallows [`InjectedPanic`]
/// payloads (they are caught and recorded by the worker loop anyway) while
/// delegating every real panic to the previous hook. Idempotent enough for
/// tests: installing twice just chains two filters.
pub fn silence_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().is::<InjectedPanic>() {
            return;
        }
        previous(info);
    }));
}

/// Poison-tolerant lock: fault bookkeeping is a plain map update, so a
/// panic elsewhere can never leave it half-written — recover the guard
/// instead of cascading the poison.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// SplitMix64 — tiny, seedable, deterministic; good enough to scatter
/// fault sites without dragging a full RNG dependency into the service.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// `count` distinct values in `0..bound` (all of them when `bound`
    /// is not larger than `count`), in deterministic order.
    fn distinct(&mut self, count: usize, bound: u64) -> Vec<u64> {
        let mut picked = Vec::new();
        if bound == 0 {
            return picked;
        }
        let count = count.min(bound as usize);
        while picked.len() < count {
            let candidate = self.next() % bound;
            if !picked.contains(&candidate) {
                picked.push(candidate);
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_budget_decrements_and_clears() {
        let plan = FaultPlan::new().panic_in_verify(3, 2);
        for attempt in 0..2 {
            let caught = std::panic::catch_unwind(|| plan.fire_verify_panic(3));
            let payload = caught.expect_err("armed ticket must panic");
            let injected = payload
                .downcast_ref::<InjectedPanic>()
                .expect("payload is the typed injection marker");
            assert_eq!(injected.ticket, 3, "attempt {attempt}");
        }
        // Budget exhausted: the third attempt sails through.
        plan.fire_verify_panic(3);
        plan.fire_verify_panic(4); // never armed
        assert_eq!(plan.injected_panics(), 2);
    }

    #[test]
    fn stall_is_one_shot() {
        let plan = FaultPlan::new().stall_shard(1, Duration::from_millis(5));
        assert_eq!(plan.take_stall(0), None);
        assert_eq!(plan.take_stall(1), Some(Duration::from_millis(5)));
        assert_eq!(plan.take_stall(1), None);
        assert_eq!(plan.injected_stalls(), 1);
    }

    #[test]
    fn admission_failure_budget_is_consumed() {
        let plan = FaultPlan::new().fail_admission(7, 1);
        assert!(!plan.take_admission_failure(6));
        assert!(plan.take_admission_failure(7));
        assert!(!plan.take_admission_failure(7));
        assert_eq!(plan.injected_admission_failures(), 1);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_bounds() {
        let spec = FaultSpec {
            tickets: 40,
            shards: 4,
            panic_queries: 5,
            panic_times: 1,
            stalled_shards: 2,
            stall: Duration::from_millis(3),
            admission_failures: 3,
        };
        let a = FaultPlan::seeded(99, &spec);
        let b = FaultPlan::seeded(99, &spec);
        let c = FaultPlan::seeded(100, &spec);
        let fired = |plan: &FaultPlan| -> (Vec<u64>, Vec<usize>, Vec<u64>) {
            let mut panics: Vec<u64> = (0..40)
                .filter(|&t| std::panic::catch_unwind(|| plan.fire_verify_panic(t)).is_err())
                .collect();
            panics.sort_unstable();
            let stalls: Vec<usize> = (0..4).filter(|&s| plan.take_stall(s).is_some()).collect();
            let mut fails: Vec<u64> = (0..40)
                .filter(|&t| plan.take_admission_failure(t))
                .collect();
            fails.sort_unstable();
            (panics, stalls, fails)
        };
        let fa = fired(&a);
        assert_eq!(fa, fired(&b), "same seed must produce the same plan");
        assert_ne!(fa, fired(&c), "different seeds should differ");
        assert_eq!(fa.0.len(), 5);
        assert_eq!(fa.1.len(), 2);
        assert_eq!(fa.2.len(), 3);
        assert!(fa.0.iter().all(|&t| t < 40));
        assert!(fa.2.iter().all(|&t| t < 40));
    }

    #[test]
    fn distinct_handles_small_bounds() {
        let mut rng = SplitMix64::new(1);
        assert!(rng.distinct(3, 0).is_empty());
        let mut all = rng.distinct(10, 4);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }
}
