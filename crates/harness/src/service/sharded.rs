//! Sharded query service: partition the dataset, build one index per
//! shard, fan every query wave out to all shard pools concurrently, and
//! merge the per-shard match sets back into global answers.
//!
//! The paper's study (and the batch [`QueryService`]) serves one index over
//! one dataset. That stops scaling when the dataset outgrows a single
//! index build — the regime the billion-node partition-then-match line of
//! work targets. This module generalizes the serving path to N shards:
//!
//! ```text
//!              ┌────────────────────── ShardedService ──────────────────────┐
//!  submit ───► │ AdmissionQueue (bounded, multi-producer, per-query         │
//!  submit ───► │                 deadlines)                                 │
//!              │      │ drain → wave (admission order)                      │
//!              │      ▼                                                     │
//!              │ ┌─ shard 0 ──────┐ ┌─ shard 1 ──────┐ … ┌─ shard N ──────┐ │
//!              │ │ Dataset slice  │ │ Dataset slice  │   │ Dataset slice  │ │
//!              │ │ own GraphIndex │ │ own GraphIndex │   │ own GraphIndex │ │
//!              │ │ worker pool +  │ │ worker pool +  │   │ worker pool +  │ │
//!              │ │ arenas         │ │ arenas         │   │ arenas         │ │
//!              │ └───────┬────────┘ └───────┬────────┘   └───────┬────────┘ │
//!              │         ▼ local ids        ▼                    ▼          │
//!              │      merge: map → global ids, union answers, aggregate     │
//!              │             per-shard StageTotals                          │
//!              └──────────► ShardedReport (records in wave order) ──────────┘
//! ```
//!
//! * **Partitioner** — [`partition_dataset`] splits the dataset by
//!   [`ShardStrategy`]: `RoundRobin` (graph *i* → shard *i mod N*; keeps
//!   id-adjacent graphs apart, good when sizes are i.i.d.) or
//!   `SizeBalanced` (longest-processing-time greedy on vertex+edge weight;
//!   good when graph sizes are skewed). Each shard remembers its
//!   local→global id mapping.
//! * **Per-shard pools** — each shard owns its dataset slice, its index and
//!   its worker arenas; a wave runs one [`run_batch_on`] pool per shard on
//!   scoped threads, so shards progress concurrently and arenas persist
//!   across waves exactly like the single-index service.
//! * **Router** — before fan-out, the wave consults the per-shard
//!   [`Router`] synopses (under [`RoutingMode::Synopsis`]) and dispatches
//!   each query only to shards that can possibly hold a match; skipped
//!   shards are proven matchless, so routed answers stay bit-identical.
//!   Per-query [`ShardedQueryRecord::shards_probed`] /
//!   [`ShardedQueryRecord::shards_skipped`] account for the savings.
//! * **Merge** — per query, shard-local answer ids are mapped through the
//!   shard's id table and unioned. Shards partition the dataset, so the
//!   union is disjoint and the merged answer set is *bit-identical* to the
//!   unsharded service's (verification is exact on every shard); only
//!   filtering power — and therefore candidate counts — may differ, because
//!   each shard mines/encodes features over its own slice.
//!
//! A query expires if *any* shard had to skip it on deadline — a partially
//! executed query would otherwise report a silently incomplete answer set.

use super::admission::{AdmissionQueue, AdmittedQuery, Ticket};
use super::pool::WorkerArena;
use super::synopsis::{Router, RoutingMode};
use super::{run_batch_on, BatchReport};
use crate::metrics::{counted_false_positive_ratio, StageTotals, Stopwatch};
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_index::{build_index, GraphIndex, IndexStats, MethodConfig, MethodKind};
use std::time::Instant;

/// How [`partition_dataset`] assigns graphs to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardStrategy {
    /// Graph `i` goes to shard `i % shards`. Deterministic, streaming, and
    /// even by *count*; the default.
    #[default]
    RoundRobin,
    /// Longest-processing-time greedy by graph weight (vertices + edges):
    /// graphs are placed heaviest-first onto the currently lightest shard,
    /// evening out total shard *size* when graph sizes are skewed.
    SizeBalanced,
}

impl ShardStrategy {
    /// Short name used in logs, CSV descriptions and bench ids.
    pub fn name(&self) -> &'static str {
        match self {
            ShardStrategy::RoundRobin => "round-robin",
            ShardStrategy::SizeBalanced => "size-balanced",
        }
    }
}

/// Configuration of a [`ShardedService`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards (clamped to at least 1).
    pub shards: usize,
    /// Worker threads per shard pool (clamped to at least 1).
    pub workers_per_shard: usize,
    /// How graphs are assigned to shards.
    pub strategy: ShardStrategy,
    /// Whether waves fan out to every shard or consult the per-shard
    /// synopses and probe only shards that can possibly hold a match.
    pub routing: RoutingMode,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 1,
            workers_per_shard: 1,
            strategy: ShardStrategy::RoundRobin,
            routing: RoutingMode::Fanout,
        }
    }
}

impl ShardedConfig {
    /// A config with the given shard count (one worker per shard,
    /// round-robin placement).
    pub fn with_shards(shards: usize) -> Self {
        ShardedConfig {
            shards: shards.max(1),
            ..Default::default()
        }
    }

    /// Sets the partitioning strategy.
    pub fn strategy(mut self, strategy: ShardStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the per-shard worker-pool size.
    pub fn workers_per_shard(mut self, workers: usize) -> Self {
        self.workers_per_shard = workers.max(1);
        self
    }

    /// Sets the routing mode (see [`RoutingMode`]).
    pub fn routing(mut self, routing: RoutingMode) -> Self {
        self.routing = routing;
        self
    }
}

/// One partition of a dataset: the shard-local dataset plus the mapping
/// from shard-local [`GraphId`]s back to ids in the original dataset.
#[derive(Debug, Clone)]
pub struct ShardPart {
    /// The shard's slice of the dataset (ids re-densified to `0..len`).
    pub dataset: Dataset,
    /// `to_global[local_id]` is the graph's id in the unsharded dataset.
    pub to_global: Vec<GraphId>,
}

/// Splits `dataset` into `shards` parts by `strategy`. Every graph lands in
/// exactly one part; parts may be empty when the dataset has fewer graphs
/// than shards (the service handles empty shards — they simply answer
/// nothing). Deterministic for a given dataset/strategy/shard count.
///
/// Each part owns a *clone* of its graphs: in a real deployment every
/// shard loads only its slice from storage and the global dataset never
/// exists in one process, which this models — but in-process it means the
/// partition duplicates the dataset's memory next to the caller's copy.
/// Sharing graphs (`Arc<Graph>` inside `Dataset`) would remove the copy at
/// the cost of reshaping the whole data model; tracked in ROADMAP.md.
pub fn partition_dataset(
    dataset: &Dataset,
    shards: usize,
    strategy: ShardStrategy,
) -> Vec<ShardPart> {
    let shards = shards.max(1);
    let mut assignment: Vec<Vec<GraphId>> = vec![Vec::new(); shards];
    match strategy {
        ShardStrategy::RoundRobin => {
            for id in dataset.ids() {
                assignment[id % shards].push(id);
            }
        }
        ShardStrategy::SizeBalanced => {
            // LPT greedy: heaviest graph first onto the lightest shard.
            // Ties break on the lower id / lower shard index, keeping the
            // partition deterministic.
            let mut by_weight: Vec<(usize, GraphId)> = dataset
                .iter()
                .map(|(id, g)| (g.vertex_count() + g.edge_count(), id))
                .collect();
            by_weight.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let mut loads = vec![0usize; shards];
            for (weight, id) in by_weight {
                let lightest = loads
                    .iter()
                    .enumerate()
                    .min_by_key(|&(shard, &load)| (load, shard))
                    .map(|(shard, _)| shard)
                    .expect("at least one shard");
                loads[lightest] += weight;
                assignment[lightest].push(id);
            }
            // Keep shard-local id order aligned with global id order so a
            // shard's answers come out sorted after mapping.
            for ids in &mut assignment {
                ids.sort_unstable();
            }
        }
    }
    assignment
        .into_iter()
        .enumerate()
        .map(|(shard, ids)| {
            let graphs: Vec<Graph> = ids
                .iter()
                .map(|&id| dataset.graph_unchecked(id).clone())
                .collect();
            ShardPart {
                dataset: Dataset::from_graphs(
                    format!("{}[shard {shard}/{shards}]", dataset.name()),
                    graphs,
                ),
                to_global: ids,
            }
        })
        .collect()
}

/// One shard of the service: its dataset slice, its own index, its id
/// mapping and the worker arenas that persist across waves.
struct Shard {
    dataset: Dataset,
    index: Box<dyn GraphIndex>,
    to_global: Vec<GraphId>,
    arenas: Vec<WorkerArena>,
}

/// What the sharded service records for one query of a wave.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedQueryRecord {
    /// The query's admission ticket (for open waves) or its position in the
    /// submitted slice (for closed waves).
    pub ticket: Ticket,
    /// Merged verified answers as *global* graph ids, sorted ascending.
    pub answers: Vec<GraphId>,
    /// Candidates surviving filtering, summed across shards.
    pub candidate_count: usize,
    /// Graphs pruned by filtering, summed across shards.
    pub candidates_pruned: usize,
    /// Longest queue wait across shards (the query is not done before its
    /// slowest shard picks it up), plus — for open waves served through
    /// [`ShardedService::drain`] — the time the query spent pending in the
    /// [`AdmissionQueue`] before the wave started.
    pub queue_wait_s: f64,
    /// Filter work summed across shards (total work, not critical path).
    pub filter_s: f64,
    /// Verify work summed across shards (total work, not critical path).
    pub verify_s: f64,
    /// `true` when the query missed its deadline on at least one *probed*
    /// shard and was skipped there — its answers are dropped rather than
    /// reported incomplete.
    pub expired: bool,
    /// Shards this query was actually dispatched to. Equals the shard
    /// count under [`RoutingMode::Fanout`]; under [`RoutingMode::Synopsis`]
    /// it can be as low as 0 (no shard can possibly match — the query is
    /// answered empty without touching any index).
    pub shards_probed: usize,
    /// Shards the router proved could hold no match and skipped.
    /// `shards_probed + shards_skipped` always equals the shard count.
    pub shards_skipped: usize,
}

impl ShardedQueryRecord {
    /// Number of verified answers (0 for expired queries).
    pub fn answer_count(&self) -> usize {
        self.answers.len()
    }
}

/// Everything one wave (closed batch or admission drain) produced.
#[derive(Debug)]
pub struct ShardedReport {
    /// Per-query records, in wave order.
    pub records: Vec<ShardedQueryRecord>,
    /// Stage totals per shard, indexed by shard — the balance view the
    /// shard-count experiments plot.
    pub per_shard: Vec<StageTotals>,
    /// Merged stage totals over executed (non-expired) queries: queue wait
    /// is the per-query max across shards, filter/verify are total work.
    pub totals: StageTotals,
    /// Wall-clock seconds the wave took end to end across all shards.
    pub wall_s: f64,
    /// Number of shards the wave ran on.
    pub shards: usize,
}

impl ShardedReport {
    /// Queries that executed on every shard (i.e. not expired).
    pub fn executed(&self) -> usize {
        self.records.iter().filter(|r| !r.expired).count()
    }

    /// Queries dropped because a deadline expired before execution.
    pub fn expired(&self) -> usize {
        self.records.iter().filter(|r| r.expired).count()
    }

    /// Workload false positive ratio (Equation 3) over executed queries,
    /// with the sharded candidate sets. `0.0` for an empty wave — never
    /// NaN, so CSV reports stay well-formed.
    pub fn false_positive_ratio(&self) -> f64 {
        counted_false_positive_ratio(
            self.records
                .iter()
                .filter(|r| !r.expired)
                .map(|r| (r.candidate_count, r.answer_count())),
        )
    }

    /// Executed queries per wall-clock second. `0.0` for an empty or
    /// zero-duration wave — never NaN or infinity.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_s > 0.0 && self.wall_s.is_finite() {
            self.executed() as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Total `(query, shard)` probes the wave dispatched, over executed
    /// queries. A fanned-out wave probes `executed × shards`; the routed
    /// wave's savings show up as [`ShardedReport::shards_skipped`].
    pub fn shards_probed(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| !r.expired)
            .map(|r| r.shards_probed as u64)
            .sum()
    }

    /// Total `(query, shard)` probes the router skipped, over executed
    /// queries. Always 0 under [`RoutingMode::Fanout`].
    pub fn shards_skipped(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| !r.expired)
            .map(|r| r.shards_skipped as u64)
            .sum()
    }
}

/// The sharded query service: N shard pools behind one admission front.
/// Construct with [`ShardedService::build`], then either serve closed
/// waves ([`ShardedService::run_wave`]) or drain an open
/// [`AdmissionQueue`] ([`ShardedService::drain`]).
pub struct ShardedService {
    shards: Vec<Shard>,
    strategy: ShardStrategy,
    routing: RoutingMode,
    router: Router,
}

impl ShardedService {
    /// Partitions `dataset`, builds one `kind` index per shard, computes
    /// each shard's routing synopsis and sets up the per-shard worker
    /// pools. Building is sequential per shard; the returned service
    /// serves waves across all shards concurrently.
    pub fn build(
        kind: MethodKind,
        method_config: &MethodConfig,
        dataset: &Dataset,
        config: &ShardedConfig,
    ) -> Self {
        let workers = config.workers_per_shard.max(1);
        let shards: Vec<Shard> = partition_dataset(dataset, config.shards, config.strategy)
            .into_iter()
            .map(|part| {
                let index = build_index(kind, method_config, &part.dataset);
                Shard {
                    dataset: part.dataset,
                    index,
                    to_global: part.to_global,
                    arenas: (0..workers).map(|_| WorkerArena::default()).collect(),
                }
            })
            .collect();
        // The router is always built (one cheap pass per shard slice) so a
        // service can serve both modes and diagnostics can inspect the
        // synopses; `routing` only decides whether waves consult it.
        let router = Router::build(shards.iter().map(|s| &s.dataset));
        ShardedService {
            shards,
            strategy: config.strategy,
            routing: config.routing,
            router,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partitioning strategy the service was built with.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// The routing mode waves run under.
    pub fn routing(&self) -> RoutingMode {
        self.routing
    }

    /// The routing planner (one synopsis per shard), consultable even when
    /// the service was built in [`RoutingMode::Fanout`].
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Graphs per shard, indexed by shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.dataset.len()).collect()
    }

    /// Aggregated index statistics: feature counts and sizes summed over
    /// all shard indexes.
    pub fn stats(&self) -> IndexStats {
        let mut total = IndexStats {
            distinct_features: 0,
            size_bytes: 0,
        };
        for shard in &self.shards {
            let stats = shard.index.stats();
            total.distinct_features += stats.distinct_features;
            total.size_bytes += stats.size_bytes;
        }
        total
    }

    /// Serves one closed wave of queries against every shard concurrently
    /// and merges the results. Records come back in wave order with the
    /// query's position as its ticket. `deadline` is wave-wide; see
    /// [`ShardedService::drain`] for per-query deadlines.
    pub fn run_wave(&mut self, queries: &[&Graph], deadline: Option<Instant>) -> ShardedReport {
        let tickets: Vec<Ticket> = (0..queries.len() as u64).collect();
        self.run_wave_inner(queries, deadline, None, &tickets, None)
    }

    /// Drains every query currently admitted to `queue` and serves them as
    /// one wave, honouring each query's own admission deadline. Returns
    /// immediately with an empty report when nothing is pending — the
    /// caller's consumer loop paces itself. The queue is deliberately
    /// external to the service so any number of producer threads can
    /// `submit` against it while the consumer drains.
    pub fn drain(&mut self, queue: &AdmissionQueue, deadline: Option<Instant>) -> ShardedReport {
        let wave: Vec<AdmittedQuery> = queue.drain_pending();
        if wave.is_empty() {
            return ShardedReport {
                records: Vec::new(),
                per_shard: vec![StageTotals::default(); self.shards.len()],
                totals: StageTotals::default(),
                wall_s: 0.0,
                shards: self.shards.len(),
            };
        }
        let queries: Vec<&Graph> = wave.iter().map(|a| &a.query).collect();
        let per_query: Vec<Option<Instant>> = wave.iter().map(|a| a.deadline).collect();
        let tickets: Vec<Ticket> = wave.iter().map(|a| a.ticket).collect();
        // Queue-wait accounting starts at submission, not at wave start: a
        // query that sat in a backed-up admission queue carries that wait
        // into its record on top of the in-wave shard queue wait.
        let drained_at = Instant::now();
        let admission_wait_s: Vec<f64> = wave
            .iter()
            .map(|a| {
                drained_at
                    .saturating_duration_since(a.submitted_at)
                    .as_secs_f64()
            })
            .collect();
        self.run_wave_inner(
            &queries,
            deadline,
            Some(&per_query),
            &tickets,
            Some(&admission_wait_s),
        )
    }

    fn run_wave_inner(
        &mut self,
        queries: &[&Graph],
        deadline: Option<Instant>,
        per_query: Option<&[Option<Instant>]>,
        tickets: &[Ticket],
        admission_wait_s: Option<&[f64]>,
    ) -> ShardedReport {
        let shard_count = self.shards.len();
        let watch = Stopwatch::start();
        // Routing stage: per shard, the ascending wave indices of the
        // queries it must serve. Fanout keeps the pre-routing zero-copy
        // path (every shard serves the wave slice as-is, no plan is
        // materialized); synopsis routing builds per-shard subsets,
        // skipping shards the summary proves empty of matches — soundly,
        // so the merge below stays bit-identical.
        let plan: Option<Vec<Vec<usize>>> = match self.routing {
            RoutingMode::Fanout => None,
            RoutingMode::Synopsis => Some(self.router.plan(queries, RoutingMode::Synopsis)),
        };
        // Fan the wave out: one worker pool per shard, all shards in
        // flight at once (scoped threads so shards' indexes stay borrowed).
        let run_shard = |shard: &mut Shard, admitted: Option<&[usize]>| match admitted {
            None => run_batch_on(
                &*shard.index,
                &shard.dataset,
                &mut shard.arenas,
                queries,
                deadline,
                per_query,
            ),
            Some(admitted) => {
                let sub_queries: Vec<&Graph> = admitted.iter().map(|&qi| queries[qi]).collect();
                let sub_deadlines: Option<Vec<Option<Instant>>> =
                    per_query.map(|all| admitted.iter().map(|&qi| all[qi]).collect());
                run_batch_on(
                    &*shard.index,
                    &shard.dataset,
                    &mut shard.arenas,
                    &sub_queries,
                    deadline,
                    sub_deadlines.as_deref(),
                )
            }
        };
        fn admitted_of(plan: &Option<Vec<Vec<usize>>>, s: usize) -> Option<&[usize]> {
            plan.as_ref().map(|p| p[s].as_slice())
        }
        // A shard the router left without a single admitted query is idle
        // this wave: synthesize its empty report instead of paying a
        // thread spawn/join for it — on label-coherent data that is most
        // shards of every wave, the exact regime routing targets.
        let idle_report = || BatchReport {
            records: Vec::new(),
            totals: StageTotals::default(),
            wall_s: 0.0,
            workers: 0,
        };
        let reports: Vec<BatchReport> = if shard_count == 1 {
            vec![run_shard(&mut self.shards[0], admitted_of(&plan, 0))]
        } else {
            std::thread::scope(|scope| {
                let run_shard = &run_shard;
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .enumerate()
                    .map(|(s, shard)| {
                        let admitted = admitted_of(&plan, s);
                        if admitted.is_some_and(|a| a.is_empty()) {
                            None
                        } else {
                            Some(scope.spawn(move || run_shard(shard, admitted)))
                        }
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| match handle {
                        Some(handle) => handle.join().expect("shard pool panicked"),
                        None => idle_report(),
                    })
                    .collect()
            })
        };
        let wall_s = watch.elapsed_secs();

        // Merge stage: per query, union the shard-local answers (mapped to
        // global ids) of the shards that probed it and fold the stage
        // timings; per shard, keep the aggregate totals for the balance
        // view. Skipped (query, shard) pairs contribute nothing — the
        // router proved those shards hold no answers.
        let per_shard: Vec<StageTotals> = reports.iter().map(|r| r.totals.clone()).collect();
        let mut records = Vec::with_capacity(queries.len());
        let mut totals = StageTotals::default();
        // Walk each shard's admitted list in lockstep with the wave index
        // instead of binary-searching per (query, shard) pair.
        let mut cursors = vec![0usize; shard_count];
        for (qi, &ticket) in tickets.iter().enumerate() {
            let mut merged = ShardedQueryRecord {
                ticket,
                answers: Vec::new(),
                candidate_count: 0,
                candidates_pruned: 0,
                queue_wait_s: 0.0,
                filter_s: 0.0,
                verify_s: 0.0,
                expired: false,
                shards_probed: 0,
                shards_skipped: 0,
            };
            let mut shard_wait_s = 0.0f64;
            for (s, (shard, report)) in self.shards.iter().zip(reports.iter()).enumerate() {
                // A fanned-out shard's records line up with the wave; a
                // routed shard's line up with its admitted subset.
                let local = match &plan {
                    None => qi,
                    Some(plan) => {
                        let cursor = &mut cursors[s];
                        if plan[s].get(*cursor) != Some(&qi) {
                            merged.shards_skipped += 1;
                            continue;
                        }
                        let position = *cursor;
                        *cursor += 1;
                        position
                    }
                };
                merged.shards_probed += 1;
                match &report.records[local] {
                    Some(record) => {
                        merged
                            .answers
                            .extend(record.answers.iter().map(|&local| shard.to_global[local]));
                        merged.candidate_count += record.candidate_count;
                        merged.candidates_pruned += record.candidates_pruned;
                        shard_wait_s = shard_wait_s.max(record.queue_wait_s);
                        merged.filter_s += record.filter_s;
                        merged.verify_s += record.verify_s;
                    }
                    None => merged.expired = true,
                }
            }
            // Total queue wait = time pending in the admission queue (open
            // waves only) + the in-wave wait for the slowest shard.
            merged.queue_wait_s = admission_wait_s.map_or(0.0, |w| w[qi]) + shard_wait_s;
            // Deadline parity with fan-out for zero-probe queries: a
            // fanned-out wave would have had every shard skip a
            // past-deadline query (expired), so a routed query that no
            // shard admits must not dodge its deadline just because its
            // (empty) answer was free — same `now > deadline` predicate
            // the workers apply at claim time.
            if merged.shards_probed == 0 && !merged.expired {
                let now = Instant::now();
                let past = |d: Option<Instant>| d.is_some_and(|d| now > d);
                if past(deadline) || past(per_query.and_then(|p| p[qi])) {
                    merged.expired = true;
                }
            }
            if merged.expired {
                // A partially executed query must not report an incomplete
                // answer set: drop what the faster shards found.
                merged.answers.clear();
                merged.candidate_count = 0;
                merged.candidates_pruned = 0;
            } else {
                // Shards partition the id space, so the concatenation is
                // duplicate-free; sorting restores global id order.
                merged.answers.sort_unstable();
                totals.add_query(
                    merged.queue_wait_s,
                    merged.filter_s,
                    merged.verify_s,
                    merged.candidates_pruned,
                );
            }
            records.push(merged);
        }
        ShardedReport {
            records,
            per_shard,
            totals,
            wall_s,
            shards: shard_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
    use std::time::Duration;

    fn setup(graphs: usize, queries: usize) -> (Dataset, Vec<Graph>) {
        let ds = GraphGen::new(
            GraphGenConfig::default()
                .with_graph_count(graphs)
                .with_avg_nodes(12)
                .with_avg_density(0.15)
                .with_label_count(4)
                .with_seed(23),
        )
        .generate();
        let workload = QueryGen::new(9).generate(&ds, queries, 4);
        let qs = workload.iter().map(|(q, _)| q.clone()).collect();
        (ds, qs)
    }

    #[test]
    fn round_robin_partition_covers_every_graph_once() {
        let (ds, _) = setup(13, 1);
        for shards in [1, 2, 4, 7] {
            let parts = partition_dataset(&ds, shards, ShardStrategy::RoundRobin);
            assert_eq!(parts.len(), shards);
            let mut seen: Vec<GraphId> = parts.iter().flat_map(|p| p.to_global.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..ds.len()).collect::<Vec<_>>());
            for part in &parts {
                assert_eq!(part.dataset.len(), part.to_global.len());
                // Local id order tracks global id order.
                assert!(part.to_global.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn size_balanced_partition_covers_every_graph_once_and_balances() {
        let (ds, _) = setup(12, 1);
        let parts = partition_dataset(&ds, 3, ShardStrategy::SizeBalanced);
        let mut seen: Vec<GraphId> = parts.iter().flat_map(|p| p.to_global.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..ds.len()).collect::<Vec<_>>());
        for part in &parts {
            assert!(part.to_global.windows(2).all(|w| w[0] < w[1]));
        }
        // LPT keeps the heaviest shard within 2x of the lightest on any
        // non-degenerate dataset (loose bound; the partition is greedy).
        let weights: Vec<usize> = parts
            .iter()
            .map(|p| {
                p.dataset
                    .iter()
                    .map(|(_, g)| g.vertex_count() + g.edge_count())
                    .sum()
            })
            .collect();
        let max = *weights.iter().max().unwrap();
        let min = *weights.iter().min().unwrap();
        assert!(max <= min.max(1) * 2, "badly unbalanced: {weights:?}");
    }

    #[test]
    fn more_shards_than_graphs_leaves_empty_shards() {
        let (ds, _) = setup(3, 1);
        let parts = partition_dataset(&ds, 5, ShardStrategy::RoundRobin);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().filter(|p| p.dataset.is_empty()).count(), 2);
    }

    #[test]
    fn sharded_wave_matches_unsharded_answers() {
        let (ds, queries) = setup(17, 6);
        let refs: Vec<&Graph> = queries.iter().collect();
        let config = MethodConfig::fast();
        for strategy in [ShardStrategy::RoundRobin, ShardStrategy::SizeBalanced] {
            let mut service = ShardedService::build(
                MethodKind::Ggsx,
                &config,
                &ds,
                &ShardedConfig::with_shards(4).strategy(strategy),
            );
            assert_eq!(service.shard_count(), 4);
            let report = service.run_wave(&refs, None);
            assert_eq!(report.executed(), queries.len());
            assert_eq!(report.expired(), 0);
            let oracle = build_index(MethodKind::Ggsx, &config, &ds);
            for (record, query) in report.records.iter().zip(queries.iter()) {
                let outcome = oracle.query(&ds, query);
                assert_eq!(record.answers, outcome.answers, "{}", strategy.name());
            }
        }
    }

    #[test]
    fn drain_serves_admitted_queries_and_honours_expired_deadlines() {
        let (ds, queries) = setup(10, 4);
        let mut service = ShardedService::build(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            &ShardedConfig::with_shards(2),
        );
        let queue = AdmissionQueue::with_capacity(8);
        let past = Instant::now() - Duration::from_secs(1);
        let live = queue.submit(queries[0].clone(), None).unwrap();
        let dead = queue.submit(queries[1].clone(), Some(past)).unwrap();
        let report = service.drain(&queue, None);
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.records[0].ticket, live);
        assert!(!report.records[0].expired);
        assert_eq!(report.records[1].ticket, dead);
        assert!(report.records[1].expired);
        assert!(report.records[1].answers.is_empty());
        assert_eq!(report.executed(), 1);
        assert_eq!(report.expired(), 1);
        assert!(queue.is_empty());
    }

    #[test]
    fn drain_accounts_time_pending_in_the_admission_queue() {
        let (ds, queries) = setup(8, 1);
        let mut service = ShardedService::build(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            &ShardedConfig::with_shards(2),
        );
        let queue = AdmissionQueue::with_capacity(4);
        queue.submit(queries[0].clone(), None).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        let report = service.drain(&queue, None);
        let record = &report.records[0];
        assert!(
            record.queue_wait_s >= 0.04,
            "queue wait {} must include the ~40 ms spent pending in the \
             admission queue before the wave started",
            record.queue_wait_s
        );
        assert!((report.totals.queue_wait_s - record.queue_wait_s).abs() < 1e-12);
    }

    #[test]
    fn empty_drain_and_empty_shards_do_not_hang() {
        let (ds, queries) = setup(2, 2); // fewer graphs than shards
        let mut service = ShardedService::build(
            MethodKind::GCode,
            &MethodConfig::fast(),
            &ds,
            &ShardedConfig::with_shards(4),
        );
        assert_eq!(service.shard_sizes().iter().filter(|&&n| n == 0).count(), 2);
        let queue = AdmissionQueue::with_capacity(4);
        let report = service.drain(&queue, None);
        assert!(report.records.is_empty());
        assert_eq!(report.false_positive_ratio(), 0.0);
        assert_eq!(report.throughput_qps(), 0.0);
        // A real wave over the partly-empty shards still completes.
        let refs: Vec<&Graph> = queries.iter().collect();
        let wave = service.run_wave(&refs, None);
        assert_eq!(wave.executed(), 2);
        let oracle = build_index(MethodKind::GCode, &MethodConfig::fast(), &ds);
        for (record, query) in wave.records.iter().zip(queries.iter()) {
            assert_eq!(record.answers, oracle.query(&ds, query).answers);
        }
    }

    #[test]
    fn routed_wave_matches_fanout_and_skips_label_disjoint_shards() {
        // Four label-disjoint families interleaved i % 4: with 4 shards,
        // round-robin sends each family to its own shard, so a routed
        // query probes exactly the shards of its family.
        let ds = sqbench_generator::label_clustered(
            &GraphGenConfig::default()
                .with_graph_count(16)
                .with_avg_nodes(10)
                .with_avg_density(0.16)
                .with_label_count(3)
                .with_seed(77),
            4,
        );
        let queries: Vec<Graph> = QueryGen::new(13)
            .generate(&ds, 6, 4)
            .iter()
            .map(|(q, _)| q.clone())
            .collect();
        let refs: Vec<&Graph> = queries.iter().collect();
        let config = MethodConfig::fast();
        let mut fanout = ShardedService::build(
            MethodKind::Ggsx,
            &config,
            &ds,
            &ShardedConfig::with_shards(4),
        );
        let mut routed = ShardedService::build(
            MethodKind::Ggsx,
            &config,
            &ds,
            &ShardedConfig::with_shards(4).routing(RoutingMode::Synopsis),
        );
        assert_eq!(fanout.routing(), RoutingMode::Fanout);
        assert_eq!(routed.routing(), RoutingMode::Synopsis);
        let fanout_report = fanout.run_wave(&refs, None);
        let routed_report = routed.run_wave(&refs, None);
        for (f, r) in fanout_report
            .records
            .iter()
            .zip(routed_report.records.iter())
        {
            assert_eq!(f.answers, r.answers, "routing changed a match set");
            assert_eq!(f.shards_probed, 4);
            assert_eq!(f.shards_skipped, 0);
            assert_eq!(r.shards_probed + r.shards_skipped, 4);
            // Label-disjoint families: each query's labels live on exactly
            // one shard, so routing must skip the other three.
            assert_eq!(r.shards_probed, 1, "query leaked outside its family");
        }
        assert_eq!(fanout_report.shards_probed(), 4 * queries.len() as u64);
        assert_eq!(fanout_report.shards_skipped(), 0);
        assert_eq!(routed_report.shards_probed(), queries.len() as u64);
        assert_eq!(routed_report.shards_skipped(), 3 * queries.len() as u64);
        assert!(routed.router().memory_bytes() > 0);
    }

    #[test]
    fn query_admitted_by_no_shard_executes_with_empty_answers() {
        let (ds, _) = setup(9, 1);
        let mut service = ShardedService::build(
            MethodKind::Scan,
            &MethodConfig::fast(),
            &ds,
            &ShardedConfig::with_shards(3).routing(RoutingMode::Synopsis),
        );
        // A query over a label far outside the generated alphabet: every
        // shard synopsis rejects it, no index is probed, and the (correct)
        // empty answer comes back as an executed record.
        let mut impossible = Graph::new("impossible");
        let a = impossible.add_vertex(9_999);
        let b = impossible.add_vertex(9_999);
        impossible.add_edge(a, b).unwrap();
        let report = service.run_wave(&[&impossible], None);
        assert_eq!(report.executed(), 1);
        let record = &report.records[0];
        assert!(!record.expired);
        assert!(record.answers.is_empty());
        assert_eq!(record.shards_probed, 0);
        assert_eq!(record.shards_skipped, 3);
        assert_eq!(record.candidate_count, 0);
        assert_eq!(report.shards_probed(), 0);

        // Deadline parity with fan-out: had the wave fanned out, every
        // shard would have skipped this past-deadline query (expired), so
        // the zero-probe path must report expired too — not sneak the
        // free empty answer past the deadline.
        let past = Instant::now() - Duration::from_secs(1);
        let late = service.run_wave(&[&impossible], Some(past));
        assert_eq!(late.expired(), 1);
        assert!(late.records[0].expired);
        assert_eq!(late.executed(), 0);
    }

    #[test]
    fn routed_drain_honours_deadlines_and_accounts_probes() {
        let (ds, queries) = setup(12, 4);
        let mut service = ShardedService::build(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            &ShardedConfig::with_shards(2).routing(RoutingMode::Synopsis),
        );
        let queue = AdmissionQueue::with_capacity(8);
        let past = Instant::now() - Duration::from_secs(1);
        queue.submit(queries[0].clone(), None).unwrap();
        queue.submit(queries[1].clone(), Some(past)).unwrap();
        let report = service.drain(&queue, None);
        assert_eq!(report.records.len(), 2);
        assert!(!report.records[0].expired);
        assert!(report.records[0].shards_probed <= 2);
        assert!(report.records[1].expired);
        assert!(report.records[1].answers.is_empty());
        // Expired queries are excluded from the probe totals.
        assert_eq!(
            report.shards_probed() + report.shards_skipped(),
            2 // one executed query × two shards accounted either way
        );
    }

    #[test]
    fn stats_aggregate_over_shards() {
        let (ds, _) = setup(12, 1);
        let service = ShardedService::build(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            &ShardedConfig::with_shards(3).workers_per_shard(2),
        );
        let stats = service.stats();
        assert!(stats.size_bytes > 0);
        assert!(stats.distinct_features > 0);
        assert_eq!(service.shard_sizes().iter().sum::<usize>(), ds.len());
        assert_eq!(service.strategy(), ShardStrategy::RoundRobin);
    }
}
