//! Sharded query service: partition the dataset, build one index per
//! shard, fan every query wave out to all shard pools concurrently, and
//! merge the per-shard match sets back into global answers.
//!
//! The paper's study (and the batch [`QueryService`]) serves one index over
//! one dataset. That stops scaling when the dataset outgrows a single
//! index build — the regime the billion-node partition-then-match line of
//! work targets. This module generalizes the serving path to N shards:
//!
//! ```text
//!              ┌────────────────────── ShardedService ──────────────────────┐
//!  submit ───► │ AdmissionQueue (bounded, multi-producer, per-query         │
//!  submit ───► │                 deadlines)                                 │
//!              │      │ drain → wave (admission order)                      │
//!              │      ▼                                                     │
//!              │ ┌─ shard 0 ──────┐ ┌─ shard 1 ──────┐ … ┌─ shard N ──────┐ │
//!              │ │ Dataset slice  │ │ Dataset slice  │   │ Dataset slice  │ │
//!              │ │ own GraphIndex │ │ own GraphIndex │   │ own GraphIndex │ │
//!              │ │ worker pool +  │ │ worker pool +  │   │ worker pool +  │ │
//!              │ │ arenas         │ │ arenas         │   │ arenas         │ │
//!              │ └───────┬────────┘ └───────┬────────┘   └───────┬────────┘ │
//!              │         ▼ local ids        ▼                    ▼          │
//!              │      merge: map → global ids, union answers, aggregate     │
//!              │             per-shard StageTotals                          │
//!              └──────────► ShardedReport (records in wave order) ──────────┘
//! ```
//!
//! * **Partitioner** — [`partition_dataset`] splits the dataset by
//!   [`ShardStrategy`]: `RoundRobin` (graph *i* → shard *i mod N*; keeps
//!   id-adjacent graphs apart, good when sizes are i.i.d.), `SizeBalanced`
//!   (longest-processing-time greedy on vertex+edge weight; good when
//!   graph sizes are skewed) or `LabelAware` (greedy dominant-label
//!   clustering under a balance cap; co-locates label-coherent graphs so
//!   synopsis routing skips shards even on interleaved ingest). Each shard
//!   remembers its local→global id mapping, and its dataset slice
//!   **shares** graph storage with the source dataset (`Arc` handles, no
//!   deep copies), so partitioning costs pointers, not bytes.
//! * **Per-shard pools** — each shard owns its dataset slice, its index and
//!   its worker arenas; a wave runs one [`run_batch_on`] pool per shard on
//!   scoped threads, so shards progress concurrently and arenas persist
//!   across waves exactly like the single-index service.
//! * **Router** — before fan-out, the wave consults the per-shard
//!   [`Router`] synopses (under [`RoutingMode::Synopsis`]) and dispatches
//!   each query only to shards that can possibly hold a match; skipped
//!   shards are proven matchless, so routed answers stay bit-identical.
//!   Per-query [`ShardedQueryRecord::shards_probed`] /
//!   [`ShardedQueryRecord::shards_skipped`] account for the savings.
//! * **Merge** — per query, shard-local answer ids are mapped through the
//!   shard's id table and unioned. Shards partition the dataset, so the
//!   union is disjoint and the merged answer set is *bit-identical* to the
//!   unsharded service's (verification is exact on every shard); only
//!   filtering power — and therefore candidate counts — may differ, because
//!   each shard mines/encodes features over its own slice.
//!
//! A query expires if *any* shard had to skip it on deadline — a partially
//! executed query would otherwise report a silently incomplete answer set.

use super::admission::{AdmissionQueue, AdmittedQuery, IngestOp, Ticket};
use super::cache::{answer_memo_key, AnswerEntry, AnswerMemo, FeatureCache};
use super::fault::FaultPlan;
use super::options::ServiceOptions;
use super::pool::{WaveFaults, WorkerArena};
use super::run_batch_on;
use super::stages::{QueryOutcome, QueryRecord};
use super::synopsis::{Router, RoutingMode};
use crate::metrics::{counted_false_positive_ratio, CacheCounters, StageTotals, Stopwatch};
use sqbench_graph::{Dataset, Graph, GraphId, GraphSynopsis, ShardSynopsis};
use sqbench_index::{
    build_index, FeatureCacheStore, GraphIndex, IndexStats, MethodConfig, MethodKind,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How [`partition_dataset`] assigns graphs to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardStrategy {
    /// Graph `i` goes to shard `i % shards`. Deterministic, streaming, and
    /// even by *count*; the default.
    #[default]
    RoundRobin,
    /// Longest-processing-time greedy by graph weight (vertices + edges):
    /// graphs are placed heaviest-first onto the currently lightest shard,
    /// evening out total shard *size* when graph sizes are skewed.
    SizeBalanced,
    /// Label-affinity greedy clustering: graphs are placed heaviest-first
    /// onto the shard whose resident label set their own labels overlap
    /// most (dominant labels weigh proportionally to their multiplicity),
    /// under a per-shard weight cap that keeps the partition balanced.
    /// Label-coherent graph families end up co-located, which is what
    /// makes [`RoutingMode::Synopsis`] skip shards even when ingest
    /// interleaves the families — the regime where round-robin placement
    /// smears every family across every shard and routing saves nothing.
    LabelAware,
}

impl ShardStrategy {
    /// Every strategy, in documentation order — what sweeps and proptests
    /// iterate.
    pub const ALL: [ShardStrategy; 3] = [
        ShardStrategy::RoundRobin,
        ShardStrategy::SizeBalanced,
        ShardStrategy::LabelAware,
    ];

    /// Short name used in logs, CSV descriptions and bench ids.
    pub fn name(&self) -> &'static str {
        match self {
            ShardStrategy::RoundRobin => "round-robin",
            ShardStrategy::SizeBalanced => "size-balanced",
            ShardStrategy::LabelAware => "label-aware",
        }
    }
}

/// Bounded retry with exponential backoff for *failed* per-shard
/// executions (panics, dead pools — transient by assumption until the
/// bound is spent). Timed-out shards are never retried: their budget is
/// already gone by definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry rounds per wave (0 disables retry).
    pub max_retries: u32,
    /// Backoff before the first retry round; doubles every round.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_micros(500),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (failures surface immediately).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
        }
    }

    /// The backoff before retry round `round`. Saturates instead of
    /// panicking: the doubling factor saturates at `u32::MAX` and the
    /// multiplication at `Duration::MAX`, so adversarial-but-legal
    /// policies (a large base backoff with a deep retry budget) degrade
    /// to "never fits the deadline" instead of crashing the wave.
    fn backoff_for(&self, round: u32) -> Duration {
        self.backoff
            .checked_mul(2u32.saturating_pow(round))
            .unwrap_or(Duration::MAX)
    }

    /// When retry round `round` may run, or `None` when it may not: the
    /// backoff is capped by the query's remaining deadline budget (a
    /// retry scheduled at or past the deadline could only produce a
    /// timed-out probe), and without a deadline a backoff too large to
    /// land on the monotonic clock at all is refused rather than
    /// overflowing the `Instant` addition.
    fn retry_at(&self, round: u32, now: Instant, deadline: Option<Instant>) -> Option<Instant> {
        let backoff = self.backoff_for(round);
        match deadline {
            Some(d) => {
                let remaining = d.saturating_duration_since(now);
                (backoff < remaining).then(|| now + backoff)
            }
            None => now.checked_add(backoff),
        }
    }
}

/// Legacy configuration of a [`ShardedService`], kept as a compatibility
/// shim: it converts into [`ServiceOptions`] (the unified surface) and
/// carries only the pre-cache knobs — cache policy never landed here.
#[deprecated(note = "use ServiceOptions — e.g. ServiceOptions::new().shards(n).workers(w)")]
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards (clamped to at least 1).
    pub shards: usize,
    /// Worker threads per shard pool (clamped to at least 1).
    pub workers_per_shard: usize,
    /// How graphs are assigned to shards.
    pub strategy: ShardStrategy,
    /// Whether waves fan out to every shard or consult the per-shard
    /// synopses and probe only shards that can possibly hold a match.
    pub routing: RoutingMode,
    /// Retry policy for failed per-shard executions.
    pub retry: RetryPolicy,
    /// Deterministic fault-injection plan (tests/soaks only). `None` — the
    /// default — is the zero-cost production path.
    pub faults: Option<Arc<FaultPlan>>,
}

#[allow(deprecated)]
impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 1,
            workers_per_shard: 1,
            strategy: ShardStrategy::RoundRobin,
            routing: RoutingMode::Fanout,
            retry: RetryPolicy::default(),
            faults: None,
        }
    }
}

#[allow(deprecated)]
impl ShardedConfig {
    /// A config with the given shard count (one worker per shard,
    /// round-robin placement).
    pub fn with_shards(shards: usize) -> Self {
        ShardedConfig {
            shards: shards.max(1),
            ..Default::default()
        }
    }

    /// Sets the partitioning strategy.
    pub fn strategy(mut self, strategy: ShardStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the per-shard worker-pool size.
    pub fn workers_per_shard(mut self, workers: usize) -> Self {
        self.workers_per_shard = workers.max(1);
        self
    }

    /// Sets the routing mode (see [`RoutingMode`]).
    pub fn routing(mut self, routing: RoutingMode) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the retry policy for failed per-shard executions.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Arms a deterministic fault-injection plan (see [`FaultPlan`]).
    pub fn faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// One partition of a dataset: the shard-local dataset plus the mapping
/// from shard-local [`GraphId`]s back to ids in the original dataset.
#[derive(Debug, Clone)]
pub struct ShardPart {
    /// The shard's slice of the dataset (ids re-densified to `0..len`),
    /// sharing graph storage with the source dataset.
    pub dataset: Dataset,
    /// `to_global[local_id]` is the graph's id in the unsharded dataset.
    pub to_global: Vec<GraphId>,
}

/// Splits `dataset` into `shards` parts by `strategy`. Every graph lands in
/// exactly one part; parts may be empty when the dataset has fewer graphs
/// than shards (the service handles empty shards — they simply answer
/// nothing). Deterministic for a given dataset/strategy/shard count.
///
/// Partitioning is **zero-copy**: each part holds `Arc` handles onto the
/// source dataset's graphs (`Arc::clone` per graph — O(pointers), not
/// O(bytes)), so the incremental memory of a full partition is the parts'
/// pointer spines, not a second copy of the dataset. That is what makes
/// placement experiments — re-partitioning the same dataset under several
/// strategies and shard counts — cheap enough to run side by side; the
/// `ShardPart::dataset.owned_memory_bytes()` sum is the honest overhead
/// figure the harness reports as `partition_overhead_bytes`.
pub fn partition_dataset(
    dataset: &Dataset,
    shards: usize,
    strategy: ShardStrategy,
) -> Vec<ShardPart> {
    let shards = shards.max(1);
    let mut assignment: Vec<Vec<GraphId>> = vec![Vec::new(); shards];
    match strategy {
        ShardStrategy::RoundRobin => {
            for id in dataset.ids() {
                assignment[id % shards].push(id);
            }
        }
        ShardStrategy::SizeBalanced => {
            // LPT greedy: heaviest graph first onto the lightest shard.
            // Ties break on the lower id / lower shard index, keeping the
            // partition deterministic.
            let mut by_weight: Vec<(usize, GraphId)> = dataset
                .iter()
                .map(|(id, g)| (g.vertex_count() + g.edge_count(), id))
                .collect();
            by_weight.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let mut loads = vec![0usize; shards];
            for (weight, id) in by_weight {
                let lightest = loads
                    .iter()
                    .enumerate()
                    .min_by_key(|&(shard, &load)| (load, shard))
                    .map(|(shard, _)| shard)
                    .expect("at least one shard");
                loads[lightest] += weight;
                assignment[lightest].push(id);
            }
        }
        ShardStrategy::LabelAware => {
            assignment = label_aware_assignment(dataset, shards);
        }
    }
    // Keep shard-local id order aligned with global id order so a shard's
    // answers come out sorted after mapping (round-robin emits ids in
    // order already; the greedy strategies do not).
    for ids in &mut assignment {
        ids.sort_unstable();
    }
    assignment
        .into_iter()
        .enumerate()
        .map(|(shard, ids)| {
            let graphs: Vec<std::sync::Arc<Graph>> = ids
                .iter()
                .map(|&id| std::sync::Arc::clone(dataset.shared_unchecked(id)))
                .collect();
            ShardPart {
                dataset: Dataset::from_shared(
                    format!("{}[shard {shard}/{shards}]", dataset.name()),
                    graphs,
                ),
                to_global: ids,
            }
        })
        .collect()
}

/// The [`ShardStrategy::LabelAware`] placement: greedy dominant-label
/// clustering under a balance cap.
///
/// Graphs are processed heaviest-first (LPT order, ties on lower id). Each
/// graph scores every shard by **label affinity** — the number of its
/// vertices whose label the shard already hosts, so a graph's dominant
/// labels dominate its placement — and goes to the highest-affinity shard
/// whose load stays within the cap `max(ceil(total_weight / shards),
/// heaviest graph)`; ties break on lighter load, then lower shard index.
/// The cap is what keeps a uniform-label dataset from collapsing onto one
/// shard: once every shard hosts the whole alphabet, affinity ties and the
/// load tie-break takes over, degrading gracefully to size-balanced
/// placement. Deterministic for a given dataset and shard count.
fn label_aware_assignment(dataset: &Dataset, shards: usize) -> Vec<Vec<GraphId>> {
    use std::collections::BTreeSet;
    let weight = |g: &Graph| g.vertex_count() + g.edge_count();
    let total: usize = dataset.iter().map(|(_, g)| weight(g)).sum();
    let heaviest = dataset.iter().map(|(_, g)| weight(g)).max().unwrap_or(0);
    let cap = total.div_ceil(shards).max(heaviest);
    let mut order: Vec<GraphId> = dataset.ids().collect();
    order.sort_by_key(|&id| (std::cmp::Reverse(weight(dataset.graph_unchecked(id))), id));
    let mut assignment: Vec<Vec<GraphId>> = vec![Vec::new(); shards];
    let mut loads = vec![0usize; shards];
    let mut shard_labels: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); shards];
    for id in order {
        let g = dataset.graph_unchecked(id);
        let w = weight(g);
        let affinity = |shard: usize| -> usize {
            g.labels()
                .iter()
                .filter(|label| shard_labels[shard].contains(label))
                .count()
        };
        // Highest affinity among shards with room; if every shard is at
        // the cap (possible when heavy graphs round badly), fall back to
        // the globally lightest shard so the partition always completes.
        let best = (0..shards)
            .filter(|&s| loads[s] + w <= cap)
            .max_by_key(|&s| {
                (
                    affinity(s),
                    std::cmp::Reverse(loads[s]),
                    std::cmp::Reverse(s),
                )
            })
            .unwrap_or_else(|| {
                loads
                    .iter()
                    .enumerate()
                    .min_by_key(|&(shard, &load)| (load, shard))
                    .map(|(shard, _)| shard)
                    .expect("at least one shard")
            });
        loads[best] += w;
        shard_labels[best].extend(g.labels().iter().copied());
        assignment[best].push(id);
    }
    assignment
}

/// One shard's mutable state: its dataset slice, its own index, its id
/// mapping, the worker arenas that persist across waves and its feature
/// cache. Shared behind a mutex between the service thread (mutations,
/// stats, cache control) and the shard's persistent executor thread
/// (probes) — the executor holds the lock for the duration of each job,
/// which is what serializes probes against online mutations.
struct ShardCore {
    dataset: Dataset,
    index: Box<dyn GraphIndex>,
    to_global: Vec<GraphId>,
    arenas: Vec<WorkerArena>,
    /// This shard's cross-query feature-bitset cache, shared by its
    /// workers across waves. Per-shard by design: cached bitsets are
    /// shard-local posting lists and must never leak across shards.
    features: Option<FeatureCache>,
}

/// One query's probe of one shard, as shipped to a shard executor.
struct ProbeItem {
    /// The query's wave index — the merge loop's slot for the reply.
    slot: usize,
    query: Arc<Graph>,
    /// The query's own deadline (the wave-wide one travels on the job).
    deadline: Option<Instant>,
    ticket: Ticket,
}

/// A batch of probes for one shard executor, carrying the wave's reply
/// channel. A wave the merge loop has abandoned simply drops its
/// receiver; the executor's late replies then fail silently and the
/// stale work is discarded.
struct ShardJob {
    items: Vec<ProbeItem>,
    wave_deadline: Option<Instant>,
    reply: Sender<WaveEvent>,
}

/// One `(query, shard)` probe completion, streamed to the merge loop the
/// moment the shard finishes it — per-query completion, no wave barrier.
struct WaveEvent {
    shard: usize,
    slot: usize,
    outcome: QueryOutcome,
    /// The probe's record with answers already mapped to *global* ids
    /// (the executor maps them under the core lock, where `to_global` is
    /// stable); `None` for timed-out and failed probes.
    record: Option<QueryRecord>,
}

/// Probe items per worker the dynamic scaler aims for: a backlog of more
/// than this many queries per worker grows the pool (up to the cap).
const QUERIES_PER_WORKER: usize = 4;

/// One shard of the service: shared core state plus the persistent
/// executor thread that serves probe jobs against it.
struct Shard {
    core: Arc<Mutex<ShardCore>>,
    jobs: Sender<ShardJob>,
    /// Probe items queued at (or executing on) this shard — the observed
    /// queue depth that drives dynamic worker scaling.
    backlog: Arc<AtomicUsize>,
    /// Largest worker pool the executor ever scaled to (diagnostics).
    worker_high_water: Arc<AtomicUsize>,
    thread: Option<JoinHandle<()>>,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, ShardCore> {
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        // Disconnect the job channel so the executor's recv loop exits
        // (after finishing any queued jobs), then join it — a service
        // never leaks threads past its own lifetime.
        let (dead, _) = mpsc::channel();
        drop(std::mem::replace(&mut self.jobs, dead));
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Everything one shard executor thread owns, bundled for spawning.
struct ExecutorSetup {
    shard: usize,
    core: Arc<Mutex<ShardCore>>,
    jobs: Receiver<ShardJob>,
    backlog: Arc<AtomicUsize>,
    high_water: Arc<AtomicUsize>,
    workers_min: usize,
    workers_max: usize,
    faults: Option<Arc<FaultPlan>>,
}

/// The shard executor loop: serve probe jobs until the service drops the
/// job channel. Each job locks the core, rescales the worker pool from
/// the observed backlog and runs the probe batch through the shared
/// filter → verify pipeline; per-item results stream back on the job's
/// reply channel as they are known.
fn spawn_shard_executor(setup: ExecutorSetup) -> JoinHandle<()> {
    let ExecutorSetup {
        shard: s,
        core,
        jobs,
        backlog,
        high_water,
        workers_min,
        workers_max,
        faults,
    } = setup;
    std::thread::spawn(move || {
        while let Ok(job) = jobs.recv() {
            // Snapshot the depth before serving: it includes this job's
            // items plus anything that queued behind it.
            let depth = backlog.load(Ordering::Relaxed).max(job.items.len());
            if let Some(plan) = faults.as_deref() {
                // Injected stall: the shard sleeps before serving, the way
                // a GC pause, page-cache miss storm or noisy neighbour
                // delays a real shard. Queries with deadlines degrade at
                // the merge without waiting for it; the rest arrive late.
                if let Some(stall) = plan.take_stall(s) {
                    std::thread::sleep(stall);
                }
            }
            let served = job.items.len();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut guard = core.lock().unwrap_or_else(PoisonError::into_inner);
                let core = &mut *guard;
                let target = depth
                    .div_ceil(QUERIES_PER_WORKER)
                    .clamp(workers_min, workers_max);
                if core.arenas.len() < target {
                    core.arenas.resize_with(target, WorkerArena::default);
                } else if core.arenas.len() > target {
                    core.arenas.truncate(target);
                }
                high_water.fetch_max(target, Ordering::Relaxed);
                let queries: Vec<&Graph> = job.items.iter().map(|it| it.query.as_ref()).collect();
                let per_query: Vec<Option<Instant>> =
                    job.items.iter().map(|it| it.deadline).collect();
                let tickets: Vec<Ticket> = job.items.iter().map(|it| it.ticket).collect();
                let store = core.features.as_ref().map(|f| f as &dyn FeatureCacheStore);
                let mut report = run_batch_on(
                    &*core.index,
                    &core.dataset,
                    &mut core.arenas,
                    &queries,
                    job.wave_deadline,
                    Some(&per_query),
                    faults.as_deref().map(|plan| WaveFaults {
                        plan,
                        tickets: &tickets,
                    }),
                    store,
                );
                for record in report.records.iter_mut().flatten() {
                    for answer in &mut record.answers {
                        *answer = core.to_global[*answer];
                    }
                }
                report
            }));
            match outcome {
                Ok(mut report) => {
                    for (i, item) in job.items.iter().enumerate() {
                        let _ = job.reply.send(WaveEvent {
                            shard: s,
                            slot: item.slot,
                            outcome: report.outcomes[i],
                            record: report.records[i].take(),
                        });
                    }
                }
                // Per-query panics are caught inside the pool's workers,
                // so this is shard infrastructure failing — every probe
                // of the job is `Failed` (retryable), not the whole wave.
                Err(_) => {
                    for item in &job.items {
                        let _ = job.reply.send(WaveEvent {
                            shard: s,
                            slot: item.slot,
                            outcome: QueryOutcome::Failed,
                            record: None,
                        });
                    }
                }
            }
            backlog.fetch_sub(served, Ordering::Relaxed);
        }
    })
}

/// What the sharded service records for one query of a wave.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedQueryRecord {
    /// The query's admission ticket (for open waves) or its position in the
    /// submitted slice (for closed waves).
    pub ticket: Ticket,
    /// Merged verified answers as *global* graph ids, sorted ascending.
    pub answers: Vec<GraphId>,
    /// Candidates surviving filtering, summed across shards.
    pub candidate_count: usize,
    /// Graphs pruned by filtering, summed across shards.
    pub candidates_pruned: usize,
    /// Longest queue wait across shards (the query is not done before its
    /// slowest shard picks it up), plus — for open waves served through
    /// [`ShardedService::drain`] — the time the query spent pending in the
    /// [`AdmissionQueue`] before the wave started.
    pub queue_wait_s: f64,
    /// Seconds spent probing the cross-query caches: per-shard feature
    /// cache probes summed across shards, or the single admission-time
    /// answer-memo probe for a memo-served query. `0.0` when caching is
    /// disabled.
    pub cache_probe_s: f64,
    /// Filter work summed across shards (total work, not critical path).
    pub filter_s: f64,
    /// Verify work summed across shards (total work, not critical path).
    pub verify_s: f64,
    /// End-to-end seconds from the query's submission (its admission
    /// point, for open waves; the wave start for closed waves) to the
    /// moment the merge finalized its outcome — the latency a caller
    /// observes, as opposed to the summed per-stage *work* above. This is
    /// what the wave's latency percentiles are built from. Mutations
    /// report their queue wait; memo hits their wait plus the probe.
    pub latency_s: f64,
    /// How the query's execution ended across its probed shards:
    ///
    /// * [`QueryOutcome::Complete`] — every probed shard verified it; the
    ///   answer set is exact.
    /// * [`QueryOutcome::Degraded`] — some probed shards finished, others
    ///   failed or ran out of deadline budget; the answers are the partial
    ///   union of the finished shards (sound — every id is a verified
    ///   match — but possibly incomplete).
    /// * [`QueryOutcome::TimedOut`] — the deadline expired before the
    ///   query could start on any shard; answers are dropped.
    /// * [`QueryOutcome::Failed`] — execution failed on every shard that
    ///   could have answered and retries did not recover it.
    pub outcome: QueryOutcome,
    /// Per-shard retry attempts spent on this query (0 on the happy path).
    pub retries: u32,
    /// Shards this query was actually dispatched to. Equals the shard
    /// count under [`RoutingMode::Fanout`]; under [`RoutingMode::Synopsis`]
    /// it can be as low as 0 (no shard can possibly match — the query is
    /// answered empty without touching any index).
    pub shards_probed: usize,
    /// Shards the router proved could hold no match and skipped.
    /// `shards_probed + shards_skipped` always equals the shard count.
    pub shards_skipped: usize,
}

impl ShardedQueryRecord {
    /// Number of verified answers (0 for expired/failed queries).
    pub fn answer_count(&self) -> usize {
        self.answers.len()
    }

    /// `true` when the query's deadline expired before it could start —
    /// the pre-outcome `expired` flag, kept as the deadline-accounting
    /// vocabulary of the soak tests and sweeps.
    pub fn expired(&self) -> bool {
        matches!(self.outcome, QueryOutcome::TimedOut)
    }
}

/// Everything one wave (closed batch or admission drain) produced.
#[derive(Debug)]
pub struct ShardedReport {
    /// Per-query records, in wave order.
    pub records: Vec<ShardedQueryRecord>,
    /// Stage totals per shard, indexed by shard — the balance view the
    /// shard-count experiments plot.
    pub per_shard: Vec<StageTotals>,
    /// Merged stage totals over executed (non-expired) queries: queue wait
    /// is the per-query max across shards, filter/verify are total work.
    pub totals: StageTotals,
    /// Wall-clock seconds the wave took end to end across all shards.
    pub wall_s: f64,
    /// Number of shards the wave ran on.
    pub shards: usize,
    /// Dataset inserts applied while serving this wave (open
    /// [`ShardedService::drain`] waves only; always 0 for closed waves).
    pub inserts_applied: usize,
    /// Dataset removals applied while serving this wave. Removals of
    /// already-dead or unknown ids are not counted.
    pub removes_applied: usize,
}

impl ShardedReport {
    /// Queries that produced an answer set: [`QueryOutcome::Complete`]
    /// plus [`QueryOutcome::Degraded`].
    pub fn executed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome.is_executed())
            .count()
    }

    /// Queries dropped because a deadline expired before execution.
    pub fn expired(&self) -> usize {
        self.records.iter().filter(|r| r.expired()).count()
    }

    /// Queries whose every probed shard completed (exact answers).
    pub fn complete(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome == QueryOutcome::Complete)
            .count()
    }

    /// Queries answered partially within the deadline budget.
    pub fn degraded(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, QueryOutcome::Degraded { .. }))
            .count()
    }

    /// Queries whose execution failed beyond retry on every shard.
    pub fn failed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome == QueryOutcome::Failed)
            .count()
    }

    /// Total per-shard retry attempts the wave spent recovering failures.
    pub fn retries(&self) -> u64 {
        self.records.iter().map(|r| r.retries as u64).sum()
    }

    /// Workload false positive ratio (Equation 3) over executed queries,
    /// with the sharded candidate sets. `0.0` for an empty wave — never
    /// NaN, so CSV reports stay well-formed.
    pub fn false_positive_ratio(&self) -> f64 {
        counted_false_positive_ratio(
            self.records
                .iter()
                .filter(|r| r.outcome.is_executed())
                .map(|r| (r.candidate_count, r.answer_count())),
        )
    }

    /// Executed queries per wall-clock second. `0.0` for an empty or
    /// zero-duration wave — never NaN or infinity.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_s > 0.0 && self.wall_s.is_finite() {
            self.executed() as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Total `(query, shard)` probes the wave dispatched, over executed
    /// queries. A fanned-out wave probes `executed × shards`; the routed
    /// wave's savings show up as [`ShardedReport::shards_skipped`].
    pub fn shards_probed(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.outcome.is_executed())
            .map(|r| r.shards_probed as u64)
            .sum()
    }

    /// Total `(query, shard)` probes the router skipped, over executed
    /// queries. Always 0 under [`RoutingMode::Fanout`].
    pub fn shards_skipped(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.outcome.is_executed())
            .map(|r| r.shards_skipped as u64)
            .sum()
    }
}

/// The sharded query service: N shard pools behind one admission front.
/// Construct with [`ShardedService::new`] from a [`ServiceOptions`], then
/// either serve closed waves ([`ShardedService::run_wave`]) or drain an
/// open [`AdmissionQueue`] ([`ShardedService::drain`]).
pub struct ShardedService {
    shards: Vec<Shard>,
    strategy: ShardStrategy,
    routing: RoutingMode,
    router: Router,
    retry: RetryPolicy,
    /// Service-level whole-answer memo, probed at admission before any
    /// shard is touched. Service-level (not per-shard) because its entries
    /// are *merged global* answers.
    answers: Option<AnswerMemo>,
    partition_overhead_bytes: usize,
    /// The next global graph id [`ShardedService::insert_graph`] hands
    /// out. Global ids are append-only and never reused (removal
    /// tombstones), so this only grows.
    next_global_id: GraphId,
}

impl ShardedService {
    /// Partitions `dataset`, builds one `kind` index per shard, computes
    /// each shard's routing synopsis and sets up the per-shard worker
    /// pools (plus the cross-query caches when [`super::CachePolicy`] enables
    /// them). Building is sequential per shard; the returned service
    /// serves waves across all shards concurrently.
    ///
    /// `opts.workers` is the pool size *per shard* (the legacy
    /// `workers_per_shard` knob).
    pub fn new(
        kind: MethodKind,
        method_config: &MethodConfig,
        dataset: &Dataset,
        opts: impl Into<ServiceOptions>,
    ) -> Self {
        let opts: ServiceOptions = opts.into();
        let workers = opts.workers.max(1);
        let workers_max = opts.workers_max.max(workers);
        let parts = partition_dataset(dataset, opts.shards, opts.strategy);
        // The partition shares graph storage with `dataset`, so each
        // part's uniquely-owned bytes are its pointer spine — summed here
        // while the source dataset is provably still alive, this is the
        // honest incremental memory the sharded layout costs on top of it.
        let partition_overhead_bytes = parts
            .iter()
            .map(|part| part.dataset.owned_memory_bytes())
            .sum();
        // The router is always built (one cheap pass per shard slice) so a
        // service can serve both modes and diagnostics can inspect the
        // synopses; `routing` only decides whether waves consult it.
        let router = Router::build(parts.iter().map(|p| &p.dataset));
        let shards: Vec<Shard> = parts
            .into_iter()
            .enumerate()
            .map(|(s, part)| {
                let index = build_index(kind, method_config, &part.dataset);
                let core = Arc::new(Mutex::new(ShardCore {
                    dataset: part.dataset,
                    index,
                    to_global: part.to_global,
                    arenas: (0..workers).map(|_| WorkerArena::default()).collect(),
                    features: (opts.cache.feature_capacity > 0)
                        .then(|| FeatureCache::new(opts.cache.feature_capacity)),
                }));
                let (jobs, job_rx) = mpsc::channel();
                let backlog = Arc::new(AtomicUsize::new(0));
                let worker_high_water = Arc::new(AtomicUsize::new(workers));
                let thread = spawn_shard_executor(ExecutorSetup {
                    shard: s,
                    core: Arc::clone(&core),
                    jobs: job_rx,
                    backlog: Arc::clone(&backlog),
                    high_water: Arc::clone(&worker_high_water),
                    workers_min: workers,
                    workers_max,
                    faults: opts.faults.clone(),
                });
                Shard {
                    core,
                    jobs,
                    backlog,
                    worker_high_water,
                    thread: Some(thread),
                }
            })
            .collect();
        ShardedService {
            shards,
            strategy: opts.strategy,
            routing: opts.routing,
            router,
            retry: opts.retry,
            answers: (opts.cache.answer_capacity > 0)
                .then(|| AnswerMemo::new(opts.cache.answer_capacity)),
            partition_overhead_bytes,
            next_global_id: dataset.len(),
        }
    }

    /// Legacy constructor over the deprecated [`ShardedConfig`]; delegates
    /// to [`ShardedService::new`] (which accepts a `ShardedConfig` via
    /// `Into<ServiceOptions>`).
    #[deprecated(note = "use ShardedService::new with ServiceOptions")]
    #[allow(deprecated)]
    pub fn build(
        kind: MethodKind,
        method_config: &MethodConfig,
        dataset: &Dataset,
        config: &ShardedConfig,
    ) -> Self {
        Self::new(kind, method_config, dataset, config.clone())
    }

    /// Incremental heap bytes the shard partition added on top of the
    /// source dataset at build time: the shards' `Arc` pointer spines.
    /// Before the shared-storage data model this was a full second copy of
    /// the dataset (~100% of `Dataset::memory_bytes`); now it is
    /// O(pointers).
    pub fn partition_overhead_bytes(&self) -> usize {
        self.partition_overhead_bytes
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partitioning strategy the service was built with.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// The routing mode waves run under.
    pub fn routing(&self) -> RoutingMode {
        self.routing
    }

    /// The routing planner (one synopsis per shard), consultable even when
    /// the service was built in [`RoutingMode::Fanout`].
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Graphs per shard, indexed by shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().dataset.len()).collect()
    }

    /// Largest worker pool each shard's executor ever scaled to, indexed
    /// by shard — the dynamic-scaling high-water mark. Equals the
    /// configured floor everywhere while scaling is disabled
    /// (`workers_max <= workers`).
    pub fn worker_high_water(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.worker_high_water.load(Ordering::Relaxed))
            .collect()
    }

    /// Aggregated index statistics: feature counts and sizes summed over
    /// all shard indexes.
    pub fn stats(&self) -> IndexStats {
        let mut total = IndexStats {
            distinct_features: 0,
            size_bytes: 0,
        };
        for shard in &self.shards {
            let stats = shard.lock().index.stats();
            total.distinct_features += stats.distinct_features;
            total.size_bytes += stats.size_bytes;
        }
        total
    }

    /// Aggregated cross-query cache counters: feature-cache hits/misses
    /// summed over the shards plus the service-level answer-memo counters.
    /// All zeros when caching is disabled.
    pub fn cache_counters(&self) -> CacheCounters {
        let mut counters = CacheCounters::default();
        for shard in &self.shards {
            if let Some(features) = &shard.lock().features {
                counters.feature_hits += features.hits();
                counters.feature_misses += features.misses();
                counters.evictions += features.evictions();
            }
        }
        if let Some(memo) = &self.answers {
            counters.answer_hits += memo.hits();
            counters.answer_misses += memo.misses();
            counters.evictions += memo.evictions();
        }
        counters
    }

    /// Drops every cached entry (all per-shard feature caches and the
    /// answer memo) and bumps their epochs. Every mutation entry point
    /// ([`ShardedService::insert_graph`], [`ShardedService::remove_graph`],
    /// and therefore the drained [`IngestOp`] mutations) calls this
    /// automatically, so a warm answer memo can never replay a
    /// pre-mutation answer — the caches stay *enabled* on mutable
    /// workloads instead of being turned off defensively.
    /// Hit/miss/eviction counters survive the flush.
    pub fn invalidate_caches(&self) {
        for shard in &self.shards {
            if let Some(features) = &shard.lock().features {
                features.invalidate_all();
            }
        }
        if let Some(memo) = &self.answers {
            memo.invalidate_all();
        }
    }

    /// Picks the shard a newly ingested graph lands on, mirroring the
    /// build-time [`partition_dataset`] strategy online:
    ///
    /// * `RoundRobin` — `global_id % shards`, exactly the offline rule.
    /// * `SizeBalanced` — the shard with the lightest total live weight
    ///   (vertices + edges), the streaming analogue of LPT greedy.
    /// * `LabelAware` — the shard whose synopsis already hosts most of the
    ///   graph's vertex labels (ties to the lighter shard, then the lower
    ///   index), keeping label-coherent families co-located so synopsis
    ///   routing keeps skipping shards under interleaved ingest.
    fn place(&self, graph: &Graph, global_id: GraphId) -> usize {
        let shard_count = self.shards.len();
        let load = |s: usize| -> usize {
            self.shards[s]
                .lock()
                .dataset
                .iter()
                .map(|(_, g)| g.vertex_count() + g.edge_count())
                .sum()
        };
        match self.strategy {
            ShardStrategy::RoundRobin => global_id % shard_count,
            ShardStrategy::SizeBalanced => (0..shard_count)
                .min_by_key(|&s| (load(s), s))
                .expect("at least one shard"),
            ShardStrategy::LabelAware => {
                let affinity = |s: usize| -> usize {
                    let hosted = &self.router.synopsis(s).max_label_counts;
                    graph
                        .labels()
                        .iter()
                        .filter(|label| hosted.contains_key(label))
                        .count()
                };
                (0..shard_count)
                    .max_by_key(|&s| {
                        (
                            affinity(s),
                            std::cmp::Reverse(load(s)),
                            std::cmp::Reverse(s),
                        )
                    })
                    .expect("at least one shard")
            }
        }
    }

    /// Appends `graph` to the service online: places it on a shard by the
    /// build-time strategy, pushes it into that shard's dataset, extends
    /// the shard's index incrementally (no rebuild), widens the shard's
    /// routing synopsis in place, and **invalidates every cache** so no
    /// stale answer survives the mutation. Returns the graph's new global
    /// id — dense, append-only, never reused.
    pub fn insert_graph(&mut self, graph: Graph) -> GraphId {
        let global = self.next_global_id;
        self.next_global_id += 1;
        let shard_idx = self.place(&graph, global);
        let synopsis = GraphSynopsis::of(&graph);
        // Widen the routing tier before the graph moves into the shard:
        // `insert_graph` holds `&mut self`, so no wave can observe the
        // widened router ahead of the actual insert.
        self.router.absorb(shard_idx, &graph, &synopsis);
        {
            let mut core = self.shards[shard_idx].lock();
            // The index assigns the same local id the dataset push does:
            // both are defined as the current dense universe size.
            let local = core.index.insert(&graph);
            let pushed = core.dataset.push(graph);
            debug_assert_eq!(local, pushed);
            // New global ids exceed every id already in the table, so the
            // push keeps `to_global` sorted — the invariant that makes
            // merged answers come out in global id order.
            core.to_global.push(global);
        }
        self.invalidate_caches();
        global
    }

    /// Removes the graph with global id `global_id` online: tombstones it
    /// in its shard's dataset and index (ids stay dense; payload
    /// compaction is lazy), recomputes that shard's routing synopsis from
    /// its live contents, and **invalidates every cache**. Returns `false`
    /// when the id is unknown or already removed.
    ///
    /// The recomputed synopsis may stay wider than strictly necessary
    /// between compactions but is always recomputed over the live graphs
    /// only (dead slots hold empty placeholders that widen nothing), so
    /// [`ShardSynopsis::admits`] remains a sound necessary condition and
    /// never narrows below the shard's live contents.
    pub fn remove_graph(&mut self, global_id: GraphId) -> bool {
        for s in 0..self.shards.len() {
            let recomputed = {
                let mut core = self.shards[s].lock();
                let Ok(local) = core.to_global.binary_search(&global_id) else {
                    continue;
                };
                if !core.dataset.remove(local) {
                    // Already tombstoned: report idempotently, touch nothing.
                    return false;
                }
                let index_removed = core.index.remove(local);
                debug_assert!(index_removed, "dataset and index tombstones diverged");
                (
                    ShardSynopsis::of(&core.dataset),
                    Router::shard_fingerprint(&core.dataset),
                )
            };
            let (synopsis, fingerprint) = recomputed;
            self.router.replace(s, synopsis, fingerprint);
            self.invalidate_caches();
            return true;
        }
        false
    }

    /// Serves one closed wave of queries against every shard concurrently
    /// and merges the results. Records come back in wave order with the
    /// query's position as its ticket. `deadline` is wave-wide; see
    /// [`ShardedService::drain`] for per-query deadlines.
    pub fn run_wave(&mut self, queries: &[&Graph], deadline: Option<Instant>) -> ShardedReport {
        let tickets: Vec<Ticket> = (0..queries.len() as u64).collect();
        self.run_wave_inner(queries, deadline, None, &tickets, None)
    }

    /// Drains every operation currently admitted to `queue` and serves
    /// them as one wave, honouring each query's own admission deadline.
    /// Returns immediately with an empty report when nothing is pending —
    /// the caller's consumer loop paces itself. The queue is deliberately
    /// external to the service so any number of producer threads can
    /// `submit` against it while the consumer drains.
    ///
    /// Mutations ([`IngestOp::Insert`] / [`IngestOp::Remove`]) interleave
    /// with reads in **ticket order**: consecutive reads are batched and
    /// fanned out together, each mutation flushes the batch first and is
    /// then applied (through [`ShardedService::insert_graph`] /
    /// [`ShardedService::remove_graph`], so caches are invalidated and
    /// synopses widened automatically). A query therefore always observes
    /// exactly the dataset state of its admission point — never answers
    /// computed against a snapshot a later (or earlier) write belongs to.
    /// Mutations produce their own (empty-answer, `Complete`) records so
    /// the report stays wave-shaped; no ticket is ever lost.
    pub fn drain(&mut self, queue: &AdmissionQueue, deadline: Option<Instant>) -> ShardedReport {
        let wave: Vec<AdmittedQuery> = queue.drain_pending();
        let shard_count = self.shards.len();
        if wave.is_empty() {
            return ShardedReport {
                records: Vec::new(),
                per_shard: vec![StageTotals::default(); shard_count],
                totals: StageTotals::default(),
                wall_s: 0.0,
                shards: shard_count,
                inserts_applied: 0,
                removes_applied: 0,
            };
        }
        let watch = Stopwatch::start();
        // Queue-wait accounting starts at submission, not at wave start: a
        // query that sat in a backed-up admission queue carries that wait
        // into its record on top of the in-wave shard queue wait.
        let drained_at = Instant::now();
        let mut records: Vec<ShardedQueryRecord> = Vec::with_capacity(wave.len());
        let mut per_shard = vec![StageTotals::default(); shard_count];
        let mut totals = StageTotals::default();
        let (mut inserts_applied, mut removes_applied) = (0usize, 0usize);
        let mut reads: Vec<AdmittedQuery> = Vec::new();
        for admitted in wave {
            if !admitted.op.is_mutation() {
                reads.push(admitted);
                continue;
            }
            if !reads.is_empty() {
                let report = self.serve_read_batch(&reads, deadline, drained_at);
                feed_cost_model(queue, &report.records);
                records.extend(report.records);
                for (s, shard_totals) in report.per_shard.iter().enumerate() {
                    per_shard[s].merge(shard_totals);
                }
                totals.merge(&report.totals);
                reads.clear();
            }
            let wait_s = drained_at
                .saturating_duration_since(admitted.submitted_at)
                .as_secs_f64();
            match admitted.op {
                IngestOp::Insert(graph) => {
                    self.insert_graph(graph);
                    inserts_applied += 1;
                }
                IngestOp::Remove(id) => {
                    if self.remove_graph(id) {
                        removes_applied += 1;
                    }
                }
                IngestOp::Query(_) => unreachable!("filtered above"),
            }
            records.push(ShardedQueryRecord {
                ticket: admitted.ticket,
                answers: Vec::new(),
                candidate_count: 0,
                candidates_pruned: 0,
                queue_wait_s: wait_s,
                cache_probe_s: 0.0,
                filter_s: 0.0,
                verify_s: 0.0,
                outcome: QueryOutcome::Complete,
                retries: 0,
                shards_probed: 0,
                shards_skipped: 0,
                latency_s: wait_s,
            });
        }
        if !reads.is_empty() {
            let report = self.serve_read_batch(&reads, deadline, drained_at);
            feed_cost_model(queue, &report.records);
            records.extend(report.records);
            for (s, shard_totals) in report.per_shard.iter().enumerate() {
                per_shard[s].merge(shard_totals);
            }
            totals.merge(&report.totals);
        }
        ShardedReport {
            records,
            per_shard,
            totals,
            wall_s: watch.elapsed_secs(),
            shards: shard_count,
            inserts_applied,
            removes_applied,
        }
    }

    /// Serves one run of consecutive drained reads as a sub-wave.
    ///
    /// Every executed record that actually reached a shard feeds the
    /// queue's measured cost model, so future [`AdmissionQueue::submit_or_shed`]
    /// decisions are earned from observed filter/verify cost rather than
    /// asserted by callers. Memo hits (zero shards probed) are excluded:
    /// they carry candidate counts from the run that populated the memo
    /// but near-zero serve cost, and would drag the estimate toward zero.
    fn serve_read_batch(
        &mut self,
        batch: &[AdmittedQuery],
        deadline: Option<Instant>,
        drained_at: Instant,
    ) -> ShardedReport {
        let queries: Vec<&Graph> = batch
            .iter()
            .map(|a| a.query().expect("read batch holds only queries"))
            .collect();
        let per_query: Vec<Option<Instant>> = batch.iter().map(|a| a.deadline).collect();
        let tickets: Vec<Ticket> = batch.iter().map(|a| a.ticket).collect();
        let admission_wait_s: Vec<f64> = batch
            .iter()
            .map(|a| {
                drained_at
                    .saturating_duration_since(a.submitted_at)
                    .as_secs_f64()
            })
            .collect();
        self.run_wave_inner(
            &queries,
            deadline,
            Some(&per_query),
            &tickets,
            Some(&admission_wait_s),
        )
    }

    fn run_wave_inner(
        &mut self,
        queries: &[&Graph],
        deadline: Option<Instant>,
        per_query: Option<&[Option<Instant>]>,
        tickets: &[Ticket],
        admission_wait_s: Option<&[f64]>,
    ) -> ShardedReport {
        let shard_count = self.shards.len();
        let watch = Stopwatch::start();
        // Routing stage: per shard, the ascending wave indices of the
        // queries it must serve. Fanout keeps the pre-routing zero-copy
        // path (every shard serves the wave slice as-is, no plan is
        // materialized); synopsis routing builds per-shard subsets,
        // skipping shards the summary proves empty of matches — soundly,
        // so the merge below stays bit-identical.
        let plan: Option<Vec<Vec<usize>>> = match self.routing {
            RoutingMode::Fanout => None,
            mode => Some(self.router.plan(queries, mode)),
        };
        // Answer-memo admission: probe the whole-answer memo before any
        // shard sees the wave. A hit is served straight from the memo and
        // excluded from every shard's plan, so a repeated hot query costs
        // one canonical-key probe instead of up to `shard_count` index
        // probes. A query whose deadline has already expired is *not*
        // probed — it must flow through the pools and time out exactly
        // like the uncached path.
        let memo = self.answers.as_ref();
        let mut memo_keys: Vec<Option<String>> = Vec::new();
        let mut memo_hits: Vec<Option<(Arc<AnswerEntry>, f64)>> = Vec::new();
        let mut any_hit = false;
        if let Some(memo) = memo {
            memo_keys.reserve(queries.len());
            memo_hits.reserve(queries.len());
            for (qi, query) in queries.iter().enumerate() {
                let now = Instant::now();
                let expired = deadline.is_some_and(|d| now >= d)
                    || per_query.and_then(|p| p[qi]).is_some_and(|d| now >= d);
                let key = if expired {
                    None
                } else {
                    answer_memo_key(query)
                };
                let probe = Stopwatch::start();
                let hit = key.as_deref().and_then(|k| memo.lookup(k));
                any_hit |= hit.is_some();
                memo_hits.push(hit.map(|entry| (entry, probe.elapsed_secs())));
                memo_keys.push(key);
            }
        }
        let plan: Option<Vec<Vec<usize>>> = if any_hit {
            // Memo hits must reach no shard: materialize the plan (fanout
            // becomes an explicit every-shard plan) and strip them. The
            // merge cursors below stay consistent because the hit indices
            // vanish from every shard's admitted list at once.
            let mut plan = plan.unwrap_or_else(|| vec![(0..queries.len()).collect(); shard_count]);
            for admitted in &mut plan {
                admitted.retain(|&qi| memo_hits[qi].is_none());
            }
            Some(plan)
        } else {
            plan
        };
        // Dispatch stage: from here the wave is event-driven. Probes ship
        // to the persistent shard executors and the merge below folds each
        // `(query, shard)` result the moment it lands — per-query
        // completion, so a slow or stalled shard only gates the queries it
        // actually serves, and retries are heap-scheduled alongside live
        // probes instead of running as barrier rounds on this thread.
        let admitted: Vec<Vec<usize>> =
            plan.unwrap_or_else(|| vec![(0..queries.len()).collect(); shard_count]);
        let deadline_for = |qi: usize| -> Option<Instant> {
            let own = per_query.and_then(|p| p[qi]);
            match (deadline, own) {
                (Some(wave), Some(own)) => Some(wave.min(own)),
                (Some(wave), None) => Some(wave),
                (None, own) => own,
            }
        };
        let mut probes_of = vec![0usize; queries.len()];
        for list in &admitted {
            for &qi in list {
                probes_of[qi] += 1;
            }
        }
        let wave_started = Instant::now();
        let mut state = WaveMerge {
            flights: tickets
                .iter()
                .enumerate()
                .map(|(qi, &ticket)| Flight {
                    record: ShardedQueryRecord {
                        ticket,
                        answers: Vec::new(),
                        candidate_count: 0,
                        candidates_pruned: 0,
                        queue_wait_s: 0.0,
                        cache_probe_s: 0.0,
                        filter_s: 0.0,
                        verify_s: 0.0,
                        latency_s: 0.0,
                        outcome: QueryOutcome::Complete,
                        retries: 0,
                        shards_probed: probes_of[qi],
                        shards_skipped: shard_count - probes_of[qi],
                    },
                    done: 0,
                    failed: 0,
                    timed_out: 0,
                    outstanding: 0,
                    pending_retries: 0,
                    shard_wait_s: 0.0,
                    deadline: deadline_for(qi),
                    finalized: false,
                })
                .collect(),
            per_shard: vec![StageTotals::default(); shard_count],
            totals: StageTotals::default(),
            rounds: HashMap::new(),
            retry_heap: BinaryHeap::new(),
            remaining: queries.len(),
            retry: self.retry,
            wave_started,
            memo,
            memo_keys,
            admission_wait_s,
        };
        // Memo hits never reach a shard: serve them straight from the
        // cached entries (already stripped from every admitted list).
        for (qi, hit) in memo_hits.iter().enumerate() {
            if let Some((entry, probe_s)) = hit {
                state.serve_from_memo(qi, entry, *probe_s);
            }
        }
        // One fresh reply channel per wave: when this wave abandons a
        // flight (deadline) or returns, late executor replies land on a
        // dead channel and vanish instead of corrupting a later wave.
        let (reply, events) = mpsc::channel::<WaveEvent>();
        // Executors are persistent threads, so they need owning handles to
        // the wave's queries: one clone per query for the whole wave.
        let owned: Vec<Arc<Graph>> = queries.iter().map(|&q| Arc::new(q.clone())).collect();
        for (s, list) in admitted.iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            let items: Vec<ProbeItem> = list
                .iter()
                .map(|&qi| ProbeItem {
                    slot: qi,
                    query: Arc::clone(&owned[qi]),
                    deadline: per_query.and_then(|p| p[qi]),
                    ticket: tickets[qi],
                })
                .collect();
            let count = items.len();
            self.shards[s].backlog.fetch_add(count, Ordering::Relaxed);
            let job = ShardJob {
                items,
                wave_deadline: deadline,
                reply: reply.clone(),
            };
            match self.shards[s].jobs.send(job) {
                Ok(()) => {
                    for &qi in list {
                        state.flights[qi].outstanding += 1;
                    }
                }
                // The executor died (pool infrastructure, not a query
                // panic): every probe of the job failed — retryable.
                Err(_) => {
                    self.shards[s].backlog.fetch_sub(count, Ordering::Relaxed);
                    let now = Instant::now();
                    for &qi in list {
                        state.fail_probe(qi, s, now);
                    }
                }
            }
        }
        // Queries with nothing in flight — admitted by no shard, or whose
        // every dispatch failed beyond retry — finalize immediately.
        let now = Instant::now();
        for qi in 0..state.flights.len() {
            state.maybe_finalize(qi, now);
        }
        // Merge loop: fold events as they arrive, fire due retries, abandon
        // flights whose deadline passed, and sleep only until whichever
        // comes first — the next event, retry due time or deadline.
        while state.remaining > 0 {
            // Drain everything already buffered before any deadline sweep:
            // a result that arrived in time is never abandoned.
            while let Ok(event) = events.try_recv() {
                state.handle(event);
            }
            if state.remaining == 0 {
                break;
            }
            let mut now = Instant::now();
            while let Some(&Reverse((due, qi, s))) = state.retry_heap.peek() {
                if due > now {
                    break;
                }
                state.retry_heap.pop();
                if state.flights[qi].finalized {
                    continue;
                }
                state.flights[qi].pending_retries -= 1;
                state.flights[qi].record.retries += 1;
                self.shards[s].backlog.fetch_add(1, Ordering::Relaxed);
                let job = ShardJob {
                    items: vec![ProbeItem {
                        slot: qi,
                        query: Arc::clone(&owned[qi]),
                        deadline: per_query.and_then(|p| p[qi]),
                        ticket: tickets[qi],
                    }],
                    wave_deadline: deadline,
                    reply: reply.clone(),
                };
                match self.shards[s].jobs.send(job) {
                    Ok(()) => state.flights[qi].outstanding += 1,
                    Err(_) => {
                        self.shards[s].backlog.fetch_sub(1, Ordering::Relaxed);
                        state.fail_probe(qi, s, now);
                        state.maybe_finalize(qi, now);
                    }
                }
                now = Instant::now();
            }
            for qi in 0..state.flights.len() {
                let flight = &state.flights[qi];
                if !flight.finalized && flight.deadline.is_some_and(|d| now > d) {
                    // Deadline abandonment: the flight finalizes from what
                    // its shards delivered so far (degraded, sound) instead
                    // of waiting out a stalled shard.
                    state.finalize(qi, now);
                }
            }
            if state.remaining == 0 {
                break;
            }
            let next_retry = state.retry_heap.peek().map(|&Reverse((due, _, _))| due);
            let next_deadline = state
                .flights
                .iter()
                .filter(|f| !f.finalized)
                .filter_map(|f| f.deadline)
                .min();
            let wake = match (next_retry, next_deadline) {
                (Some(r), Some(d)) => Some(r.min(d)),
                (Some(r), None) => Some(r),
                (None, d) => d,
            };
            match wake {
                None => match events.recv() {
                    Ok(event) => state.handle(event),
                    // Unreachable while this frame holds `reply`; bail
                    // defensively rather than spin on a dead channel.
                    Err(_) => {
                        state.finalize_all();
                        break;
                    }
                },
                Some(at) => {
                    let timeout = at.saturating_duration_since(Instant::now());
                    match events.recv_timeout(timeout) {
                        Ok(event) => state.handle(event),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            state.finalize_all();
                            break;
                        }
                    }
                }
            }
        }
        let WaveMerge {
            flights,
            per_shard,
            totals,
            ..
        } = state;
        ShardedReport {
            records: flights.into_iter().map(|f| f.record).collect(),
            per_shard,
            totals,
            wall_s: watch.elapsed_secs(),
            shards: shard_count,
            inserts_applied: 0,
            removes_applied: 0,
        }
    }
}

/// One query's in-flight state while its wave is being merged.
struct Flight {
    /// The record under construction — returned as-is once finalized.
    record: ShardedQueryRecord,
    /// Probed shards that delivered a result.
    done: usize,
    /// Probed shards that failed beyond the retry budget.
    failed: usize,
    /// Probed shards whose probe timed out (never retried).
    timed_out: usize,
    /// Probes currently executing (or queued) on shard executors.
    outstanding: usize,
    /// Probes waiting on the retry heap for their backoff to elapse.
    pending_retries: usize,
    /// Longest shard-local queue wait seen so far.
    shard_wait_s: f64,
    /// The query's effective deadline: min(wave-wide, its own).
    deadline: Option<Instant>,
    finalized: bool,
}

/// The per-wave merge state: one [`Flight`] per query plus the retry
/// schedule and the running totals. Owned by the wave thread; shard
/// executors only ever talk to it through [`WaveEvent`]s.
struct WaveMerge<'w> {
    flights: Vec<Flight>,
    per_shard: Vec<StageTotals>,
    totals: StageTotals,
    /// Retry rounds spent per `(query, shard)` pair.
    rounds: HashMap<(usize, usize), u32>,
    /// Min-heap of `(due, query, shard)` retries awaiting their backoff.
    retry_heap: BinaryHeap<Reverse<(Instant, usize, usize)>>,
    /// Flights not yet finalized — the merge loop's exit condition.
    remaining: usize,
    retry: RetryPolicy,
    wave_started: Instant,
    memo: Option<&'w AnswerMemo>,
    memo_keys: Vec<Option<String>>,
    admission_wait_s: Option<&'w [f64]>,
}

impl WaveMerge<'_> {
    /// Serves query `qi` from a whole-answer memo hit: the record is
    /// synthesized from the cached entry (answers are already sorted
    /// global ids; candidate accounting carries over from the run that
    /// populated the memo) and the flight finalizes on the spot.
    fn serve_from_memo(&mut self, qi: usize, entry: &AnswerEntry, probe_s: f64) {
        let shard_count = self.per_shard.len();
        let admission_wait = self.admission_wait_s.map_or(0.0, |w| w[qi]);
        let flight = &mut self.flights[qi];
        let record = &mut flight.record;
        record.answers = entry.answers.clone();
        record.candidate_count = entry.candidate_count;
        record.candidates_pruned = entry.candidates_pruned;
        record.queue_wait_s = admission_wait;
        record.cache_probe_s = probe_s;
        record.outcome = QueryOutcome::Complete;
        record.shards_probed = 0;
        record.shards_skipped = shard_count;
        record.latency_s = admission_wait + probe_s;
        flight.finalized = true;
        self.remaining -= 1;
        self.totals
            .add_query(admission_wait, probe_s, 0.0, 0.0, entry.candidates_pruned);
        self.totals.observe_latency(record.latency_s);
    }

    /// Folds one `(query, shard)` completion into its flight. Events for
    /// an already-finalized flight are late replies from an abandoned
    /// probe and are dropped.
    fn handle(&mut self, event: WaveEvent) {
        let WaveEvent {
            shard,
            slot,
            outcome,
            record,
        } = event;
        if self.flights[slot].finalized {
            return;
        }
        self.flights[slot].outstanding -= 1;
        match record {
            Some(record) => {
                self.per_shard[shard].add_query(
                    record.queue_wait_s,
                    record.cache_probe_s,
                    record.filter_s,
                    record.verify_s,
                    record.candidates_pruned,
                );
                let flight = &mut self.flights[slot];
                let merged = &mut flight.record;
                // The executor mapped answers to global ids already.
                merged.answers.extend(record.answers.iter().copied());
                merged.candidate_count += record.candidate_count;
                merged.candidates_pruned += record.candidates_pruned;
                flight.shard_wait_s = flight.shard_wait_s.max(record.queue_wait_s);
                merged.cache_probe_s += record.cache_probe_s;
                merged.filter_s += record.filter_s;
                merged.verify_s += record.verify_s;
                flight.done += 1;
            }
            None => match outcome {
                // Timed-out probes are never retried: their deadline
                // budget is spent by definition.
                QueryOutcome::TimedOut => self.flights[slot].timed_out += 1,
                _ => self.fail_probe(slot, shard, Instant::now()),
            },
        }
        self.maybe_finalize(slot, Instant::now());
    }

    /// Registers a failed `(query, shard)` probe: schedules a retry with
    /// exponential backoff while the per-pair budget and the query's
    /// deadline allow, else counts the probe as failed for good.
    fn fail_probe(&mut self, qi: usize, shard: usize, now: Instant) {
        let flight = &mut self.flights[qi];
        let round = self.rounds.entry((qi, shard)).or_insert(0);
        if *round < self.retry.max_retries {
            if let Some(due) = self.retry.retry_at(*round, now, flight.deadline) {
                *round += 1;
                flight.pending_retries += 1;
                self.retry_heap.push(Reverse((due, qi, shard)));
                return;
            }
        }
        flight.failed += 1;
    }

    /// Finalizes `qi` iff nothing of it is in flight or awaiting retry.
    fn maybe_finalize(&mut self, qi: usize, now: Instant) {
        let flight = &self.flights[qi];
        if !flight.finalized && flight.outstanding == 0 && flight.pending_retries == 0 {
            self.finalize(qi, now);
        }
    }

    /// Settles query `qi`'s outcome from whatever its shards delivered by
    /// `now` and closes the flight. Probes still outstanding or awaiting
    /// retry count as missing — this is the deadline-abandonment path.
    fn finalize(&mut self, qi: usize, now: Instant) {
        let admission_wait = self.admission_wait_s.map_or(0.0, |w| w[qi]);
        let flight = &mut self.flights[qi];
        flight.finalized = true;
        self.remaining -= 1;
        let record = &mut flight.record;
        // Total queue wait = time pending in the admission queue (open
        // waves only) + the in-wave wait for the slowest shard.
        record.queue_wait_s = admission_wait + flight.shard_wait_s;
        record.latency_s = admission_wait
            + now
                .saturating_duration_since(self.wave_started)
                .as_secs_f64();
        let missing =
            flight.failed + flight.timed_out + flight.outstanding + flight.pending_retries;
        record.outcome = if record.shards_probed == 0 {
            // Deadline parity with fan-out for zero-probe queries: a
            // fanned-out wave would have had every shard skip a
            // past-deadline query, so a routed query that no shard admits
            // must not dodge its deadline just because its (empty) answer
            // was free — same `now > deadline` predicate the workers
            // apply at claim time.
            if flight.deadline.is_some_and(|d| now > d) {
                QueryOutcome::TimedOut
            } else {
                QueryOutcome::Complete
            }
        } else if missing == 0 {
            QueryOutcome::Complete
        } else if flight.done > 0 {
            // Graceful degradation: some probed shards delivered within
            // the budget, others did not. The partial union is sound
            // (verification is exact on every shard), so report it flagged
            // rather than blocking on — or discarding — the whole query.
            QueryOutcome::Degraded {
                shards_missing: missing,
            }
        } else if flight.failed > 0 {
            QueryOutcome::Failed
        } else {
            QueryOutcome::TimedOut
        };
        if record.outcome.is_executed() {
            // Shards partition the id space, so the concatenation is
            // duplicate-free; sorting restores global id order.
            record.answers.sort_unstable();
            // Only exact (Complete) merged answers are memoizable: a
            // Degraded union is sound but incomplete, and serving it from
            // the memo later would silently repeat the loss.
            if record.outcome == QueryOutcome::Complete {
                if let (Some(memo), Some(Some(key))) = (self.memo, self.memo_keys.get(qi)) {
                    memo.insert(
                        key.clone(),
                        AnswerEntry {
                            answers: record.answers.clone(),
                            candidate_count: record.candidate_count,
                            candidates_pruned: record.candidates_pruned,
                        },
                    );
                }
            }
            self.totals.add_query(
                record.queue_wait_s,
                record.cache_probe_s,
                record.filter_s,
                record.verify_s,
                record.candidates_pruned,
            );
            self.totals.observe_latency(record.latency_s);
        } else {
            // No shard delivered: report an explicit non-answer, not a
            // silently empty answer set.
            record.answers.clear();
            record.candidate_count = 0;
            record.candidates_pruned = 0;
        }
    }

    /// Defensive last resort for a dead event channel: settle every open
    /// flight from what has arrived so far.
    fn finalize_all(&mut self) {
        let now = Instant::now();
        for qi in 0..self.flights.len() {
            if !self.flights[qi].finalized {
                self.finalize(qi, now);
            }
        }
    }
}

/// Feeds one drained sub-wave's executed records into the admission
/// queue's measured cost model (see [`ShardedService::serve_read_batch`]).
fn feed_cost_model(queue: &AdmissionQueue, records: &[ShardedQueryRecord]) {
    for record in records {
        if record.outcome.is_executed() && record.shards_probed > 0 {
            queue
                .cost_model()
                .observe(record.candidate_count, record.filter_s, record.verify_s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
    use std::time::Duration;

    fn setup(graphs: usize, queries: usize) -> (Dataset, Vec<Graph>) {
        let ds = GraphGen::new(
            GraphGenConfig::default()
                .with_graph_count(graphs)
                .with_avg_nodes(12)
                .with_avg_density(0.15)
                .with_label_count(4)
                .with_seed(23),
        )
        .generate();
        let workload = QueryGen::new(9).generate(&ds, queries, 4);
        let qs = workload.iter().map(|(q, _)| q.clone()).collect();
        (ds, qs)
    }

    #[test]
    fn round_robin_partition_covers_every_graph_once() {
        let (ds, _) = setup(13, 1);
        for shards in [1, 2, 4, 7] {
            let parts = partition_dataset(&ds, shards, ShardStrategy::RoundRobin);
            assert_eq!(parts.len(), shards);
            let mut seen: Vec<GraphId> = parts.iter().flat_map(|p| p.to_global.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..ds.len()).collect::<Vec<_>>());
            for part in &parts {
                assert_eq!(part.dataset.len(), part.to_global.len());
                // Local id order tracks global id order.
                assert!(part.to_global.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn size_balanced_partition_covers_every_graph_once_and_balances() {
        let (ds, _) = setup(12, 1);
        let parts = partition_dataset(&ds, 3, ShardStrategy::SizeBalanced);
        let mut seen: Vec<GraphId> = parts.iter().flat_map(|p| p.to_global.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..ds.len()).collect::<Vec<_>>());
        for part in &parts {
            assert!(part.to_global.windows(2).all(|w| w[0] < w[1]));
        }
        // LPT keeps the heaviest shard within 2x of the lightest on any
        // non-degenerate dataset (loose bound; the partition is greedy).
        let weights: Vec<usize> = parts
            .iter()
            .map(|p| {
                p.dataset
                    .iter()
                    .map(|(_, g)| g.vertex_count() + g.edge_count())
                    .sum()
            })
            .collect();
        let max = *weights.iter().max().unwrap();
        let min = *weights.iter().min().unwrap();
        assert!(max <= min.max(1) * 2, "badly unbalanced: {weights:?}");
    }

    #[test]
    fn partition_shares_graph_storage_with_the_source() {
        let (ds, _) = setup(14, 1);
        for strategy in ShardStrategy::ALL {
            let parts = partition_dataset(&ds, 3, strategy);
            for part in &parts {
                for (local, global) in part.to_global.iter().enumerate() {
                    assert!(
                        std::sync::Arc::ptr_eq(
                            part.dataset.shared_unchecked(local),
                            ds.shared_unchecked(*global)
                        ),
                        "{}: shard graph {local} is not the source allocation",
                        strategy.name()
                    );
                }
                // Each part uniquely owns only its pointer spine.
                assert_eq!(
                    part.dataset.owned_memory_bytes() + part.dataset.shared_memory_bytes(),
                    part.dataset.memory_bytes()
                );
                if !part.dataset.is_empty() {
                    assert!(part.dataset.shared_memory_bytes() > 0);
                }
            }
            let overhead: usize = parts.iter().map(|p| p.dataset.owned_memory_bytes()).sum();
            assert!(
                overhead < ds.memory_bytes() / 10,
                "{}: partition overhead {overhead} not pointer-sized vs {}",
                strategy.name(),
                ds.memory_bytes()
            );
        }
    }

    #[test]
    fn label_aware_partition_covers_every_graph_once_and_stays_balanced() {
        let (ds, _) = setup(16, 1);
        let parts = partition_dataset(&ds, 4, ShardStrategy::LabelAware);
        let mut seen: Vec<GraphId> = parts.iter().flat_map(|p| p.to_global.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..ds.len()).collect::<Vec<_>>());
        for part in &parts {
            assert!(part.to_global.windows(2).all(|w| w[0] < w[1]));
        }
        // The balance cap keeps any shard at roughly total/shards weight
        // even when label affinity pulls everything together (the uniform
        // generated dataset shares one label alphabet).
        let weights: Vec<usize> = parts
            .iter()
            .map(|p| {
                p.dataset
                    .iter()
                    .map(|(_, g)| g.vertex_count() + g.edge_count())
                    .sum()
            })
            .collect();
        let total: usize = weights.iter().sum();
        let cap = total.div_ceil(4);
        for (shard, &w) in weights.iter().enumerate() {
            assert!(
                w <= cap + total / ds.len().max(1),
                "shard {shard} weight {w} blew past the cap {cap} ({weights:?})"
            );
        }
    }

    #[test]
    fn label_aware_clusters_interleaved_families_and_routes_past_round_robin() {
        // Four label-disjoint families interleaved i % 4, served on 3
        // shards: round-robin smears every family across all shards (4 and
        // 3 are coprime), so routing cannot skip anything; label-aware
        // placement re-clusters the families, so each query's labels live
        // on a strict shard subset.
        let ds = sqbench_generator::label_clustered(
            &GraphGenConfig::default()
                .with_graph_count(24)
                .with_avg_nodes(10)
                .with_avg_density(0.16)
                .with_label_count(3)
                .with_seed(91),
            4,
        );
        let queries: Vec<Graph> = QueryGen::new(17)
            .generate(&ds, 8, 4)
            .iter()
            .map(|(q, _)| q.clone())
            .collect();
        let refs: Vec<&Graph> = queries.iter().collect();
        let config = MethodConfig::fast();
        let build = |strategy| {
            ShardedService::new(
                MethodKind::Ggsx,
                &config,
                &ds,
                ServiceOptions::new()
                    .shards(3)
                    .strategy(strategy)
                    .routing(RoutingMode::Synopsis),
            )
        };
        let mut round_robin = build(ShardStrategy::RoundRobin);
        let mut label_aware = build(ShardStrategy::LabelAware);
        let rr_report = round_robin.run_wave(&refs, None);
        let la_report = label_aware.run_wave(&refs, None);
        // Placement must be invisible in the answers...
        let oracle = build_index(MethodKind::Ggsx, &config, &ds);
        for ((rr, la), query) in rr_report
            .records
            .iter()
            .zip(la_report.records.iter())
            .zip(queries.iter())
        {
            let expected = oracle.query(&ds, query).answers;
            assert_eq!(rr.answers, expected);
            assert_eq!(la.answers, expected);
        }
        // ...and label-aware placement must make routing strictly cheaper
        // than round-robin on this interleaved ingest.
        assert!(
            la_report.shards_probed() < rr_report.shards_probed(),
            "label-aware probed {} vs round-robin {} — placement bought nothing",
            la_report.shards_probed(),
            rr_report.shards_probed()
        );
    }

    #[test]
    fn more_shards_than_graphs_leaves_empty_shards() {
        let (ds, _) = setup(3, 1);
        let parts = partition_dataset(&ds, 5, ShardStrategy::RoundRobin);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().filter(|p| p.dataset.is_empty()).count(), 2);
    }

    #[test]
    fn sharded_wave_matches_unsharded_answers() {
        let (ds, queries) = setup(17, 6);
        let refs: Vec<&Graph> = queries.iter().collect();
        let config = MethodConfig::fast();
        for strategy in [ShardStrategy::RoundRobin, ShardStrategy::SizeBalanced] {
            let mut service = ShardedService::new(
                MethodKind::Ggsx,
                &config,
                &ds,
                ServiceOptions::new().shards(4).strategy(strategy),
            );
            assert_eq!(service.shard_count(), 4);
            let report = service.run_wave(&refs, None);
            assert_eq!(report.executed(), queries.len());
            assert_eq!(report.expired(), 0);
            let oracle = build_index(MethodKind::Ggsx, &config, &ds);
            for (record, query) in report.records.iter().zip(queries.iter()) {
                let outcome = oracle.query(&ds, query);
                assert_eq!(record.answers, outcome.answers, "{}", strategy.name());
            }
        }
    }

    #[test]
    fn drain_serves_admitted_queries_and_honours_expired_deadlines() {
        let (ds, queries) = setup(10, 4);
        let mut service = ShardedService::new(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            ServiceOptions::new().shards(2),
        );
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(8));
        let past = Instant::now() - Duration::from_secs(1);
        let live = queue.submit(queries[0].clone(), None).unwrap();
        let dead = queue.submit(queries[1].clone(), Some(past)).unwrap();
        let report = service.drain(&queue, None);
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.records[0].ticket, live);
        assert!(!report.records[0].expired());
        assert_eq!(report.records[0].outcome, QueryOutcome::Complete);
        assert_eq!(report.records[1].ticket, dead);
        assert!(report.records[1].expired());
        assert_eq!(report.records[1].outcome, QueryOutcome::TimedOut);
        assert!(report.records[1].answers.is_empty());
        assert_eq!(report.executed(), 1);
        assert_eq!(report.expired(), 1);
        assert!(queue.is_empty());
    }

    #[test]
    fn drain_accounts_time_pending_in_the_admission_queue() {
        let (ds, queries) = setup(8, 1);
        let mut service = ShardedService::new(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            ServiceOptions::new().shards(2),
        );
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(4));
        queue.submit(queries[0].clone(), None).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        let report = service.drain(&queue, None);
        let record = &report.records[0];
        assert!(
            record.queue_wait_s >= 0.04,
            "queue wait {} must include the ~40 ms spent pending in the \
             admission queue before the wave started",
            record.queue_wait_s
        );
        assert!((report.totals.queue_wait_s - record.queue_wait_s).abs() < 1e-12);
    }

    #[test]
    fn empty_drain_and_empty_shards_do_not_hang() {
        let (ds, queries) = setup(2, 2); // fewer graphs than shards
        let mut service = ShardedService::new(
            MethodKind::GCode,
            &MethodConfig::fast(),
            &ds,
            ServiceOptions::new().shards(4),
        );
        assert_eq!(service.shard_sizes().iter().filter(|&&n| n == 0).count(), 2);
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(4));
        let report = service.drain(&queue, None);
        assert!(report.records.is_empty());
        assert_eq!(report.false_positive_ratio(), 0.0);
        assert_eq!(report.throughput_qps(), 0.0);
        // A real wave over the partly-empty shards still completes.
        let refs: Vec<&Graph> = queries.iter().collect();
        let wave = service.run_wave(&refs, None);
        assert_eq!(wave.executed(), 2);
        let oracle = build_index(MethodKind::GCode, &MethodConfig::fast(), &ds);
        for (record, query) in wave.records.iter().zip(queries.iter()) {
            assert_eq!(record.answers, oracle.query(&ds, query).answers);
        }
    }

    #[test]
    fn routed_wave_matches_fanout_and_skips_label_disjoint_shards() {
        // Four label-disjoint families interleaved i % 4: with 4 shards,
        // round-robin sends each family to its own shard, so a routed
        // query probes exactly the shards of its family.
        let ds = sqbench_generator::label_clustered(
            &GraphGenConfig::default()
                .with_graph_count(16)
                .with_avg_nodes(10)
                .with_avg_density(0.16)
                .with_label_count(3)
                .with_seed(77),
            4,
        );
        let queries: Vec<Graph> = QueryGen::new(13)
            .generate(&ds, 6, 4)
            .iter()
            .map(|(q, _)| q.clone())
            .collect();
        let refs: Vec<&Graph> = queries.iter().collect();
        let config = MethodConfig::fast();
        let mut fanout = ShardedService::new(
            MethodKind::Ggsx,
            &config,
            &ds,
            ServiceOptions::new().shards(4),
        );
        let mut routed = ShardedService::new(
            MethodKind::Ggsx,
            &config,
            &ds,
            ServiceOptions::new()
                .shards(4)
                .routing(RoutingMode::Synopsis),
        );
        assert_eq!(fanout.routing(), RoutingMode::Fanout);
        assert_eq!(routed.routing(), RoutingMode::Synopsis);
        let fanout_report = fanout.run_wave(&refs, None);
        let routed_report = routed.run_wave(&refs, None);
        for (f, r) in fanout_report
            .records
            .iter()
            .zip(routed_report.records.iter())
        {
            assert_eq!(f.answers, r.answers, "routing changed a match set");
            assert_eq!(f.shards_probed, 4);
            assert_eq!(f.shards_skipped, 0);
            assert_eq!(r.shards_probed + r.shards_skipped, 4);
            // Label-disjoint families: each query's labels live on exactly
            // one shard, so routing must skip the other three.
            assert_eq!(r.shards_probed, 1, "query leaked outside its family");
        }
        assert_eq!(fanout_report.shards_probed(), 4 * queries.len() as u64);
        assert_eq!(fanout_report.shards_skipped(), 0);
        assert_eq!(routed_report.shards_probed(), queries.len() as u64);
        assert_eq!(routed_report.shards_skipped(), 3 * queries.len() as u64);
        assert!(routed.router().memory_bytes() > 0);
    }

    #[test]
    fn query_admitted_by_no_shard_executes_with_empty_answers() {
        let (ds, _) = setup(9, 1);
        let mut service = ShardedService::new(
            MethodKind::Scan,
            &MethodConfig::fast(),
            &ds,
            ServiceOptions::new()
                .shards(3)
                .routing(RoutingMode::Synopsis),
        );
        // A query over a label far outside the generated alphabet: every
        // shard synopsis rejects it, no index is probed, and the (correct)
        // empty answer comes back as an executed record.
        let mut impossible = Graph::new("impossible");
        let a = impossible.add_vertex(9_999);
        let b = impossible.add_vertex(9_999);
        impossible.add_edge(a, b).unwrap();
        let report = service.run_wave(&[&impossible], None);
        assert_eq!(report.executed(), 1);
        let record = &report.records[0];
        assert!(!record.expired());
        assert!(record.answers.is_empty());
        assert_eq!(record.shards_probed, 0);
        assert_eq!(record.shards_skipped, 3);
        assert_eq!(record.candidate_count, 0);
        assert_eq!(report.shards_probed(), 0);

        // Deadline parity with fan-out: had the wave fanned out, every
        // shard would have skipped this past-deadline query (expired), so
        // the zero-probe path must report expired too — not sneak the
        // free empty answer past the deadline.
        let past = Instant::now() - Duration::from_secs(1);
        let late = service.run_wave(&[&impossible], Some(past));
        assert_eq!(late.expired(), 1);
        assert!(late.records[0].expired());
        assert_eq!(late.executed(), 0);
    }

    #[test]
    fn routed_drain_honours_deadlines_and_accounts_probes() {
        let (ds, queries) = setup(12, 4);
        let mut service = ShardedService::new(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            ServiceOptions::new()
                .shards(2)
                .routing(RoutingMode::Synopsis),
        );
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(8));
        let past = Instant::now() - Duration::from_secs(1);
        queue.submit(queries[0].clone(), None).unwrap();
        queue.submit(queries[1].clone(), Some(past)).unwrap();
        let report = service.drain(&queue, None);
        assert_eq!(report.records.len(), 2);
        assert!(!report.records[0].expired());
        assert!(report.records[0].shards_probed <= 2);
        assert!(report.records[1].expired());
        assert!(report.records[1].answers.is_empty());
        // Expired queries are excluded from the probe totals.
        assert_eq!(
            report.shards_probed() + report.shards_skipped(),
            2 // one executed query × two shards accounted either way
        );
    }

    /// Tentpole: a transient verify panic is retried with backoff and the
    /// query comes back `Complete`, bit-identical to the oracle — the
    /// fault is invisible except in the retry counter.
    #[test]
    fn transient_panic_is_retried_to_completion() {
        super::super::fault::silence_injected_panics();
        let (ds, queries) = setup(14, 5);
        let refs: Vec<&Graph> = queries.iter().collect();
        let plan = Arc::new(FaultPlan::new().panic_in_verify(1, 1).panic_in_verify(3, 1));
        let mut service = ShardedService::new(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            ServiceOptions::new().shards(2).faults(Arc::clone(&plan)),
        );
        let report = service.run_wave(&refs, None);
        assert_eq!(plan.injected_panics(), 2);
        assert_eq!(report.complete(), queries.len());
        assert_eq!(report.failed(), 0);
        assert!(report.retries() >= 2, "retries: {}", report.retries());
        let oracle = build_index(MethodKind::Ggsx, &MethodConfig::fast(), &ds);
        for (record, query) in report.records.iter().zip(queries.iter()) {
            assert_eq!(record.answers, oracle.query(&ds, query).answers);
        }
        // The poisoned tickets carry their retry count; untouched ones 0.
        assert!(report.records[1].retries >= 1);
        assert_eq!(report.records[0].retries, 0);
    }

    /// Tentpole: a panic that outlives the retry budget fails *only* its
    /// own query — the rest of the wave completes exactly, and the fleet
    /// keeps serving the next wave.
    #[test]
    fn permanent_panic_fails_one_query_and_spares_the_wave() {
        super::super::fault::silence_injected_panics();
        let (ds, queries) = setup(14, 5);
        let refs: Vec<&Graph> = queries.iter().collect();
        // Budget 6 = 2 shards × (1 initial + 2 retry rounds): the panic
        // outlives every retry of the first wave, then the fault clears.
        let plan = Arc::new(FaultPlan::new().panic_in_verify(2, 6));
        let mut service = ShardedService::new(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            ServiceOptions::new().shards(2).faults(Arc::clone(&plan)),
        );
        let report = service.run_wave(&refs, None);
        assert_eq!(plan.injected_panics(), 6);
        assert_eq!(report.records[2].outcome, QueryOutcome::Failed);
        assert!(report.records[2].answers.is_empty());
        assert_eq!(report.failed(), 1);
        assert_eq!(report.complete(), queries.len() - 1);
        let oracle = build_index(MethodKind::Ggsx, &MethodConfig::fast(), &ds);
        for (qi, (record, query)) in report.records.iter().zip(queries.iter()).enumerate() {
            if qi != 2 {
                assert_eq!(record.answers, oracle.query(&ds, query).answers);
            }
        }
        // The pool survives: the next (fault-exhausted) wave is clean.
        let next = service.run_wave(&refs, None);
        assert_eq!(next.complete(), queries.len());
        assert_eq!(next.failed(), 0);
    }

    /// Tentpole: a stalled shard exhausts the deadline budget and the
    /// merge returns the *partial union* of the healthy shards flagged
    /// `Degraded` — sound (a subset of the oracle answers), not blocking,
    /// not silently incomplete.
    #[test]
    fn stalled_shard_degrades_to_a_sound_partial_answer() {
        let (ds, queries) = setup(16, 4);
        let plan = Arc::new(FaultPlan::new().stall_shard(0, Duration::from_millis(300)));
        let mut service = ShardedService::new(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            ServiceOptions::new().shards(2).faults(plan),
        );
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(8));
        let deadline = Instant::now() + Duration::from_millis(60);
        for query in &queries {
            queue.submit(query.clone(), Some(deadline)).unwrap();
        }
        let report = service.drain(&queue, None);
        // Shard 0 wakes up long past every deadline, shard 1 answers in
        // microseconds: every query must degrade to shard 1's half.
        assert_eq!(report.degraded(), queries.len());
        let oracle = build_index(MethodKind::Ggsx, &MethodConfig::fast(), &ds);
        for (record, query) in report.records.iter().zip(queries.iter()) {
            assert_eq!(record.outcome, QueryOutcome::Degraded { shards_missing: 1 });
            let expected = oracle.query(&ds, query).answers;
            assert!(
                record.answers.iter().all(|id| expected.contains(id)),
                "degraded answers must be a subset of the oracle's"
            );
        }
    }

    /// `RetryPolicy::none()` surfaces the failure immediately — no retry
    /// rounds, no hidden sleeps. Budget 2 = both shards' initial probe, so
    /// every probe of query 0 fails and no partial answer survives (a
    /// single-shard panic would instead degrade to the other shard's
    /// sound partial union).
    #[test]
    fn disabled_retry_fails_fast() {
        super::super::fault::silence_injected_panics();
        let (ds, queries) = setup(12, 3);
        let refs: Vec<&Graph> = queries.iter().collect();
        let plan = Arc::new(FaultPlan::new().panic_in_verify(0, 2));
        let mut service = ShardedService::new(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            ServiceOptions::new()
                .shards(2)
                .retry(RetryPolicy::none())
                .faults(plan),
        );
        let report = service.run_wave(&refs, None);
        assert_eq!(report.records[0].outcome, QueryOutcome::Failed);
        assert_eq!(report.records[0].retries, 0);
        assert_eq!(report.retries(), 0);
    }

    /// Headline regression: the backoff schedule saturates on adversarial
    /// but legal policies instead of panicking. The old wave thread
    /// computed `backoff * 2u32.saturating_pow(round)` with `Duration *
    /// u32` (panics on overflow) and added the result to an `Instant`
    /// unchecked.
    #[test]
    fn adversarial_retry_policies_saturate_instead_of_panicking() {
        let policy = RetryPolicy {
            max_retries: 40,
            backoff: Duration::from_secs(1),
        };
        assert_eq!(policy.backoff_for(0), Duration::from_secs(1));
        assert_eq!(policy.backoff_for(31), Duration::from_secs(1 << 31));
        // The doubling factor saturates at u32::MAX past round 31.
        assert_eq!(policy.backoff_for(39), Duration::from_secs(u32::MAX as u64));
        let huge = RetryPolicy {
            max_retries: u32::MAX,
            backoff: Duration::MAX,
        };
        // The multiplication saturates at Duration::MAX.
        assert_eq!(huge.backoff_for(0), Duration::MAX);
        assert_eq!(huge.backoff_for(u32::MAX), Duration::MAX);
        let now = Instant::now();
        // A backoff that exceeds the remaining deadline budget is refused.
        let deadline = Some(now + Duration::from_secs(5));
        assert_eq!(policy.retry_at(39, now, deadline), None);
        assert_eq!(
            policy.retry_at(0, now, deadline),
            Some(now + Duration::from_secs(1))
        );
        // Without a deadline, a backoff too large for the monotonic clock
        // is refused instead of overflowing the `Instant` addition.
        assert_eq!(huge.retry_at(0, now, None), None);
        assert_eq!(
            policy.retry_at(0, now, None),
            Some(now + Duration::from_secs(1))
        );
    }

    /// Headline regression, end to end: `backoff: 1s, max_retries: 40` —
    /// the ISSUE repro — against a permanently panicking query finishes
    /// promptly. Every retry whose backoff cannot fit the deadline budget
    /// is refused up front, so the wave neither panics nor sleeps through
    /// 40 doubling rounds.
    #[test]
    fn overflow_prone_retry_policy_completes_without_panic() {
        super::super::fault::silence_injected_panics();
        let (ds, queries) = setup(12, 3);
        let refs: Vec<&Graph> = queries.iter().collect();
        let plan = Arc::new(FaultPlan::new().panic_in_verify(0, 1000));
        let mut service = ShardedService::new(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            ServiceOptions::new()
                .shards(2)
                .retry(RetryPolicy {
                    max_retries: 40,
                    backoff: Duration::from_secs(1),
                })
                .faults(Arc::clone(&plan)),
        );
        let started = Instant::now();
        let report = service.run_wave(&refs, Some(started + Duration::from_millis(250)));
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "wave must not sleep through doubling backoff rounds"
        );
        // The 1s first-round backoff never fits the 250ms budget: the
        // poisoned query fails without a single retry, the rest complete.
        assert_eq!(report.records[0].outcome, QueryOutcome::Failed);
        assert_eq!(report.records[0].retries, 0);
        assert_eq!(report.complete(), queries.len() - 1);
    }

    /// Dynamic worker scaling: a deep wave grows the executors' pools
    /// from the observed backlog up to — and never past — `workers_max`;
    /// the default (cap at the floor) keeps the pools at their fixed size.
    #[test]
    fn worker_pools_scale_with_backlog_and_respect_bounds() {
        let (ds, queries) = setup(16, 24);
        let refs: Vec<&Graph> = queries.iter().collect();
        let mut fixed = ShardedService::new(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            ServiceOptions::new().shards(2).workers(2),
        );
        let report = fixed.run_wave(&refs, None);
        assert_eq!(report.complete(), queries.len());
        assert_eq!(fixed.worker_high_water(), vec![2, 2]);

        let mut scaled = ShardedService::new(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            ServiceOptions::new().shards(2).workers(1).workers_max(4),
        );
        let report = scaled.run_wave(&refs, None);
        assert_eq!(report.complete(), queries.len());
        // 24 fanned-out queries per shard at QUERIES_PER_WORKER=4 target 6
        // workers; the cap clamps the pools to 4.
        assert_eq!(scaled.worker_high_water(), vec![4, 4]);
        let oracle = build_index(MethodKind::Ggsx, &MethodConfig::fast(), &ds);
        for (record, query) in report.records.iter().zip(queries.iter()) {
            assert_eq!(record.answers, oracle.query(&ds, query).answers);
        }
    }

    /// Every wave record carries an end-to-end latency at least as large
    /// as its admission wait, and the wave totals expose percentiles.
    #[test]
    fn wave_records_carry_latency_and_percentiles() {
        let (ds, queries) = setup(12, 6);
        let refs: Vec<&Graph> = queries.iter().collect();
        let mut service = ShardedService::new(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            ServiceOptions::new().shards(2),
        );
        let report = service.run_wave(&refs, None);
        assert_eq!(report.complete(), queries.len());
        for record in &report.records {
            assert!(record.latency_s >= 0.0);
            assert!(
                record.latency_s * 1.001 + 1e-9 >= record.queue_wait_s,
                "latency {} must cover the queue wait {}",
                record.latency_s,
                record.queue_wait_s
            );
        }
        let p50 = report.totals.latency_percentile(0.50);
        let p99 = report.totals.latency_percentile(0.99);
        assert!(p50 > 0.0, "p50 over a served wave must be positive");
        assert!(
            p99 >= p50,
            "percentiles must be monotone: p50 {p50} p99 {p99}"
        );
    }

    #[test]
    fn stats_aggregate_over_shards() {
        let (ds, _) = setup(12, 1);
        let service = ShardedService::new(
            MethodKind::Ggsx,
            &MethodConfig::fast(),
            &ds,
            ServiceOptions::new().shards(3).workers(2),
        );
        let stats = service.stats();
        assert!(stats.size_bytes > 0);
        assert!(stats.distinct_features > 0);
        assert_eq!(service.shard_sizes().iter().sum::<usize>(), ds.len());
        assert_eq!(service.strategy(), ShardStrategy::RoundRobin);
    }

    /// Satellite 1 — the stale-cache regression. A warm answer memo must
    /// never replay a pre-mutation answer: before mutations invalidated
    /// the caches automatically, this test's post-removal wave would be
    /// served the removed graph straight from the memo.
    #[test]
    fn mutations_invalidate_the_answer_memo() {
        use crate::service::CachePolicy;
        let (ds, queries) = setup(12, 3);
        let config = MethodConfig::fast();
        let query = &queries[0];
        let mut service = ShardedService::new(
            MethodKind::Ggsx,
            &config,
            &ds,
            ServiceOptions::new()
                .shards(2)
                .cache(CachePolicy::enabled()),
        );
        // Warm the memo: cold wave populates, second wave hits.
        let before = service.run_wave(&[query], None).records[0].answers.clone();
        assert!(
            !before.is_empty(),
            "the generated query must match something"
        );
        let warm = service.run_wave(&[query], None);
        assert_eq!(warm.records[0].answers, before);
        assert!(
            service.cache_counters().answer_hits >= 1,
            "second wave must be memo-served"
        );

        // Remove one of the answers; a stale memo would keep replaying it.
        let victim = before[0];
        assert!(service.remove_graph(victim));
        let mut live = ds.clone();
        assert!(live.remove(victim));
        let oracle = build_index(MethodKind::Ggsx, &config, &live);
        let expected = oracle.query(&live, query).answers;
        assert!(!expected.contains(&victim));
        let after_remove = service.run_wave(&[query], None);
        assert_eq!(
            after_remove.records[0].answers, expected,
            "answer memo replayed a pre-removal answer"
        );

        // Warm the memo again, then insert a twin of the removed graph:
        // the answer must grow by the twin's new id.
        let _ = service.run_wave(&[query], None);
        let twin = ds.graph_unchecked(victim).clone();
        let twin_id = service.insert_graph(twin.clone());
        assert_eq!(twin_id, ds.len());
        let pushed = live.push(twin);
        assert_eq!(pushed, twin_id);
        let oracle = build_index(MethodKind::Ggsx, &config, &live);
        let expected = oracle.query(&live, query).answers;
        assert!(expected.contains(&twin_id));
        let after_insert = service.run_wave(&[query], None);
        assert_eq!(
            after_insert.records[0].answers, expected,
            "answer memo replayed a pre-insert answer"
        );
    }

    /// Tentpole behaviour end to end: reads and typed mutations drain from
    /// one admission queue in ticket order, every ticket gets a record,
    /// and each read observes exactly the dataset state of its admission
    /// point — with both cache levels enabled throughout.
    #[test]
    fn drained_mutations_interleave_with_reads_in_ticket_order() {
        use crate::service::CachePolicy;
        let (ds, queries) = setup(10, 2);
        let config = MethodConfig::fast();
        let query = &queries[0];
        let mut service = ShardedService::new(
            MethodKind::Ggsx,
            &config,
            &ds,
            ServiceOptions::new()
                .shards(2)
                .cache(CachePolicy::enabled()),
        );
        let before = build_index(MethodKind::Ggsx, &config, &ds)
            .query(&ds, query)
            .answers;
        assert!(!before.is_empty());
        let victim = before[0];
        let twin = ds.graph_unchecked(victim).clone();

        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(16));
        queue.submit(query.clone(), None).unwrap(); // t0: sees ds
        queue.submit_insert(twin.clone()).unwrap(); // t1
        queue.submit(query.clone(), None).unwrap(); // t2: sees ds + twin
        queue.submit_remove(victim).unwrap(); // t3
        queue.submit(query.clone(), None).unwrap(); // t4: sees ds + twin − victim
        let report = service.drain(&queue, None);

        assert_eq!(report.records.len(), 5, "no ticket may be lost");
        let tickets: Vec<Ticket> = report.records.iter().map(|r| r.ticket).collect();
        assert_eq!(tickets, vec![0, 1, 2, 3, 4]);
        assert_eq!(report.inserts_applied, 1);
        assert_eq!(report.removes_applied, 1);
        for mutation in [&report.records[1], &report.records[3]] {
            assert_eq!(mutation.outcome, QueryOutcome::Complete);
            assert!(mutation.answers.is_empty());
        }

        let mut with_twin = ds.clone();
        let twin_id = with_twin.push(twin);
        let mid = build_index(MethodKind::Ggsx, &config, &with_twin)
            .query(&with_twin, query)
            .answers;
        assert!(mid.contains(&twin_id), "the twin must join the answers");
        let mut end_state = with_twin.clone();
        assert!(end_state.remove(victim));
        let end = build_index(MethodKind::Ggsx, &config, &end_state)
            .query(&end_state, query)
            .answers;
        assert_eq!(report.records[0].answers, before);
        assert_eq!(
            report.records[2].answers, mid,
            "t2 replayed the pre-insert state"
        );
        assert_eq!(
            report.records[4].answers, end,
            "t4 replayed the pre-removal state"
        );
    }

    /// Satellite 3 — synopsis soundness across removals: after online
    /// removals the recomputed shard synopses may tighten, but routed
    /// answers must stay bit-identical to the rebuilt-from-scratch oracle
    /// over the live dataset (no live graph is ever routed past).
    #[test]
    fn routing_stays_sound_after_removals() {
        let (ds, queries) = setup(18, 5);
        let config = MethodConfig::fast();
        let mut service = ShardedService::new(
            MethodKind::Ggsx,
            &config,
            &ds,
            ServiceOptions::new()
                .shards(3)
                .routing(RoutingMode::Synopsis),
        );
        let mut live = ds.clone();
        for id in [0, 3, 5] {
            assert!(service.remove_graph(id));
            assert!(live.remove(id));
        }
        assert!(!service.remove_graph(0), "double removal must be a no-op");
        assert!(
            !service.remove_graph(ds.len() + 7),
            "unknown ids are refused"
        );
        // Every live graph is still admitted somewhere (a graph contains
        // itself, so the shard hosting it must admit it).
        for (id, g) in live.iter() {
            if live.is_live(id) {
                assert!(
                    service.router().route(g).iter().any(|&admitted| admitted),
                    "live graph {id} routed past every shard"
                );
            }
        }
        // And routed answers match the rebuilt oracle over the live set.
        let refs: Vec<&Graph> = queries.iter().collect();
        let report = service.run_wave(&refs, None);
        let oracle = build_index(MethodKind::Ggsx, &config, &live);
        for (record, query) in report.records.iter().zip(queries.iter()) {
            assert_eq!(record.answers, oracle.query(&live, query).answers);
        }
    }
}
