//! Open query admission: a bounded, continuously-admitting queue in front
//! of the (sharded) query service.
//!
//! The closed `run_batch` entry point assumes the whole workload exists up
//! front — fine for reproducing the paper's figures, wrong for a service
//! facing open traffic. [`AdmissionQueue`] decouples the two sides:
//!
//! * **Producers** call [`AdmissionQueue::submit`] (blocking) or
//!   [`AdmissionQueue::try_submit`] (non-blocking) from any number of
//!   threads. Each admitted query gets a unique, monotonically increasing
//!   [`Ticket`] and may carry its own deadline. The queue is *bounded*:
//!   when `capacity` queries are pending, `submit` blocks on a condvar
//!   until the consumer drains (backpressure), and `try_submit` returns
//!   [`SubmitError::Full`] so callers can shed load instead.
//! * **The consumer** (whoever owns the service) calls
//!   [`AdmissionQueue::drain_pending`] to take everything currently
//!   admitted as one wave, in admission order, and serves it. Draining
//!   frees capacity and wakes blocked producers.
//! * [`AdmissionQueue::close`] ends admission: subsequent submits fail with
//!   [`SubmitError::Closed`] and blocked producers are released, so a
//!   consumer loop can terminate cleanly once `is_closed() && is_empty()`.
//!
//! The queue owns its queries (`Graph` values, not borrows) — producers
//! hand them over and move on, which is what lets submission outlive any
//! particular wave.

use sqbench_graph::Graph;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Identifier of one admitted query, unique per queue and monotonically
/// increasing in admission order.
pub type Ticket = u64;

/// One query accepted into the admission queue, waiting to be drained.
#[derive(Debug)]
pub struct AdmittedQuery {
    /// The queue-unique admission ticket.
    pub ticket: Ticket,
    /// The query graph (owned by the queue until drained).
    pub query: Graph,
    /// When the query was admitted (for queue-wait accounting).
    pub submitted_at: Instant,
    /// The producer-supplied deadline: the query must *start* executing
    /// before this instant or be recorded as expired.
    pub deadline: Option<Instant>,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue has been closed; no further queries are admitted.
    Closed,
    /// The queue is at capacity ([`AdmissionQueue::try_submit`] only —
    /// the blocking [`AdmissionQueue::submit`] waits instead).
    Full,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed => write!(f, "admission queue is closed"),
            SubmitError::Full => write!(f, "admission queue is full"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Debug)]
struct AdmissionState {
    pending: VecDeque<AdmittedQuery>,
    next_ticket: Ticket,
    closed: bool,
}

/// The bounded multi-producer admission queue. See the module docs.
#[derive(Debug)]
pub struct AdmissionQueue {
    state: Mutex<AdmissionState>,
    /// Signalled whenever capacity frees up (drain) or the queue closes.
    space: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    /// Creates a queue admitting at most `capacity` pending queries
    /// (clamped to at least 1 — a zero-capacity queue could never admit).
    pub fn with_capacity(capacity: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(AdmissionState {
                pending: VecDeque::new(),
                next_ticket: 0,
                closed: false,
            }),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of queries currently pending (admitted, not yet drained).
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("admission queue poisoned")
            .pending
            .len()
    }

    /// `true` when no query is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once [`AdmissionQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("admission queue poisoned").closed
    }

    /// Total queries ever admitted (the next ticket to be handed out).
    pub fn admitted(&self) -> u64 {
        self.state
            .lock()
            .expect("admission queue poisoned")
            .next_ticket
    }

    /// Admits `query`, blocking while the queue is full (backpressure).
    /// Returns the query's admission ticket, or [`SubmitError::Closed`] if
    /// the queue closed before the query could be admitted.
    pub fn submit(&self, query: Graph, deadline: Option<Instant>) -> Result<Ticket, SubmitError> {
        let mut state = self.state.lock().expect("admission queue poisoned");
        loop {
            if state.closed {
                return Err(SubmitError::Closed);
            }
            if state.pending.len() < self.capacity {
                return Ok(Self::admit(&mut state, query, deadline));
            }
            state = self.space.wait(state).expect("admission queue poisoned");
        }
    }

    /// Non-blocking admission: errors with [`SubmitError::Full`] instead of
    /// waiting when the queue is at capacity.
    pub fn try_submit(
        &self,
        query: Graph,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        let mut state = self.state.lock().expect("admission queue poisoned");
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.pending.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        Ok(Self::admit(&mut state, query, deadline))
    }

    fn admit(state: &mut AdmissionState, query: Graph, deadline: Option<Instant>) -> Ticket {
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.pending.push_back(AdmittedQuery {
            ticket,
            query,
            submitted_at: Instant::now(),
            deadline,
        });
        ticket
    }

    /// Takes every currently pending query, in admission order, freeing the
    /// queue's capacity and waking blocked producers. Returns an empty
    /// vector (without blocking) when nothing is pending — the consumer
    /// loop decides how to pace itself.
    pub fn drain_pending(&self) -> Vec<AdmittedQuery> {
        let mut state = self.state.lock().expect("admission queue poisoned");
        let wave: Vec<AdmittedQuery> = state.pending.drain(..).collect();
        drop(state);
        if !wave.is_empty() {
            self.space.notify_all();
        }
        wave
    }

    /// Closes the queue: pending queries remain drainable, but no further
    /// submissions are admitted, and producers blocked in
    /// [`AdmissionQueue::submit`] are released with
    /// [`SubmitError::Closed`].
    pub fn close(&self) {
        let mut state = self.state.lock().expect("admission queue poisoned");
        state.closed = true;
        drop(state);
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn q(name: &str) -> Graph {
        Graph::new(name)
    }

    #[test]
    fn tickets_are_unique_and_ordered() {
        let queue = AdmissionQueue::with_capacity(8);
        let t0 = queue.submit(q("a"), None).unwrap();
        let t1 = queue.submit(q("b"), None).unwrap();
        assert_eq!((t0, t1), (0, 1));
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.admitted(), 2);
        let wave = queue.drain_pending();
        assert_eq!(wave.len(), 2);
        assert_eq!(wave[0].ticket, 0);
        assert_eq!(wave[1].ticket, 1);
        assert!(queue.is_empty());
        // Tickets keep increasing across waves.
        assert_eq!(queue.submit(q("c"), None).unwrap(), 2);
    }

    #[test]
    fn try_submit_sheds_load_at_capacity() {
        let queue = AdmissionQueue::with_capacity(2);
        queue.try_submit(q("a"), None).unwrap();
        queue.try_submit(q("b"), None).unwrap();
        assert_eq!(queue.try_submit(q("c"), None), Err(SubmitError::Full));
        queue.drain_pending();
        assert!(queue.try_submit(q("c"), None).is_ok());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let queue = AdmissionQueue::with_capacity(0);
        assert_eq!(queue.capacity(), 1);
        queue.try_submit(q("a"), None).unwrap();
        assert_eq!(queue.try_submit(q("b"), None), Err(SubmitError::Full));
    }

    #[test]
    fn close_rejects_submissions_and_releases_blocked_producers() {
        let queue = Arc::new(AdmissionQueue::with_capacity(1));
        queue.submit(q("a"), None).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.submit(q("blocked"), None))
        };
        // Give the producer a moment to block on the full queue, then close.
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert_eq!(producer.join().unwrap(), Err(SubmitError::Closed));
        assert!(queue.is_closed());
        // The pending query survives the close and is still drainable.
        assert_eq!(queue.drain_pending().len(), 1);
        assert_eq!(queue.submit(q("late"), None), Err(SubmitError::Closed));
    }

    #[test]
    fn blocked_producer_resumes_after_drain() {
        let queue = Arc::new(AdmissionQueue::with_capacity(1));
        queue.submit(q("first"), None).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.submit(q("second"), None))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.drain_pending().len(), 1);
        let ticket = producer.join().unwrap().unwrap();
        assert_eq!(ticket, 1);
        let wave = queue.drain_pending();
        assert_eq!(wave.len(), 1);
        assert_eq!(wave[0].query.name(), "second");
    }

    #[test]
    fn deadlines_travel_with_the_admitted_query() {
        let queue = AdmissionQueue::with_capacity(4);
        let deadline = Instant::now() + Duration::from_secs(60);
        queue.submit(q("a"), Some(deadline)).unwrap();
        queue.submit(q("b"), None).unwrap();
        let wave = queue.drain_pending();
        assert_eq!(wave[0].deadline, Some(deadline));
        assert_eq!(wave[1].deadline, None);
        assert!(wave[0].submitted_at <= Instant::now());
    }

    #[test]
    fn empty_drain_returns_immediately() {
        let queue = AdmissionQueue::with_capacity(4);
        assert!(queue.drain_pending().is_empty());
        assert!(queue.drain_pending().is_empty());
    }
}
