//! Open query admission: a bounded, continuously-admitting queue in front
//! of the (sharded) query service.
//!
//! The closed `run_batch` entry point assumes the whole workload exists up
//! front — fine for reproducing the paper's figures, wrong for a service
//! facing open traffic. [`AdmissionQueue`] decouples the two sides:
//!
//! * **Producers** call [`AdmissionQueue::submit`] (blocking) or
//!   [`AdmissionQueue::try_submit`] (non-blocking) from any number of
//!   threads. Each admitted query gets a unique, monotonically increasing
//!   [`Ticket`] and may carry its own deadline. The queue is *bounded*:
//!   when `capacity` queries are pending, `submit` blocks on a condvar
//!   until the consumer drains (backpressure), and `try_submit` returns
//!   [`SubmitError::Full`] so callers can shed load instead.
//! * **The consumer** (whoever owns the service) calls
//!   [`AdmissionQueue::drain_pending`] to take everything currently
//!   admitted as one wave, in admission order, and serves it. Draining
//!   frees capacity and wakes blocked producers.
//! * [`AdmissionQueue::close`] ends admission: subsequent submits fail with
//!   [`SubmitError::Closed`] and blocked producers are released, so a
//!   consumer loop can terminate cleanly once `is_closed() && is_empty()`.
//!
//! The queue owns its queries (`Graph` values, not borrows) — producers
//! hand them over and move on, which is what lets submission outlive any
//! particular wave.
//!
//! # Typed ingest operations
//!
//! The queue carries more than reads: [`AdmissionQueue::submit_insert`] and
//! [`AdmissionQueue::submit_remove`] admit dataset *mutations* through the
//! same ticket space, so a consumer draining waves sees queries and writes
//! interleaved in exactly the order producers submitted them. Mutations
//! share the queue's capacity bound (backpressure applies to writes too)
//! but are never cost-shed: dropping a write would silently fork the
//! dataset the producer believes it is growing.

use super::fault::FaultPlan;
use sqbench_graph::{Graph, GraphId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Identifier of one admitted operation, unique per queue and monotonically
/// increasing in admission order.
pub type Ticket = u64;

/// One operation travelling through the admission queue: a read (subgraph
/// query) or a dataset mutation. Mutations ride the same ticket space as
/// queries so the consumer applies them in admission order relative to the
/// reads around them.
#[derive(Debug, Clone)]
pub enum IngestOp {
    /// A subgraph query to answer against the current dataset.
    Query(Graph),
    /// Append this graph to the dataset (the service assigns the id).
    Insert(Graph),
    /// Tombstone the graph with this global id.
    Remove(GraphId),
}

impl IngestOp {
    /// `true` for operations that mutate the dataset (insert/remove).
    pub fn is_mutation(&self) -> bool {
        !matches!(self, IngestOp::Query(_))
    }
}

/// One operation accepted into the admission queue, waiting to be drained.
#[derive(Debug)]
pub struct AdmittedQuery {
    /// The queue-unique admission ticket.
    pub ticket: Ticket,
    /// The admitted operation (owned by the queue until drained).
    pub op: IngestOp,
    /// When the operation was admitted (for queue-wait accounting).
    pub submitted_at: Instant,
    /// The producer-supplied deadline: the query must *start* executing
    /// before this instant or be recorded as expired. Always `None` for
    /// mutations — writes are applied regardless of backlog.
    pub deadline: Option<Instant>,
}

impl AdmittedQuery {
    /// The query graph, when this admission is a read. `None` for
    /// mutations.
    pub fn query(&self) -> Option<&Graph> {
        match &self.op {
            IngestOp::Query(q) => Some(q),
            IngestOp::Insert(_) | IngestOp::Remove(_) => None,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue has been closed; no further queries are admitted.
    Closed,
    /// The queue is at capacity ([`AdmissionQueue::try_submit`] only —
    /// the blocking [`AdmissionQueue::submit`] waits instead).
    Full,
    /// The query was shed by cost-aware admission
    /// ([`AdmissionQueue::submit_or_shed`]): its deadline had already
    /// expired at submission, or the queue was full and the backlog made
    /// the deadline infeasible. Shedding at the door is the service's
    /// answer to sustained overload — a query that cannot possibly meet
    /// its deadline should not consume queue capacity and worker time just
    /// to expire later.
    Shed,
    /// A deterministic fault-injection plan rejected this submission (test
    /// harness only — see [`FaultPlan::fail_admission`]). The would-be
    /// ticket is *not* consumed, so a retrying producer observes a dense
    /// ticket space.
    Injected,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed => write!(f, "admission queue is closed"),
            SubmitError::Full => write!(f, "admission queue is full"),
            SubmitError::Shed => write!(f, "query shed: deadline infeasible under current load"),
            SubmitError::Injected => write!(f, "submission rejected by fault injection"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A measured per-query cost model: what the service has *observed* a
/// query to cost, replacing the caller-supplied `cost_hint` that admission
/// used to trust blindly.
///
/// The model keeps exponentially-weighted moving averages (EWMA,
/// `α = 0.2`) of the filter-stage cost, the candidate count, and the
/// per-candidate verify cost — i.e. verify cost *regressed on candidate
/// count*, so a workload whose candidate sets grow predicts proportionally
/// larger verify bills instead of lagging a flat average. The consumer
/// feeds it one [`CostModel::observe`] call per completed query (the
/// sharded service does this while draining); admission reads
/// [`CostModel::estimate_query_cost`] to judge deadline feasibility.
///
/// All cells are relaxed atomics storing `f64` bits: observations from
/// concurrent drains may occasionally overwrite each other, which is
/// acceptable for a smoothed estimate and keeps the submit path lock-free
/// with respect to the model.
#[derive(Debug, Default)]
pub struct CostModel {
    /// EWMA of per-candidate verify cost, seconds (f64 bits).
    verify_per_candidate: AtomicU64,
    /// EWMA of per-query filter + cache-probe cost, seconds (f64 bits).
    filter_s: AtomicU64,
    /// EWMA of per-query candidate count (f64 bits).
    candidates: AtomicU64,
    /// Completed-query observations folded in so far.
    observations: AtomicU64,
}

/// EWMA smoothing factor: new observations carry 20% weight.
const COST_EWMA_ALPHA: f64 = 0.2;

impl CostModel {
    /// Creates an empty model (no observations, no estimate).
    pub fn new() -> Self {
        Self::default()
    }

    fn load(cell: &AtomicU64) -> f64 {
        f64::from_bits(cell.load(Ordering::Relaxed))
    }

    fn fold(&self, cell: &AtomicU64, sample: f64) {
        let prev = Self::load(cell);
        let next = if self.observations.load(Ordering::Relaxed) == 0 {
            sample
        } else {
            prev + COST_EWMA_ALPHA * (sample - prev)
        };
        cell.store(next.to_bits(), Ordering::Relaxed);
    }

    /// Folds one completed query's measurements into the model: how many
    /// candidates filtering produced and the seconds spent filtering and
    /// verifying. Non-finite or negative samples are ignored.
    pub fn observe(&self, candidates: usize, filter_s: f64, verify_s: f64) {
        if !(filter_s.is_finite() && verify_s.is_finite()) || filter_s < 0.0 || verify_s < 0.0 {
            return;
        }
        let per_candidate = if candidates > 0 {
            verify_s / candidates as f64
        } else {
            0.0
        };
        self.fold(&self.verify_per_candidate, per_candidate);
        self.fold(&self.filter_s, filter_s);
        self.fold(&self.candidates, candidates as f64);
        self.observations.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed-query observations folded in so far.
    pub fn observations(&self) -> u64 {
        self.observations.load(Ordering::Relaxed)
    }

    /// The model's current estimate of one query's processing cost:
    /// `filter + verify_per_candidate × candidates`. `None` until the
    /// first observation — an unwarmed model refuses to guess, so
    /// admission falls back to deadline-expiry shedding only. Estimates
    /// too large for a `Duration` saturate at [`Duration::MAX`].
    pub fn estimate_query_cost(&self) -> Option<Duration> {
        if self.observations() == 0 {
            return None;
        }
        let secs = Self::load(&self.filter_s)
            + Self::load(&self.verify_per_candidate) * Self::load(&self.candidates);
        Some(Duration::try_from_secs_f64(secs.max(0.0)).unwrap_or(Duration::MAX))
    }

    /// Forces the model to a fixed per-query estimate, as if it had
    /// observed exactly one query costing `cost` in its filter stage.
    /// An operations/test hook for pre-warming admission before the first
    /// drain (e.g. from a previous run's measurements).
    pub fn seed(&self, cost: Duration) {
        self.filter_s
            .store(cost.as_secs_f64().to_bits(), Ordering::Relaxed);
        self.verify_per_candidate.store(0, Ordering::Relaxed);
        self.candidates.store(0, Ordering::Relaxed);
        self.observations.store(1, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct AdmissionState {
    pending: VecDeque<AdmittedQuery>,
    /// Pending *read* operations only — the backlog that competes with a
    /// new query for worker time. Mutations are cheap appends/tombstones
    /// and are deliberately excluded (counting them at query cost made a
    /// write-heavy queue over-shed reads).
    pending_reads: usize,
    next_ticket: Ticket,
    closed: bool,
}

/// The bounded multi-producer admission queue. See the module docs.
#[derive(Debug)]
pub struct AdmissionQueue {
    state: Mutex<AdmissionState>,
    /// Signalled whenever capacity frees up (drain) or the queue closes.
    space: Condvar,
    capacity: usize,
    /// Queries rejected by cost-aware shedding ([`SubmitError::Shed`]).
    shed: AtomicU64,
    /// Deterministic fault-injection hook; `None` (the production default)
    /// costs one branch per submission.
    faults: Option<Arc<FaultPlan>>,
    /// The measured cost model backing [`AdmissionQueue::submit_or_shed`];
    /// fed by the consumer as queries complete.
    cost_model: CostModel,
}

impl AdmissionQueue {
    /// Creates a queue from the unified [`ServiceOptions`] surface,
    /// reading `queue_capacity` (the most pending queries the queue admits,
    /// clamped to at least 1 — a zero-capacity queue could never admit) and
    /// `faults` (a fault-injection plan arming [`SubmitError::Injected`]
    /// for targeted tickets).
    ///
    /// [`ServiceOptions`]: super::ServiceOptions
    pub fn new(opts: impl Into<super::ServiceOptions>) -> Self {
        let opts: super::ServiceOptions = opts.into();
        AdmissionQueue {
            state: Mutex::new(AdmissionState {
                pending: VecDeque::new(),
                pending_reads: 0,
                next_ticket: 0,
                closed: false,
            }),
            space: Condvar::new(),
            capacity: opts.queue_capacity.max(1),
            shed: AtomicU64::new(0),
            faults: opts.faults,
            cost_model: CostModel::new(),
        }
    }

    /// Legacy constructor: a queue admitting at most `capacity` pending
    /// queries.
    #[deprecated(note = "use AdmissionQueue::new(ServiceOptions::new().queue_capacity(n))")]
    pub fn with_capacity(capacity: usize) -> Self {
        Self::new(super::ServiceOptions::new().queue_capacity(capacity))
    }

    /// Legacy constructor: like `with_capacity`, with a fault-injection
    /// plan armed — submissions whose would-be ticket the plan targets
    /// fail with [`SubmitError::Injected`] without consuming the ticket.
    #[deprecated(
        note = "use AdmissionQueue::new(ServiceOptions::new().queue_capacity(n).faults(plan))"
    )]
    pub fn with_faults(capacity: usize, faults: Arc<FaultPlan>) -> Self {
        Self::new(
            super::ServiceOptions::new()
                .queue_capacity(capacity)
                .faults(faults),
        )
    }

    /// Poison-tolerant lock: every guarded section is a short queue
    /// mutation that either completes or leaves the state consistent, so a
    /// producer that panicked elsewhere must not wedge admission for every
    /// other producer — recover the guard instead of cascading.
    fn lock(&self) -> MutexGuard<'_, AdmissionState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of queries currently pending (admitted, not yet drained).
    pub fn len(&self) -> usize {
        self.lock().pending.len()
    }

    /// `true` when no query is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once [`AdmissionQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Total queries ever admitted (the next ticket to be handed out).
    pub fn admitted(&self) -> u64 {
        self.lock().next_ticket
    }

    /// Queries rejected by cost-aware shedding so far.
    pub fn shed_queries(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Admits `query`, blocking while the queue is full (backpressure).
    /// Returns the query's admission ticket, or [`SubmitError::Closed`] if
    /// the queue closed before the query could be admitted.
    pub fn submit(&self, query: Graph, deadline: Option<Instant>) -> Result<Ticket, SubmitError> {
        self.submit_op(IngestOp::Query(query), deadline)
    }

    /// Admits a dataset insert, blocking while the queue is full. The graph
    /// is appended (and assigned its id) when the consumer applies the
    /// drained wave; mutations are never cost-shed.
    pub fn submit_insert(&self, graph: Graph) -> Result<Ticket, SubmitError> {
        self.submit_op(IngestOp::Insert(graph), None)
    }

    /// Admits a dataset removal (by global graph id), blocking while the
    /// queue is full. Mutations are never cost-shed.
    pub fn submit_remove(&self, id: GraphId) -> Result<Ticket, SubmitError> {
        self.submit_op(IngestOp::Remove(id), None)
    }

    fn submit_op(&self, op: IngestOp, deadline: Option<Instant>) -> Result<Ticket, SubmitError> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(SubmitError::Closed);
            }
            if state.pending.len() < self.capacity {
                self.check_injected(&state)?;
                return Ok(Self::admit(&mut state, op, deadline));
            }
            state = self
                .space
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking admission: errors with [`SubmitError::Full`] instead of
    /// waiting when the queue is at capacity.
    pub fn try_submit(
        &self,
        query: Graph,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        let mut state = self.lock();
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.pending.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        self.check_injected(&state)?;
        Ok(Self::admit(&mut state, IngestOp::Query(query), deadline))
    }

    /// Cost-aware admission: sheds ([`SubmitError::Shed`]) instead of
    /// queueing a query whose `deadline` cannot plausibly be met —
    /// because it has already expired at submission, or because the queue
    /// is at capacity and the *measured* backlog would outlast the
    /// deadline anyway. The backlog estimate multiplies the cost model's
    /// per-query estimate ([`CostModel::estimate_query_cost`], fed by the
    /// consumer as queries complete) by the pending **read** count —
    /// mutations are cheap appends and do not count against a query's
    /// deadline. Until the model has its first observation, only
    /// already-expired deadlines shed. Deadline-feasible queries behave
    /// exactly like [`AdmissionQueue::submit`], including blocking on a
    /// full queue. Queries without a deadline are never shed.
    pub fn submit_or_shed(
        &self,
        query: Graph,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(SubmitError::Closed);
            }
            if let Some(deadline) = deadline {
                let now = Instant::now();
                // Full queue: the pending reads are served first, so the
                // earliest this query could finish is roughly
                // now + pending_reads × estimated cost. Both the
                // multiplication and the Instant addition can overflow for
                // large estimates (the naive product panics in debug
                // builds and wraps — under-estimating the backlog — in
                // release), so compute checked and treat overflow as "past
                // any deadline": a backlog too large to represent is
                // certainly infeasible.
                let infeasible = match self.cost_model.estimate_query_cost() {
                    Some(cost) => {
                        let backlog = cost.checked_mul(state.pending_reads as u32);
                        let finish = backlog.and_then(|b| now.checked_add(b));
                        finish.is_none_or(|f| f >= deadline)
                    }
                    // No observations yet: refuse to shed on a guess.
                    None => false,
                };
                // Already expired at the door: executing it would only
                // burn a queue slot to report `TimedOut` later.
                let hopeless =
                    now >= deadline || (state.pending.len() >= self.capacity && infeasible);
                if hopeless {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::Shed);
                }
            }
            if state.pending.len() < self.capacity {
                self.check_injected(&state)?;
                return Ok(Self::admit(&mut state, IngestOp::Query(query), deadline));
            }
            state = self
                .space
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The measured cost model backing [`AdmissionQueue::submit_or_shed`].
    /// The consumer feeds it ([`CostModel::observe`]) as queries complete;
    /// anything may read its current estimate.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Number of pending operations that are reads (the backlog the cost
    /// model charges against a new query's deadline).
    pub fn pending_reads(&self) -> usize {
        self.lock().pending_reads
    }

    /// Fault hook: rejects the submission that would receive the next
    /// ticket when the armed plan targets it. The ticket is not consumed —
    /// a retrying producer keeps the ticket space dense.
    fn check_injected(&self, state: &AdmissionState) -> Result<(), SubmitError> {
        if let Some(plan) = &self.faults {
            if plan.take_admission_failure(state.next_ticket) {
                return Err(SubmitError::Injected);
            }
        }
        Ok(())
    }

    fn admit(state: &mut AdmissionState, op: IngestOp, deadline: Option<Instant>) -> Ticket {
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        if !op.is_mutation() {
            state.pending_reads += 1;
        }
        state.pending.push_back(AdmittedQuery {
            ticket,
            op,
            submitted_at: Instant::now(),
            deadline,
        });
        ticket
    }

    /// Takes every currently pending query, in admission order, freeing the
    /// queue's capacity and waking blocked producers. Returns an empty
    /// vector (without blocking) when nothing is pending — the consumer
    /// loop decides how to pace itself.
    pub fn drain_pending(&self) -> Vec<AdmittedQuery> {
        let mut state = self.lock();
        let wave: Vec<AdmittedQuery> = state.pending.drain(..).collect();
        state.pending_reads = 0;
        drop(state);
        if !wave.is_empty() {
            self.space.notify_all();
        }
        wave
    }

    /// Closes the queue: pending queries remain drainable, but no further
    /// submissions are admitted, and producers blocked in
    /// [`AdmissionQueue::submit`] are released with
    /// [`SubmitError::Closed`].
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        drop(state);
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceOptions;
    use std::sync::Arc;
    use std::time::Duration;

    fn q(name: &str) -> Graph {
        Graph::new(name)
    }

    #[test]
    fn tickets_are_unique_and_ordered() {
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(8));
        let t0 = queue.submit(q("a"), None).unwrap();
        let t1 = queue.submit(q("b"), None).unwrap();
        assert_eq!((t0, t1), (0, 1));
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.admitted(), 2);
        let wave = queue.drain_pending();
        assert_eq!(wave.len(), 2);
        assert_eq!(wave[0].ticket, 0);
        assert_eq!(wave[1].ticket, 1);
        assert!(queue.is_empty());
        // Tickets keep increasing across waves.
        assert_eq!(queue.submit(q("c"), None).unwrap(), 2);
    }

    #[test]
    fn try_submit_sheds_load_at_capacity() {
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(2));
        queue.try_submit(q("a"), None).unwrap();
        queue.try_submit(q("b"), None).unwrap();
        assert_eq!(queue.try_submit(q("c"), None), Err(SubmitError::Full));
        queue.drain_pending();
        assert!(queue.try_submit(q("c"), None).is_ok());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(0));
        assert_eq!(queue.capacity(), 1);
        queue.try_submit(q("a"), None).unwrap();
        assert_eq!(queue.try_submit(q("b"), None), Err(SubmitError::Full));
    }

    #[test]
    fn close_rejects_submissions_and_releases_blocked_producers() {
        let queue = Arc::new(AdmissionQueue::new(ServiceOptions::new().queue_capacity(1)));
        queue.submit(q("a"), None).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.submit(q("blocked"), None))
        };
        // Give the producer a moment to block on the full queue, then close.
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert_eq!(producer.join().unwrap(), Err(SubmitError::Closed));
        assert!(queue.is_closed());
        // The pending query survives the close and is still drainable.
        assert_eq!(queue.drain_pending().len(), 1);
        assert_eq!(queue.submit(q("late"), None), Err(SubmitError::Closed));
    }

    #[test]
    fn blocked_producer_resumes_after_drain() {
        let queue = Arc::new(AdmissionQueue::new(ServiceOptions::new().queue_capacity(1)));
        queue.submit(q("first"), None).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.submit(q("second"), None))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.drain_pending().len(), 1);
        let ticket = producer.join().unwrap().unwrap();
        assert_eq!(ticket, 1);
        let wave = queue.drain_pending();
        assert_eq!(wave.len(), 1);
        assert_eq!(wave[0].query().unwrap().name(), "second");
    }

    #[test]
    fn deadlines_travel_with_the_admitted_query() {
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(4));
        let deadline = Instant::now() + Duration::from_secs(60);
        queue.submit(q("a"), Some(deadline)).unwrap();
        queue.submit(q("b"), None).unwrap();
        let wave = queue.drain_pending();
        assert_eq!(wave[0].deadline, Some(deadline));
        assert_eq!(wave[1].deadline, None);
        assert!(wave[0].submitted_at <= Instant::now());
    }

    #[test]
    fn empty_drain_returns_immediately() {
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(4));
        assert!(queue.drain_pending().is_empty());
        assert!(queue.drain_pending().is_empty());
    }

    /// Satellite edge case: every submission flavour on a closed queue
    /// returns the typed `Closed` error — no panic, no admission.
    #[test]
    fn every_submit_flavour_fails_typed_after_close() {
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(4));
        queue.close();
        assert_eq!(queue.submit(q("a"), None), Err(SubmitError::Closed));
        assert_eq!(queue.try_submit(q("b"), None), Err(SubmitError::Closed));
        assert_eq!(queue.submit_or_shed(q("c"), None), Err(SubmitError::Closed));
        assert_eq!(queue.admitted(), 0);
        assert!(queue.is_empty());
    }

    /// Satellite edge case: a deadline that has already expired at submit
    /// time. Plain `submit` still admits (the wave reports it `TimedOut` —
    /// backwards compatible); `submit_or_shed` rejects it at the door.
    #[test]
    fn deadline_already_expired_at_submit() {
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(4));
        let past = Instant::now() - Duration::from_secs(1);
        // The non-shedding paths admit: deadline enforcement happens at
        // claim time in the wave.
        assert!(queue.submit(q("a"), Some(past)).is_ok());
        assert!(queue.try_submit(q("b"), Some(past)).is_ok());
        // The cost-aware path refuses to burn a slot on a hopeless query —
        // even with a cold cost model (expiry needs no estimate).
        assert_eq!(
            queue.submit_or_shed(q("c"), Some(past)),
            Err(SubmitError::Shed)
        );
        assert_eq!(queue.shed_queries(), 1);
        assert_eq!(queue.len(), 2);
        // Shedding does not consume a ticket: the space stays dense.
        assert_eq!(queue.submit(q("d"), None), Ok(2));
    }

    #[test]
    fn cost_aware_shedding_rejects_infeasible_deadlines_when_full() {
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(2));
        queue.cost_model().seed(Duration::from_millis(10));
        queue.submit(q("a"), None).unwrap();
        queue.submit(q("b"), None).unwrap();
        // Full queue + 10 ms/query measured backlog ≫ 1 ms of budget: shed.
        let tight = Instant::now() + Duration::from_millis(1);
        assert_eq!(
            queue.submit_or_shed(q("c"), Some(tight)),
            Err(SubmitError::Shed)
        );
        assert_eq!(queue.shed_queries(), 1);
        // A no-deadline query is never shed — it blocks like `submit`
        // until the consumer drains.
        let queue = Arc::new(queue);
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.submit_or_shed(q("d"), None))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.drain_pending().len(), 2);
        assert_eq!(producer.join().unwrap(), Ok(2));
    }

    #[test]
    fn feasible_deadline_is_admitted_not_shed() {
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(4));
        queue.cost_model().seed(Duration::from_millis(1));
        let roomy = Instant::now() + Duration::from_secs(60);
        let ticket = queue.submit_or_shed(q("a"), Some(roomy)).unwrap();
        assert_eq!(ticket, 0);
        assert_eq!(queue.shed_queries(), 0);
        let wave = queue.drain_pending();
        assert_eq!(wave[0].deadline, Some(roomy));
    }

    /// An unwarmed cost model must not shed on a guess: with zero
    /// observations, a full queue admits (blocks) rather than sheds, and
    /// only already-expired deadlines are rejected at the door.
    #[test]
    fn cold_cost_model_never_sheds_feasible_queries() {
        let queue = Arc::new(AdmissionQueue::new(ServiceOptions::new().queue_capacity(1)));
        assert_eq!(queue.cost_model().observations(), 0);
        queue.submit(q("a"), None).unwrap();
        let deadline = Instant::now() + Duration::from_millis(200);
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.submit_or_shed(q("b"), Some(deadline)))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.drain_pending().len(), 1);
        assert_eq!(producer.join().unwrap(), Ok(1));
        assert_eq!(queue.shed_queries(), 0);
    }

    /// Satellite 2 (the overflow bug): a full queue, an astronomically
    /// large measured cost, and a finite deadline used to evaluate
    /// `now + cost * pending_reads` — which panics in debug builds and
    /// wraps (admitting the hopeless query) in release. The checked
    /// arithmetic must shed instead, without panicking.
    #[test]
    fn huge_measured_cost_on_full_queue_sheds_instead_of_overflowing() {
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(2));
        queue.submit(q("a"), None).unwrap();
        queue.submit(q("b"), None).unwrap();
        let deadline = Instant::now() + Duration::from_secs(60);
        queue.cost_model().seed(Duration::MAX);
        assert_eq!(
            queue.submit_or_shed(q("c"), Some(deadline)),
            Err(SubmitError::Shed)
        );
        assert_eq!(queue.shed_queries(), 1);
        // A representable-but-huge backlog overflows only the Instant
        // addition — same verdict, exercised separately.
        queue.cost_model().seed(Duration::from_secs(u64::MAX / 8));
        assert_eq!(
            queue.submit_or_shed(q("d"), Some(deadline)),
            Err(SubmitError::Shed)
        );
        // Shedding consumed no tickets or slots.
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.admitted(), 2);
    }

    /// Satellite bugfix: the backlog estimate counts only pending *reads*.
    /// A queue full of cheap mutations must not shed a deadline-feasible
    /// query the way the old all-ops × query-cost estimate did.
    #[test]
    fn mutation_heavy_backlog_does_not_shed_feasible_reads() {
        let queue = Arc::new(AdmissionQueue::new(ServiceOptions::new().queue_capacity(4)));
        // 1 s measured per *query*; four pending mutations would have
        // charged a bogus 4 s backlog against a 200 ms deadline.
        queue.cost_model().seed(Duration::from_secs(1));
        for i in 0..4 {
            queue.submit_insert(q(&format!("ins-{i}"))).unwrap();
        }
        assert_eq!(queue.len(), 4);
        assert_eq!(queue.pending_reads(), 0);
        let deadline = Instant::now() + Duration::from_millis(200);
        // Full queue, but the read backlog is zero: block, don't shed.
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.submit_or_shed(q("read"), Some(deadline)))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.drain_pending().len(), 4);
        assert_eq!(producer.join().unwrap(), Ok(4));
        assert_eq!(queue.shed_queries(), 0);
        assert_eq!(queue.pending_reads(), 1);
        // Reads *do* count: with one read pending and a 1 s estimate, a
        // 200 ms deadline on a full queue is infeasible.
        for i in 0..3 {
            queue.submit_insert(q(&format!("ins2-{i}"))).unwrap();
        }
        let tight = Instant::now() + Duration::from_millis(200);
        assert_eq!(
            queue.submit_or_shed(q("read-2"), Some(tight)),
            Err(SubmitError::Shed)
        );
        assert_eq!(queue.shed_queries(), 1);
    }

    #[test]
    fn cost_model_estimates_track_observations() {
        let model = CostModel::new();
        assert_eq!(model.estimate_query_cost(), None);
        // 1 ms filter + 100 candidates × 50 µs verify each = 6 ms/query.
        model.observe(100, 0.001, 0.005);
        let first = model.estimate_query_cost().unwrap();
        assert!((first.as_secs_f64() - 0.006).abs() < 1e-9, "{first:?}");
        // Repeated identical observations keep the estimate fixed.
        for _ in 0..50 {
            model.observe(100, 0.001, 0.005);
        }
        let settled = model.estimate_query_cost().unwrap();
        assert!((settled.as_secs_f64() - 0.006).abs() < 1e-9);
        // The EWMA converges toward a shifted workload...
        for _ in 0..100 {
            model.observe(200, 0.002, 0.020);
        }
        let shifted = model.estimate_query_cost().unwrap().as_secs_f64();
        assert!((shifted - 0.022).abs() < 0.002, "{shifted}");
        // ...and the regression extrapolates verify cost with candidate
        // count rather than averaging it away.
        assert!(shifted > settled.as_secs_f64() * 3.0);
        // Degenerate samples are ignored, not folded in.
        model.observe(10, f64::NAN, 1.0);
        model.observe(10, -1.0, 1.0);
        let after = model.estimate_query_cost().unwrap().as_secs_f64();
        assert!((after - shifted).abs() < 1e-12);
    }

    #[test]
    fn mutations_share_the_ticket_space_with_queries() {
        let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(8));
        assert_eq!(queue.submit(q("read-0"), None), Ok(0));
        assert_eq!(queue.submit_insert(q("new-graph")), Ok(1));
        assert_eq!(queue.submit_remove(7), Ok(2));
        assert_eq!(queue.submit(q("read-1"), None), Ok(3));
        let wave = queue.drain_pending();
        assert_eq!(wave.len(), 4);
        assert!(!wave[0].op.is_mutation());
        assert!(wave[1].op.is_mutation());
        assert!(matches!(&wave[1].op, IngestOp::Insert(g) if g.name() == "new-graph"));
        assert!(matches!(wave[2].op, IngestOp::Remove(7)));
        assert!(wave[2].query().is_none());
        assert_eq!(wave[3].query().unwrap().name(), "read-1");
        // Mutations respect close like any other submission.
        queue.close();
        assert_eq!(queue.submit_insert(q("late")), Err(SubmitError::Closed));
        assert_eq!(queue.submit_remove(0), Err(SubmitError::Closed));
    }

    #[test]
    fn injected_admission_failure_is_transient_and_keeps_tickets_dense() {
        let plan = Arc::new(FaultPlan::new().fail_admission(1, 1));
        let queue = AdmissionQueue::new(
            ServiceOptions::new()
                .queue_capacity(8)
                .faults(Arc::clone(&plan)),
        );
        assert_eq!(queue.submit(q("a"), None), Ok(0));
        // The submission that would get ticket 1 is rejected once...
        assert_eq!(queue.submit(q("b"), None), Err(SubmitError::Injected));
        // ...and the retry gets the *same* ticket: no hole in the space.
        assert_eq!(queue.submit(q("b"), None), Ok(1));
        assert_eq!(queue.submit(q("c"), None), Ok(2));
        assert_eq!(plan.injected_admission_failures(), 1);
        let tickets: Vec<Ticket> = queue.drain_pending().iter().map(|a| a.ticket).collect();
        assert_eq!(tickets, vec![0, 1, 2]);
    }
}
