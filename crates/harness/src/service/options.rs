//! The unified, layered service configuration surface.
//!
//! Before this module the serving stack had three parallel config surfaces
//! that each grew their own `with_*` chain — `RunOptions` (runner),
//! `ServiceConfig` (worker pool) and `ShardedConfig` (sharded service) —
//! and every new knob had to be threaded through all three.
//! [`ServiceOptions`] collapses them: one builder describes a whole
//! service, and every layer reads the part it cares about. The legacy
//! types survive as deprecated `From` shims so existing callers keep
//! compiling.
//!
//! ```
//! use sqbench_harness::service::{CachePolicy, RoutingMode, ServiceOptions, ShardStrategy};
//!
//! let opts = ServiceOptions::new()
//!     .workers(4)
//!     .shards(4)
//!     .strategy(ShardStrategy::LabelAware)
//!     .routing(RoutingMode::Synopsis)
//!     .cache(CachePolicy::enabled());
//! assert_eq!(opts.shards, 4);
//! ```

use super::cache::CachePolicy;
use super::fault::FaultPlan;
use super::sharded::{RetryPolicy, ShardStrategy};
use super::synopsis::RoutingMode;
use std::sync::Arc;

/// One description of a whole query service, unsharded or sharded. Every
/// constructor of the serving stack takes it (directly or via
/// `impl Into<ServiceOptions>`): [`super::QueryService::new`] reads
/// `workers` and `cache`, [`super::sharded::ShardedService::new`] reads
/// all of it, [`super::admission::AdmissionQueue::new`] reads
/// `queue_capacity` and `faults`. Cache knobs live **only** here — they
/// were deliberately never added to the legacy surfaces.
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Worker threads per pool (per shard when sharded). Clamped to ≥ 1.
    /// Under dynamic scaling this is the *floor* a shard pool never
    /// shrinks below.
    pub workers: usize,
    /// Upper bound for dynamic per-shard worker scaling: a shard executor
    /// grows its pool from the observed probe backlog, between `workers`
    /// (the floor) and this cap. Values below `workers` — including the
    /// default of 1 — are clamped up to `workers` at use, which disables
    /// scaling: the pool stays at its fixed size.
    pub workers_max: usize,
    /// Dataset shards; `1` means the plain unsharded service. Clamped to
    /// ≥ 1 by the constructors.
    pub shards: usize,
    /// How graphs are placed onto shards.
    pub strategy: ShardStrategy,
    /// Shard routing: full fan-out or synopsis-based selective probing.
    pub routing: RoutingMode,
    /// Deadline-budgeted retry of failed shard probes.
    pub retry: RetryPolicy,
    /// The two-level cross-query cache (disabled by default).
    pub cache: CachePolicy,
    /// Capacity of an [`super::admission::AdmissionQueue`] built from
    /// these options. Clamped to ≥ 1.
    pub queue_capacity: usize,
    /// Deterministic fault-injection plan (tests and soak harnesses only;
    /// `None` is the zero-cost production path).
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            workers: 1,
            workers_max: 1,
            shards: 1,
            strategy: ShardStrategy::default(),
            routing: RoutingMode::Fanout,
            retry: RetryPolicy::default(),
            cache: CachePolicy::disabled(),
            queue_capacity: 64,
            faults: None,
        }
    }
}

impl ServiceOptions {
    /// The default options: one worker, one shard, fan-out routing, the
    /// default retry budget, caching disabled.
    pub fn new() -> Self {
        ServiceOptions::default()
    }

    /// Sets the worker threads per pool (clamped to ≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the dynamic-scaling worker cap per pool (clamped to ≥ 1 here
    /// and to ≥ `workers` at use). Leaving it at the default keeps the
    /// pool at its fixed `workers` size.
    pub fn workers_max(mut self, workers_max: usize) -> Self {
        self.workers_max = workers_max.max(1);
        self
    }

    /// Sets the shard count (clamped to ≥ 1; `1` = unsharded).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the shard placement strategy.
    pub fn strategy(mut self, strategy: ShardStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the shard routing mode.
    pub fn routing(mut self, routing: RoutingMode) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the retry policy for failed shard probes.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the cache policy (feature cache + answer memo).
    pub fn cache(mut self, cache: CachePolicy) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the admission-queue capacity (clamped to ≥ 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Arms a deterministic fault-injection plan.
    pub fn faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = Some(faults);
        self
    }
}

#[allow(deprecated)]
impl From<super::ServiceConfig> for ServiceOptions {
    fn from(config: super::ServiceConfig) -> Self {
        ServiceOptions::new().workers(config.workers)
    }
}

#[allow(deprecated)]
impl From<super::sharded::ShardedConfig> for ServiceOptions {
    fn from(config: super::sharded::ShardedConfig) -> Self {
        let mut opts = ServiceOptions::new()
            .workers(config.workers_per_shard)
            .shards(config.shards)
            .strategy(config.strategy)
            .routing(config.routing)
            .retry(config.retry);
        opts.faults = config.faults;
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_clamps_and_chains() {
        let opts = ServiceOptions::new()
            .workers(0)
            .shards(0)
            .queue_capacity(0)
            .routing(RoutingMode::Synopsis)
            .cache(CachePolicy::enabled());
        assert_eq!(opts.workers, 1);
        assert_eq!(opts.shards, 1);
        assert_eq!(opts.queue_capacity, 1);
        assert_eq!(opts.routing, RoutingMode::Synopsis);
        assert!(!opts.cache.is_disabled());
    }

    #[test]
    fn default_disables_caching() {
        assert!(ServiceOptions::default().cache.is_disabled());
    }

    /// The scaling cap defaults to the floor (scaling disabled) and clamps
    /// like every other knob.
    #[test]
    fn workers_max_defaults_off_and_clamps() {
        let opts = ServiceOptions::new().workers(3);
        assert!(
            opts.workers_max <= opts.workers,
            "a default cap above the floor would silently enable scaling"
        );
        let scaled = ServiceOptions::new().workers(2).workers_max(8);
        assert_eq!(scaled.workers_max, 8);
        assert_eq!(ServiceOptions::new().workers_max(0).workers_max, 1);
    }

    /// The legacy config types convert losslessly — the delegating shims
    /// depend on it.
    #[test]
    #[allow(deprecated)]
    fn legacy_configs_convert() {
        let from_service: ServiceOptions = super::super::ServiceConfig::with_workers(3).into();
        assert_eq!(from_service.workers, 3);
        assert_eq!(from_service.shards, 1);

        let from_sharded: ServiceOptions = super::super::sharded::ShardedConfig::with_shards(4)
            .workers_per_shard(2)
            .routing(RoutingMode::Synopsis)
            .into();
        assert_eq!(from_sharded.shards, 4);
        assert_eq!(from_sharded.workers, 2);
        assert_eq!(from_sharded.routing, RoutingMode::Synopsis);
        assert!(
            from_sharded.cache.is_disabled(),
            "cache knobs are new-surface-only"
        );
    }
}
