//! The worker pool: per-worker candidate arenas and the worker loop that
//! drives both pipeline stages.
//!
//! Workers are *scoped to a batch* (spawned with `std::thread::scope` so
//! they can borrow the index and dataset), but their arenas belong to the
//! [`crate::service::QueryService`] and persist across batches — after the
//! first batch a worker's filter stage runs entirely in recycled memory.

use super::admission::Ticket;
use super::fault::FaultPlan;
use super::queue::{BatchQueue, StealDeque};
use super::stages::{filter_stage, verify_stage, QueryOutcome, QueryRecord, VerifyJob};
use sqbench_graph::{Dataset, Graph};
use sqbench_index::{CandidateSet, FeatureCacheStore, GraphIndex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// One worker's reusable filtering memory: a pool of [`CandidateSet`]s the
/// filter stage draws arenas from and the verify stage returns them to.
/// Steady-state, a worker whose verify jobs are not stolen cycles a single
/// set; stealing moves a set to the thief's pool, so the fleet-wide set
/// count stays bounded by the number of in-flight queries.
#[derive(Debug, Default)]
pub struct WorkerArena {
    free_sets: Vec<CandidateSet>,
}

impl WorkerArena {
    /// Takes a set from the pool (or allocates an empty one on first use —
    /// `filter_into` re-targets it at the index's universe either way).
    pub fn take_set(&mut self) -> CandidateSet {
        self.free_sets
            .pop()
            .unwrap_or_else(|| CandidateSet::empty(0))
    }

    /// Returns a set to the pool for reuse.
    pub fn recycle(&mut self, set: CandidateSet) {
        self.free_sets.push(set);
    }

    /// Number of sets currently pooled (diagnostics/tests).
    pub fn pooled_sets(&self) -> usize {
        self.free_sets.len()
    }
}

/// The fault-injection view of one (sub-)batch: the shared plan plus the
/// admission tickets of the batch's queries (indexed like the batch), so
/// the worker loop can fire ticket-keyed faults at the right query even on
/// routed subsets and retry sub-batches.
#[derive(Clone, Copy)]
pub(crate) struct WaveFaults<'q> {
    pub plan: &'q FaultPlan,
    pub tickets: &'q [Ticket],
}

/// Everything a batch's workers share by reference.
pub(super) struct BatchShared<'q> {
    pub queue: BatchQueue<'q>,
    pub verify_queues: Vec<StealDeque<VerifyJob<'q>>>,
    pub deadline: Option<Instant>,
    /// Fault-injection hook; `None` on the (zero-cost) production path.
    pub faults: Option<WaveFaults<'q>>,
    /// Cross-query feature-bitset cache shared by every worker's filter
    /// stage; `None` (the default) is the byte-identical uncached path.
    pub cache: Option<&'q dyn FeatureCacheStore>,
}

impl<'q> BatchShared<'q> {
    /// Wraps a batch for a pool of `workers`, with an optional batch-wide
    /// deadline, an optional per-query deadline slice (indexed like
    /// `queries`), an optional fault-injection plan and an optional shared
    /// feature cache.
    pub fn with_deadlines(
        queries: &'q [&'q Graph],
        workers: usize,
        deadline: Option<Instant>,
        per_query: Option<&'q [Option<Instant>]>,
        faults: Option<WaveFaults<'q>>,
        cache: Option<&'q dyn FeatureCacheStore>,
    ) -> Self {
        BatchShared {
            queue: BatchQueue::with_deadlines(queries, per_query),
            verify_queues: (0..workers).map(|_| StealDeque::default()).collect(),
            deadline,
            faults,
            cache,
        }
    }

    /// Pops a verify job: the worker's own deque first (LIFO, cache-hot),
    /// then round-robin stealing from the other workers' deques.
    fn pop_verify(&self, worker: usize) -> Option<VerifyJob<'q>> {
        if let Some(job) = self.verify_queues[worker].pop() {
            return Some(job);
        }
        let n = self.verify_queues.len();
        (1..n)
            .map(|offset| &self.verify_queues[(worker + offset) % n])
            .find_map(StealDeque::steal)
    }

    /// `true` when query `idx` may no longer start: either the batch-wide
    /// deadline or the query's own admission deadline has passed.
    fn past_deadline(&self, idx: usize) -> bool {
        let now = Instant::now();
        self.deadline.is_some_and(|d| now > d)
            || self.queue.deadline_of(idx).is_some_and(|d| now > d)
    }
}

/// The worker loop, with a bounded *filter-ahead* window: in a multi-worker
/// pool a worker keeps up to two filtered jobs parked before it starts
/// verifying, so while it filters query *i+1* its parked verify job for
/// query *i* is genuinely stealable by an idle worker — that window is what
/// makes the filter of one query overlap the verification of another. With
/// one worker the window shrinks to a single job (there is nobody to steal
/// it), which degenerates to strict claim → filter → verify batch order —
/// the sequential-runner semantics, order-dependent Tree+Δ learning
/// included. When no work is claimable or stealable the worker polls with
/// exponential backoff until the batch drains. Returns every query this
/// worker completed, tagged with its batch position and outcome.
///
/// # Panic isolation
///
/// Both pipeline stages run under `catch_unwind`: a query whose filter or
/// verification panics is recorded as [`QueryOutcome::Failed`] (losing at
/// most its in-flight arena set) and the worker keeps serving. Crucially
/// the poisoned query is still marked complete on the batch queue, so the
/// other workers' drain condition cannot deadlock on a claim that will
/// never finish. The loop itself therefore never unwinds across a claimed
/// query.
pub(super) fn worker_loop<'q>(
    worker: usize,
    shared: &BatchShared<'q>,
    index: &dyn GraphIndex,
    dataset: &Dataset,
    arena: &mut WorkerArena,
) -> Vec<(usize, QueryOutcome, Option<QueryRecord>)> {
    let filter_ahead = if shared.verify_queues.len() > 1 { 2 } else { 1 };
    let mut completed = Vec::new();
    let mut idle_rounds: u32 = 0;
    loop {
        // Stage 1: claim and filter while the local park is below the
        // filter-ahead bound (this also bounds in-flight arenas per worker).
        if shared.verify_queues[worker].len() < filter_ahead {
            if let Some((idx, query, queue_wait_s)) = shared.queue.claim() {
                idle_rounds = 0;
                if shared.past_deadline(idx) {
                    // Budget exhausted (or the query's own admission
                    // deadline expired) before this query started: skip it,
                    // like the sequential runner's "remaining queries are
                    // skipped" semantics.
                    completed.push((idx, QueryOutcome::TimedOut, None));
                    shared.queue.complete_one();
                    continue;
                }
                let mut set = arena.take_set();
                // `set` is only borrowed by the closure, so it survives an
                // unwind (possibly half-filtered — `filter_into` re-targets
                // it on next use, so recycling stays safe).
                let filtered = catch_unwind(AssertUnwindSafe(|| {
                    filter_stage(index, query, &mut set, shared.cache)
                }));
                match filtered {
                    Ok((filter_s, cache_probe_s)) => {
                        shared.verify_queues[worker].push(VerifyJob {
                            query_index: idx,
                            query,
                            candidates: set,
                            queue_wait_s,
                            cache_probe_s,
                            filter_s,
                        });
                    }
                    Err(_) => {
                        arena.recycle(set);
                        completed.push((idx, QueryOutcome::Failed, None));
                        shared.queue.complete_one();
                    }
                }
                continue;
            }
        }
        // Stage 2: verify parked work (own first, then stolen).
        if let Some(job) = shared.pop_verify(worker) {
            let idx = job.query_index;
            // The job (and its arena set) moves into the guarded closure:
            // on a panic mid-verification the set is dropped with the
            // unwind — the arena reallocates on next take — but the query
            // is still accounted for and the pool keeps serving.
            let verified = catch_unwind(AssertUnwindSafe(|| {
                if let Some(faults) = &shared.faults {
                    faults.plan.fire_verify_panic(faults.tickets[idx]);
                }
                verify_stage(index, dataset, job)
            }));
            match verified {
                Ok((idx, record, set)) => {
                    arena.recycle(set);
                    completed.push((idx, QueryOutcome::Complete, Some(record)));
                }
                Err(_) => completed.push((idx, QueryOutcome::Failed, None)),
            }
            shared.queue.complete_one();
            idle_rounds = 0;
            continue;
        }
        if shared.queue.drained() {
            break;
        }
        // Another worker still owns in-flight jobs we might steal. Back
        // off exponentially (yield, then sleep up to ~1 ms) so a long
        // batch tail does not busy-burn a core per idle worker hammering
        // the cursor and every deque mutex.
        idle_rounds = (idle_rounds + 1).min(10);
        if idle_rounds <= 3 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(std::time::Duration::from_micros(1 << idle_rounds));
        }
    }
    completed
}
