//! Selective shard routing: decide, per query, which shards can possibly
//! hold a match — before any index is probed.
//!
//! The paper's central finding is that *filtering power* dominates query
//! cost: every graph an index prunes is a verification the matcher never
//! runs. Sharding adds a coarser tier to that funnel. A fanned-out wave
//! pays index probe + merge on every shard, even ones that provably
//! contain no match; the distributed subgraph-matching line of work
//! (partition signatures on billion-node graphs, NScale's
//! neighborhood-satisfying subgraph routing) skips those partitions with
//! per-partition summaries. [`Router`] is that summary tier here: each
//! shard carries a [`ShardSynopsis`] (label multiplicities, degree
//! histogram, edge label pairs, size maxima — computed once at partition
//! time), and a wave consults [`Router::plan`] to dispatch each query only
//! to shards whose synopsis admits it.
//!
//! Routing obeys the same **no-false-negative contract** as index
//! filtering: [`ShardSynopsis::admits`] is a sound necessary condition
//! (see its docs for the monotonicity argument), so a skipped shard
//! *provably* holds no answer and routed match sets stay bit-identical to
//! full fan-out. The routing-equivalence proptest and the `micro_routing`
//! bench's correctness gate enforce exactly that.

use sqbench_graph::{Dataset, Graph, GraphSynopsis, ShardSynopsis};

/// How a [`super::ShardedService`] wave chooses which shards to probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Probe every shard for every query (the pre-routing behaviour; the
    /// default).
    #[default]
    Fanout,
    /// Consult the per-shard [`ShardSynopsis`] and probe only shards that
    /// admit the query. Sound: skipped shards provably hold no match.
    Synopsis,
}

impl RoutingMode {
    /// Short name used in logs, CSV descriptions and bench ids.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingMode::Fanout => "fanout",
            RoutingMode::Synopsis => "routed",
        }
    }
}

/// The routing planner: one [`ShardSynopsis`] per shard, consulted before
/// each wave. Building it costs one pass over every shard's graphs;
/// consulting it costs one query-synopsis computation plus `O(shards)`
/// admissibility checks per query — orders of magnitude below a single
/// index probe.
#[derive(Debug, Clone)]
pub struct Router {
    synopses: Vec<ShardSynopsis>,
}

impl Router {
    /// Builds the router over the shards' dataset slices, in shard order.
    pub fn build<'a>(shards: impl IntoIterator<Item = &'a Dataset>) -> Self {
        Router {
            synopses: shards.into_iter().map(ShardSynopsis::of).collect(),
        }
    }

    /// Number of shards the router covers.
    pub fn shard_count(&self) -> usize {
        self.synopses.len()
    }

    /// The synopsis of one shard.
    pub fn synopsis(&self, shard: usize) -> &ShardSynopsis {
        &self.synopses[shard]
    }

    /// Widens one shard's synopsis in place with a newly inserted graph.
    /// Widening preserves the no-false-negative contract trivially: every
    /// bound only grows, so previously admitted queries stay admitted and
    /// the new graph's own subgraphs are now dominated too.
    pub fn absorb(&mut self, shard: usize, g: &GraphSynopsis) {
        self.synopses[shard].absorb(g);
    }

    /// Replaces one shard's synopsis wholesale — the removal path, which
    /// recomputes from the shard's live contents. The caller must supply a
    /// synopsis that still dominates every *live* graph (recomputing via
    /// [`ShardSynopsis::of`] over the mutated dataset does, because dead
    /// slots hold empty placeholder graphs that widen nothing).
    pub fn replace(&mut self, shard: usize, synopsis: ShardSynopsis) {
        self.synopses[shard] = synopsis;
    }

    /// Estimated heap bytes of all shard synopses — the memory the routing
    /// tier adds on top of the per-shard indexes.
    pub fn memory_bytes(&self) -> usize {
        self.synopses.iter().map(ShardSynopsis::memory_bytes).sum()
    }

    /// Routes one query: `mask[s]` is `true` iff shard `s` must be probed.
    pub fn route(&self, query: &Graph) -> Vec<bool> {
        let q = GraphSynopsis::of(query);
        self.synopses.iter().map(|s| s.admits(&q)).collect()
    }

    /// Plans a whole wave under `mode`: for each shard, the (ascending)
    /// wave indices of the queries it must serve. Under
    /// [`RoutingMode::Fanout`] every shard serves every query; under
    /// [`RoutingMode::Synopsis`] each query's synopsis is computed once
    /// and tested against every shard.
    pub fn plan(&self, queries: &[&Graph], mode: RoutingMode) -> Vec<Vec<usize>> {
        match mode {
            RoutingMode::Fanout => self
                .synopses
                .iter()
                .map(|_| (0..queries.len()).collect())
                .collect(),
            RoutingMode::Synopsis => {
                let query_synopses: Vec<GraphSynopsis> =
                    queries.iter().map(|q| GraphSynopsis::of(q)).collect();
                self.synopses
                    .iter()
                    .map(|shard| {
                        (0..queries.len())
                            .filter(|&qi| shard.admits(&query_synopses[qi]))
                            .collect()
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::GraphBuilder;

    fn mono_path(label: u32, n: usize) -> Graph {
        let labels = vec![label; n];
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        GraphBuilder::new(format!("p{label}x{n}"))
            .vertices(&labels)
            .edges(&edges)
            .build()
            .unwrap()
    }

    fn shard_of(label: u32, sizes: &[usize]) -> Dataset {
        Dataset::from_graphs(
            format!("shard-l{label}"),
            sizes.iter().map(|&n| mono_path(label, n)).collect(),
        )
    }

    #[test]
    fn router_routes_by_label_family_and_fanout_probes_all() {
        // Three label-disjoint shards; queries can only match their own.
        let shards = [shard_of(0, &[4, 5]), shard_of(1, &[4]), shard_of(2, &[6])];
        let router = Router::build(shards.iter());
        assert_eq!(router.shard_count(), 3);
        assert!(router.memory_bytes() > 0);
        let q0 = mono_path(0, 3);
        let q2 = mono_path(2, 3);
        assert_eq!(router.route(&q0), vec![true, false, false]);
        assert_eq!(router.route(&q2), vec![false, false, true]);

        let queries = [&q0, &q2];
        let routed = router.plan(&queries, RoutingMode::Synopsis);
        assert_eq!(routed, vec![vec![0], vec![], vec![1]]);
        let fanout = router.plan(&queries, RoutingMode::Fanout);
        assert_eq!(fanout, vec![vec![0, 1]; 3]);
    }

    #[test]
    fn router_rejects_oversized_queries_everywhere() {
        let shards = [shard_of(0, &[3]), shard_of(0, &[4])];
        let router = Router::build(shards.iter());
        // 5 vertices fit no single graph: admitted nowhere, probed nowhere.
        let too_big = mono_path(0, 5);
        assert_eq!(router.route(&too_big), vec![false, false]);
        // 4 vertices fit only the second shard's graph.
        assert_eq!(router.route(&mono_path(0, 4)), vec![false, true]);
        // Synopses are consultable individually.
        assert_eq!(router.synopsis(1).max_vertices, 4);
    }

    #[test]
    fn empty_wave_plans_are_empty_for_every_shard() {
        let shards = [shard_of(0, &[3]), Dataset::new("empty")];
        let router = Router::build(shards.iter());
        for mode in [RoutingMode::Fanout, RoutingMode::Synopsis] {
            assert_eq!(router.plan(&[], mode), vec![Vec::<usize>::new(); 2]);
        }
        assert_eq!(RoutingMode::Fanout.name(), "fanout");
        assert_eq!(RoutingMode::Synopsis.name(), "routed");
        assert_eq!(RoutingMode::default(), RoutingMode::Fanout);
    }
}
