//! Selective shard routing: decide, per query, which shards can possibly
//! hold a match — before any index is probed.
//!
//! The paper's central finding is that *filtering power* dominates query
//! cost: every graph an index prunes is a verification the matcher never
//! runs. Sharding adds a coarser tier to that funnel. A fanned-out wave
//! pays index probe + merge on every shard, even ones that provably
//! contain no match; the distributed subgraph-matching line of work
//! (partition signatures on billion-node graphs, NScale's
//! neighborhood-satisfying subgraph routing) skips those partitions with
//! per-partition summaries. [`Router`] is that summary tier here: each
//! shard carries a [`ShardSynopsis`] (label multiplicities, degree
//! histogram, edge label pairs, size maxima — computed once at partition
//! time), and a wave consults [`Router::plan`] to dispatch each query only
//! to shards whose synopsis admits it.
//!
//! Routing obeys the same **no-false-negative contract** as index
//! filtering: [`ShardSynopsis::admits`] is a sound necessary condition
//! (see its docs for the monotonicity argument), so a skipped shard
//! *provably* holds no answer and routed match sets stay bit-identical to
//! full fan-out. The routing-equivalence proptest and the `micro_routing`
//! bench's correctness gate enforce exactly that.

use sqbench_features::canonical::path_key;
use sqbench_features::paths::for_each_path;
use sqbench_features::Fingerprint;
use sqbench_graph::{Dataset, Graph, GraphSynopsis, ShardSynopsis};

/// Width of the per-shard routing fingerprints, in bits. A shard fingerprint
/// is the OR-fold of its member graphs' path fingerprints, so it saturates
/// faster than a single CT-Index graph fingerprint (4096 bits in the paper);
/// 2048 bits keeps the false-positive rate useful at a few hundred graphs
/// per shard while costing only 256 bytes per shard.
const ROUTE_FP_BITS: usize = 2048;

/// Maximum path length (in edges) hashed into routing fingerprints. Short
/// paths are cheap to enumerate at query time (the router pays this once per
/// query) and already separate label-content families well; longer paths
/// would sharpen shard refutation but make `route` itself slower.
const ROUTE_FP_MAX_PATH_EDGES: usize = 3;

/// Bloom probes per hashed path feature.
const ROUTE_FP_HASHES: usize = 2;

/// How a [`super::ShardedService`] wave chooses which shards to probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Probe every shard for every query (the pre-routing behaviour; the
    /// default).
    #[default]
    Fanout,
    /// Consult the per-shard [`ShardSynopsis`] bound checks; probe only
    /// shards that admit the query. Sound: skipped shards provably hold no
    /// match. Planning costs one query-synopsis computation per query —
    /// microseconds per wave.
    Synopsis,
    /// [`RoutingMode::Synopsis`] bounds *plus* the shard's path-feature
    /// routing fingerprint: a shard is probed only when the bounds admit
    /// the query *and* the shard fingerprint covers the query's. Refutes
    /// label-compatible but structure-incompatible shards the bounds
    /// cannot see, at the cost of enumerating the query's short paths at
    /// plan time (~10x the bounds-only plan cost, still well under one
    /// index probe — the `micro_hotloops` routing axis A/Bs the two).
    SynopsisFingerprint,
}

impl RoutingMode {
    /// Short name used in logs, CSV descriptions and bench ids.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingMode::Fanout => "fanout",
            RoutingMode::Synopsis => "routed",
            RoutingMode::SynopsisFingerprint => "routed-fp",
        }
    }
}

/// The routing planner: one [`ShardSynopsis`] per shard, consulted before
/// each wave. Building it costs one pass over every shard's graphs;
/// consulting it costs one query-synopsis computation plus `O(shards)`
/// admissibility checks per query — orders of magnitude below a single
/// index probe.
#[derive(Debug, Clone)]
pub struct Router {
    synopses: Vec<ShardSynopsis>,
    /// Per-shard OR-fold of the member graphs' path fingerprints. A query
    /// can only match inside shard `s` if `fingerprints[s]` covers the
    /// query's own path fingerprint: `q ⊆ g` implies every simple path of
    /// `q` occurs in `g`, so `g`'s fingerprint has every bit of `q`'s, and
    /// the shard OR-fold has every bit of `g`'s. Content refutation this
    /// buys is orthogonal to the bound checks in [`ShardSynopsis::admits`]
    /// — bounds refute on *counts*, fingerprints on *which* label
    /// sequences exist.
    fingerprints: Vec<Fingerprint>,
}

impl Router {
    /// Path fingerprint of a single graph, at the router's configuration.
    /// Empty graphs (e.g. tombstoned dataset slots) enumerate no paths and
    /// produce the all-zero fingerprint, which widens nothing when folded.
    pub fn graph_fingerprint(g: &Graph) -> Fingerprint {
        let mut fp = Fingerprint::new(ROUTE_FP_BITS);
        for_each_path(g, ROUTE_FP_MAX_PATH_EDGES, |labels, _| {
            fp.insert_key(&path_key(labels), ROUTE_FP_HASHES);
        });
        fp
    }

    /// OR-fold of the path fingerprints of every graph in `dataset` — the
    /// shard-level routing fingerprint.
    pub fn shard_fingerprint(dataset: &Dataset) -> Fingerprint {
        let mut fp = Fingerprint::new(ROUTE_FP_BITS);
        for (_, g) in dataset.iter() {
            fp.union_with(&Self::graph_fingerprint(g));
        }
        fp
    }

    /// Builds the router over the shards' dataset slices, in shard order.
    pub fn build<'a>(shards: impl IntoIterator<Item = &'a Dataset>) -> Self {
        let (synopses, fingerprints) = shards
            .into_iter()
            .map(|d| (ShardSynopsis::of(d), Self::shard_fingerprint(d)))
            .unzip();
        Router {
            synopses,
            fingerprints,
        }
    }

    /// Number of shards the router covers.
    pub fn shard_count(&self) -> usize {
        self.synopses.len()
    }

    /// The synopsis of one shard.
    pub fn synopsis(&self, shard: usize) -> &ShardSynopsis {
        &self.synopses[shard]
    }

    /// The routing fingerprint of one shard (for tests and diagnostics).
    pub fn fingerprint(&self, shard: usize) -> &Fingerprint {
        &self.fingerprints[shard]
    }

    /// Widens one shard's synopsis and fingerprint in place with a newly
    /// inserted graph. Widening preserves the no-false-negative contract
    /// trivially: every bound only grows and the fingerprint only gains
    /// bits, so previously admitted queries stay admitted and the new
    /// graph's own subgraphs are now dominated too.
    pub fn absorb(&mut self, shard: usize, graph: &Graph, synopsis: &GraphSynopsis) {
        self.synopses[shard].absorb(synopsis);
        self.fingerprints[shard].union_with(&Self::graph_fingerprint(graph));
    }

    /// Replaces one shard's synopsis and fingerprint wholesale — the
    /// removal path, which recomputes from the shard's live contents. The
    /// caller must supply values that still dominate every *live* graph
    /// (recomputing via [`ShardSynopsis::of`] / [`Router::shard_fingerprint`]
    /// over the mutated dataset does, because dead slots hold empty
    /// placeholder graphs that widen nothing).
    pub fn replace(&mut self, shard: usize, synopsis: ShardSynopsis, fingerprint: Fingerprint) {
        self.synopses[shard] = synopsis;
        self.fingerprints[shard] = fingerprint;
    }

    /// Estimated heap bytes of all shard synopses and routing fingerprints
    /// — the memory the routing tier adds on top of the per-shard indexes.
    pub fn memory_bytes(&self) -> usize {
        self.synopses
            .iter()
            .map(ShardSynopsis::memory_bytes)
            .sum::<usize>()
            + self
                .fingerprints
                .iter()
                .map(Fingerprint::memory_bytes)
                .sum::<usize>()
    }

    /// Routes one query through the bound checks: `mask[s]` is `true` iff
    /// shard `s` must be probed under [`RoutingMode::Synopsis`].
    pub fn route(&self, query: &Graph) -> Vec<bool> {
        let q = GraphSynopsis::of(query);
        self.synopses.iter().map(|s| s.admits(&q)).collect()
    }

    /// Routes one query through bounds *and* fingerprint
    /// ([`RoutingMode::SynopsisFingerprint`]): a shard is probed only when
    /// its bound synopsis admits the query and its routing fingerprint
    /// covers the query's — both checks are sound necessary conditions, so
    /// their conjunction is too, and every shard [`Router::route`] skips is
    /// skipped here as well (the conjunction only prunes more).
    pub fn route_fingerprint(&self, query: &Graph) -> Vec<bool> {
        let q = GraphSynopsis::of(query);
        let q_fp = Self::graph_fingerprint(query);
        self.synopses
            .iter()
            .zip(self.fingerprints.iter())
            .map(|(s, fp)| s.admits(&q) && fp.covers(&q_fp))
            .collect()
    }

    /// Plans a whole wave under `mode`: for each shard, the (ascending)
    /// wave indices of the queries it must serve. Under
    /// [`RoutingMode::Fanout`] every shard serves every query; under
    /// [`RoutingMode::Synopsis`] each query's synopsis is computed once and
    /// bound-tested against every shard; [`RoutingMode::SynopsisFingerprint`]
    /// additionally computes each query's path fingerprint once and demands
    /// shard-fingerprint coverage.
    pub fn plan(&self, queries: &[&Graph], mode: RoutingMode) -> Vec<Vec<usize>> {
        match mode {
            RoutingMode::Fanout => self
                .synopses
                .iter()
                .map(|_| (0..queries.len()).collect())
                .collect(),
            RoutingMode::Synopsis => {
                let query_synopses: Vec<GraphSynopsis> =
                    queries.iter().map(|q| GraphSynopsis::of(q)).collect();
                self.synopses
                    .iter()
                    .map(|shard| {
                        (0..queries.len())
                            .filter(|&qi| shard.admits(&query_synopses[qi]))
                            .collect()
                    })
                    .collect()
            }
            RoutingMode::SynopsisFingerprint => {
                let query_synopses: Vec<GraphSynopsis> =
                    queries.iter().map(|q| GraphSynopsis::of(q)).collect();
                let query_fps: Vec<Fingerprint> =
                    queries.iter().map(|q| Self::graph_fingerprint(q)).collect();
                self.synopses
                    .iter()
                    .zip(self.fingerprints.iter())
                    .map(|(shard, shard_fp)| {
                        (0..queries.len())
                            .filter(|&qi| {
                                shard.admits(&query_synopses[qi]) && shard_fp.covers(&query_fps[qi])
                            })
                            .collect()
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::GraphBuilder;

    fn mono_path(label: u32, n: usize) -> Graph {
        let labels = vec![label; n];
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        GraphBuilder::new(format!("p{label}x{n}"))
            .vertices(&labels)
            .edges(&edges)
            .build()
            .unwrap()
    }

    fn shard_of(label: u32, sizes: &[usize]) -> Dataset {
        Dataset::from_graphs(
            format!("shard-l{label}"),
            sizes.iter().map(|&n| mono_path(label, n)).collect(),
        )
    }

    #[test]
    fn router_routes_by_label_family_and_fanout_probes_all() {
        // Three label-disjoint shards; queries can only match their own.
        let shards = [shard_of(0, &[4, 5]), shard_of(1, &[4]), shard_of(2, &[6])];
        let router = Router::build(shards.iter());
        assert_eq!(router.shard_count(), 3);
        assert!(router.memory_bytes() > 0);
        let q0 = mono_path(0, 3);
        let q2 = mono_path(2, 3);
        assert_eq!(router.route(&q0), vec![true, false, false]);
        assert_eq!(router.route(&q2), vec![false, false, true]);

        let queries = [&q0, &q2];
        let routed = router.plan(&queries, RoutingMode::Synopsis);
        assert_eq!(routed, vec![vec![0], vec![], vec![1]]);
        let fanout = router.plan(&queries, RoutingMode::Fanout);
        assert_eq!(fanout, vec![vec![0, 1]; 3]);
    }

    #[test]
    fn router_rejects_oversized_queries_everywhere() {
        let shards = [shard_of(0, &[3]), shard_of(0, &[4])];
        let router = Router::build(shards.iter());
        // 5 vertices fit no single graph: admitted nowhere, probed nowhere.
        let too_big = mono_path(0, 5);
        assert_eq!(router.route(&too_big), vec![false, false]);
        // 4 vertices fit only the second shard's graph.
        assert_eq!(router.route(&mono_path(0, 4)), vec![false, true]);
        // Synopses are consultable individually.
        assert_eq!(router.synopsis(1).max_vertices, 4);
    }

    #[test]
    fn empty_wave_plans_are_empty_for_every_shard() {
        let shards = [shard_of(0, &[3]), Dataset::new("empty")];
        let router = Router::build(shards.iter());
        for mode in [
            RoutingMode::Fanout,
            RoutingMode::Synopsis,
            RoutingMode::SynopsisFingerprint,
        ] {
            assert_eq!(router.plan(&[], mode), vec![Vec::<usize>::new(); 2]);
        }
        assert_eq!(RoutingMode::Fanout.name(), "fanout");
        assert_eq!(RoutingMode::Synopsis.name(), "routed");
        assert_eq!(RoutingMode::SynopsisFingerprint.name(), "routed-fp");
        assert_eq!(RoutingMode::default(), RoutingMode::Fanout);
    }

    #[test]
    fn fingerprint_refutes_label_compatible_decoy_shards() {
        // The decoy shard carries the chain's label inventory and (7,7)
        // edge pairs as disconnected single edges, plus an out-of-palette
        // hub that satisfies the degree histogram — so every count bound
        // admits the chain query, but no 7-7-7 path exists and the path
        // fingerprint refutes it.
        let chain = mono_path(7, 4);
        let decoy = GraphBuilder::new("decoy")
            .vertices(&[7, 7, 7, 7, 7, 7, 9])
            .edges(&[(0, 1), (2, 3), (4, 5), (6, 0), (6, 2), (6, 4)])
            .build()
            .unwrap();
        let shards = [
            Dataset::from_graphs("real", vec![chain.clone()]),
            Dataset::from_graphs("decoy", vec![decoy]),
        ];
        let router = Router::build(shards.iter());
        let query = mono_path(7, 3);
        // Bounds alone admit both shards; the fingerprint drops the decoy.
        assert_eq!(router.route(&query), vec![true, true]);
        assert_eq!(router.route_fingerprint(&query), vec![true, false]);
        let queries = [&query];
        assert_eq!(
            router.plan(&queries, RoutingMode::Synopsis),
            vec![vec![0], vec![0]]
        );
        assert_eq!(
            router.plan(&queries, RoutingMode::SynopsisFingerprint),
            vec![vec![0], vec![]]
        );
        // The real shard's fingerprint covers the query's (soundness).
        assert!(router
            .fingerprint(0)
            .covers(&Router::graph_fingerprint(&query)));
    }
}
