//! One module per table/figure of the paper's evaluation section.
//!
//! | Module | Paper artifact | Sweep |
//! |---|---|---|
//! | [`table1`] | Table 1 | characteristics of the four (simulated) real datasets |
//! | [`fig1_real`] | Figure 1 | all metrics over the four real-like datasets |
//! | [`fig2_nodes`] | Figure 2 | varying the number of nodes per graph |
//! | [`fig3_density`] | Figure 3 | varying the graph density |
//! | [`fig4_query_size`] | Figure 4 | density sweep broken out per query size |
//! | [`fig5_labels`] | Figure 5 | varying the number of distinct labels |
//! | [`fig6_numgraphs`] | Figure 6 | varying the number of graphs in the dataset |
//! | [`fig7_shards`] | beyond the paper | varying the number of dataset shards of the sharded service |
//! | [`fig8_routing`] | beyond the paper | synopsis shard routing vs. full fan-out on a label-clustered dataset |
//! | [`ablations`] | beyond the paper | location info, path length, fingerprint width, mined-fragment size, build threads |
//!
//! Every module exposes a `run(&ExperimentScale) -> ExperimentReport`
//! (Figure 4 returns one report per query size). The sweeps honour the
//! scale's defaults for whatever parameter is *not* being varied, exactly
//! like the paper varies one parameter at a time around its "sane defaults".

pub mod ablations;
pub mod fig1_real;
pub mod fig2_nodes;
pub mod fig3_density;
pub mod fig4_query_size;
pub mod fig5_labels;
pub mod fig6_numgraphs;
pub mod fig7_shards;
pub mod fig8_routing;
pub mod table1;

use crate::report::ExperimentPoint;
use crate::runner::{run_methods, ExperimentScale, RunOptions};
use crate::service::ServiceOptions;
use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen, QueryWorkload};
use sqbench_graph::Dataset;

/// Generates a synthetic dataset with the scale's defaults, overriding any
/// of the four dataset parameters.
pub(crate) fn synthetic_dataset(
    scale: &ExperimentScale,
    avg_nodes: usize,
    avg_density: f64,
    label_count: u32,
    graph_count: usize,
) -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(graph_count)
            .with_avg_nodes(avg_nodes)
            .with_avg_density(avg_density)
            .with_label_count(label_count)
            .with_seed(scale.seed),
    )
    .generate()
}

/// Generates the query workloads (one per configured query size) for a
/// dataset at the given scale.
pub(crate) fn workloads_for(dataset: &Dataset, scale: &ExperimentScale) -> Vec<QueryWorkload> {
    QueryGen::new(scale.seed ^ 0x51_00_ad).generate_all_sizes(
        dataset,
        scale.queries_per_size,
        &scale.query_sizes,
    )
}

/// Runs all methods over one dataset/workload pair and wraps the result as
/// an [`ExperimentPoint`].
pub(crate) fn measure_point(
    x_label: impl Into<String>,
    x_value: f64,
    dataset: &Dataset,
    workloads: &[QueryWorkload],
    options: &RunOptions,
) -> ExperimentPoint {
    ExperimentPoint {
        x_label: x_label.into(),
        x_value,
        results: run_methods(dataset, workloads, options),
    }
}

/// The run options used by the experiments: default per-method parameters
/// (§4.1 of the paper) with the scale's time budget and service worker
/// count — every figure driver serves its workloads through the batch
/// query service at the scale's `query_threads`.
pub(crate) fn options_for(scale: &ExperimentScale) -> RunOptions {
    RunOptions {
        time_budget: scale.time_budget,
        service: ServiceOptions::new().workers(scale.query_threads),
        ..RunOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_dataset_honours_overrides() {
        let scale = ExperimentScale::smoke();
        let ds = synthetic_dataset(&scale, 15, 0.1, 3, 12);
        assert_eq!(ds.len(), 12);
        assert!(ds.distinct_label_count() <= 3);
    }

    #[test]
    fn workloads_cover_all_sizes() {
        let scale = ExperimentScale::smoke();
        let ds = synthetic_dataset(&scale, 15, 0.15, 4, 10);
        let workloads = workloads_for(&ds, &scale);
        assert_eq!(workloads.len(), scale.query_sizes.len());
        for (w, &size) in workloads.iter().zip(scale.query_sizes.iter()) {
            assert_eq!(w.edges_per_query, size);
            assert_eq!(w.len(), scale.queries_per_size);
        }
    }

    #[test]
    fn options_for_uses_scale_budget_and_workers() {
        let scale = ExperimentScale::smoke();
        let options = options_for(&scale);
        assert_eq!(options.time_budget, scale.time_budget);
        assert_eq!(options.methods.len(), 6);
        assert_eq!(options.service.workers, scale.query_threads);
    }
}
