//! Ablation studies for the design choices the paper (and DESIGN.md) call
//! out.
//!
//! These go beyond the paper's figures: each ablation isolates one design
//! dimension of the indexing methods and sweeps it while everything else is
//! held at the paper's defaults, over the same synthetic "sane defaults"
//! workload used by the scalability experiments.
//!
//! * [`location_info`] — Grapes (paths + start-vertex locations) vs.
//!   GraphGrepSX (paths + counts only) vs. the index-less scan: what the
//!   extra location information buys in filtering/verification and costs in
//!   space.
//! * [`path_length`] — the path-length limit of the two path-based methods
//!   (the paper fixes it at 4 following the Grapes authors).
//! * [`fingerprint_width`] — CT-Index's fingerprint width (the paper uses
//!   4096 bits): narrower fingerprints collide more and lose filtering
//!   power.
//! * [`feature_size`] — the maximum mined-fragment size of gIndex and
//!   Tree+Δ (the paper uses 10, which is exactly what makes them blow up on
//!   larger graphs).
//! * [`grapes_threads`] — Grapes' parallel index construction (the paper
//!   uses 6 threads).

use crate::experiments::{measure_point, synthetic_dataset, workloads_for};
use crate::report::ExperimentReport;
use crate::runner::{ExperimentScale, RunOptions};
use sqbench_index::{MethodConfig, MethodKind};

/// Default dataset/workload pair for the ablations.
fn default_setup(
    scale: &ExperimentScale,
) -> (
    sqbench_graph::Dataset,
    Vec<sqbench_generator::QueryWorkload>,
) {
    let dataset = synthetic_dataset(
        scale,
        scale.avg_nodes,
        scale.avg_density,
        scale.label_count,
        scale.graph_count,
    );
    let workloads = workloads_for(&dataset, scale);
    (dataset, workloads)
}

/// Grapes vs. GGSX vs. the sequential-scan baseline on the same dataset.
pub fn location_info(scale: &ExperimentScale) -> ExperimentReport {
    let (dataset, workloads) = default_setup(scale);
    let mut report = ExperimentReport::new(
        "ablation_location_info",
        "Effect of storing path location information (Grapes vs GGSX vs Scan)",
        format!(
            "{} graphs, {} nodes, density {}, {} labels",
            scale.graph_count, scale.avg_nodes, scale.avg_density, scale.label_count
        ),
    );
    let options = RunOptions {
        methods: vec![MethodKind::Grapes, MethodKind::Ggsx, MethodKind::Scan],
        config: MethodConfig::default(),
        time_budget: scale.time_budget,
        ..RunOptions::default()
    };
    report.push_point(measure_point(
        "sane-defaults",
        0.0,
        &dataset,
        &workloads,
        &options,
    ));
    report
}

/// Sweep of the maximum indexed path length for Grapes and GGSX.
pub fn path_length(scale: &ExperimentScale) -> ExperimentReport {
    let (dataset, workloads) = default_setup(scale);
    let mut report = ExperimentReport::new(
        "ablation_path_length",
        "Effect of the maximum indexed path length (Grapes, GGSX)",
        "path length swept over {2, 3, 4, 5}; all other parameters at paper defaults".to_string(),
    );
    for max_path_edges in [2usize, 3, 4, 5] {
        let mut config = MethodConfig::default();
        config.grapes.max_path_edges = max_path_edges;
        config.ggsx.max_path_edges = max_path_edges;
        let options = RunOptions {
            methods: vec![MethodKind::Grapes, MethodKind::Ggsx],
            config,
            time_budget: scale.time_budget,
            ..RunOptions::default()
        };
        report.push_point(measure_point(
            format!("len={max_path_edges}"),
            max_path_edges as f64,
            &dataset,
            &workloads,
            &options,
        ));
    }
    report
}

/// Sweep of the CT-Index fingerprint width.
pub fn fingerprint_width(scale: &ExperimentScale) -> ExperimentReport {
    let (dataset, workloads) = default_setup(scale);
    let mut report = ExperimentReport::new(
        "ablation_fingerprint_width",
        "Effect of the CT-Index fingerprint width",
        "width swept over {256, 1024, 4096} bits".to_string(),
    );
    for bits in [256usize, 1024, 4096] {
        let mut config = MethodConfig::default();
        config.ctindex.fingerprint_bits = bits;
        let options = RunOptions {
            methods: vec![MethodKind::CtIndex],
            config,
            time_budget: scale.time_budget,
            ..RunOptions::default()
        };
        report.push_point(measure_point(
            format!("{bits}bit"),
            bits as f64,
            &dataset,
            &workloads,
            &options,
        ));
    }
    report
}

/// Sweep of the maximum mined-fragment size for gIndex and Tree+Δ.
pub fn feature_size(scale: &ExperimentScale) -> ExperimentReport {
    let (dataset, workloads) = default_setup(scale);
    let mut report = ExperimentReport::new(
        "ablation_feature_size",
        "Effect of the maximum mined feature size (gIndex, Tree+Delta)",
        "maximum fragment size swept over {1, 2, 3} edges".to_string(),
    );
    for max_edges in [1usize, 2, 3] {
        let mut config = MethodConfig::default();
        config.gindex.max_feature_edges = max_edges;
        config.treedelta.max_feature_edges = max_edges;
        let options = RunOptions {
            methods: vec![MethodKind::GIndex, MethodKind::TreeDelta],
            config,
            time_budget: scale.time_budget,
            ..RunOptions::default()
        };
        report.push_point(measure_point(
            format!("{max_edges}edges"),
            max_edges as f64,
            &dataset,
            &workloads,
            &options,
        ));
    }
    report
}

/// Sweep of Grapes' worker thread count (index construction only matters;
/// queries are measured as well for completeness).
pub fn grapes_threads(scale: &ExperimentScale) -> ExperimentReport {
    let (dataset, workloads) = default_setup(scale);
    let mut report = ExperimentReport::new(
        "ablation_grapes_threads",
        "Effect of Grapes' parallel index construction",
        "worker threads swept over {1, 2, 4, 6}".to_string(),
    );
    for threads in [1usize, 2, 4, 6] {
        let mut config = MethodConfig::default();
        config.grapes.threads = threads;
        let options = RunOptions {
            methods: vec![MethodKind::Grapes],
            config,
            time_budget: scale.time_budget,
            ..RunOptions::default()
        };
        report.push_point(measure_point(
            format!("{threads}thr"),
            threads as f64,
            &dataset,
            &workloads,
            &options,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> ExperimentScale {
        ExperimentScale::smoke()
    }

    #[test]
    fn location_info_compares_three_configurations() {
        let report = location_info(&scale());
        assert_eq!(report.points.len(), 1);
        let names = report.method_names();
        assert_eq!(names, vec!["Grapes", "GGSX", "Scan"]);
        let point = &report.points[0];
        let by = |name: &str| point.results.iter().find(|m| m.method == name).unwrap();
        // Location info costs space.
        assert!(by("Grapes").index_size_bytes >= by("GGSX").index_size_bytes);
        // The scan has no filtering, so its FP ratio is at least as high as
        // either indexed method's.
        assert!(by("Scan").false_positive_ratio >= by("Grapes").false_positive_ratio - 1e-9);
        assert!(by("Scan").index_size_bytes < by("GGSX").index_size_bytes);
    }

    #[test]
    fn path_length_sweep_grows_index() {
        let report = path_length(&scale());
        assert_eq!(report.points.len(), 4);
        // Longer paths → more trie content for GGSX (monotone within noise).
        let sizes: Vec<usize> = (0..report.points.len())
            .map(|i| report.metrics_at(i, "GGSX").unwrap().index_size_bytes)
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "sizes {sizes:?}");
    }

    #[test]
    fn fingerprint_width_controls_index_size() {
        let report = fingerprint_width(&scale());
        assert_eq!(report.points.len(), 3);
        let sizes: Vec<usize> = (0..3)
            .map(|i| report.metrics_at(i, "CT-Index").unwrap().index_size_bytes)
            .collect();
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2]);
        // Wider fingerprints never increase the false positive ratio
        // (fewer hash collisions), modulo the tiny workload noise.
        let fps: Vec<f64> = (0..3)
            .map(|i| {
                report
                    .metrics_at(i, "CT-Index")
                    .unwrap()
                    .false_positive_ratio
            })
            .collect();
        assert!(fps[2] <= fps[0] + 1e-9, "fp ratios {fps:?}");
    }

    #[test]
    fn feature_size_sweep_runs_both_mining_methods() {
        let report = feature_size(&scale());
        assert_eq!(report.points.len(), 3);
        for i in 0..3 {
            assert!(report.metrics_at(i, "gIndex").is_some());
            assert!(report.metrics_at(i, "Tree+Delta").is_some());
        }
        // Larger fragments → at least as many mined features for gIndex.
        let features: Vec<usize> = (0..3)
            .map(|i| report.metrics_at(i, "gIndex").unwrap().distinct_features)
            .collect();
        assert!(features.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn grapes_thread_sweep_produces_identical_answers() {
        let report = grapes_threads(&scale());
        assert_eq!(report.points.len(), 4);
        // Query metrics should be identical regardless of build threads: the
        // FP ratio (a pure function of the index contents) must match.
        let fps: Vec<f64> = (0..4)
            .map(|i| report.metrics_at(i, "Grapes").unwrap().false_positive_ratio)
            .collect();
        for fp in &fps {
            assert!((fp - fps[0]).abs() < 1e-12);
        }
    }
}
