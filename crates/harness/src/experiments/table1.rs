//! Table 1: characteristics of the real datasets.
//!
//! The paper's Table 1 lists, for AIDS, PDBS, PCM and PPI: the number of
//! graphs, the number of disconnected graphs, the number of distinct labels,
//! and per-graph averages (nodes, node-count standard deviation, edges,
//! density, degree, labels). This experiment generates the simulated
//! stand-ins at the requested scale, measures the same statistics, and
//! reports them side by side with the published values so the fidelity of
//! the substitution (see DESIGN.md) can be audited.

use crate::runner::ExperimentScale;
use serde::{Deserialize, Serialize};
use sqbench_generator::RealDataset;
use sqbench_graph::DatasetStats;

/// Published vs. measured characteristics for one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Dataset name (AIDS, PDBS, PCM, PPI).
    pub dataset: String,
    /// The scale factor the simulated dataset was generated at.
    pub scale: f64,
    /// Statistics published in the paper's Table 1.
    pub published: PublishedStats,
    /// Statistics measured on the simulated dataset.
    pub measured: DatasetStats,
}

/// The published Table 1 numbers (independent of scale).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedStats {
    /// Number of graphs.
    pub graph_count: usize,
    /// Number of disconnected graphs.
    pub disconnected_graphs: usize,
    /// Number of distinct labels.
    pub label_count: u32,
    /// Average number of nodes per graph.
    pub avg_nodes: f64,
    /// Average number of edges per graph.
    pub avg_edges: f64,
    /// Average degree.
    pub avg_degree: f64,
    /// Average number of distinct labels per graph.
    pub avg_labels_per_graph: f64,
}

/// The Table 1 report: one row per real dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Report {
    /// One row per dataset.
    pub rows: Vec<Table1Row>,
}

impl Table1Report {
    /// Renders the report as text, published vs. measured.
    pub fn render_text(&self) -> String {
        let mut out =
            String::from("# Table 1 — real dataset characteristics (published vs. simulated)\n");
        for row in &self.rows {
            out.push_str(&format!(
                "\n{} (scale {}):\n  published: graphs={} labels={} avg_nodes={:.1} avg_edges={:.1} avg_degree={:.2} avg_labels={:.1}\n  measured : {}\n",
                row.dataset,
                row.scale,
                row.published.graph_count,
                row.published.label_count,
                row.published.avg_nodes,
                row.published.avg_edges,
                row.published.avg_degree,
                row.published.avg_labels_per_graph,
                row.measured.to_table_row(),
            ));
        }
        out
    }
}

/// Runs the Table 1 experiment at the given scale.
pub fn run(scale: &ExperimentScale) -> Table1Report {
    let rows = RealDataset::ALL
        .iter()
        .map(|dataset| {
            let spec = dataset.spec();
            let ds = dataset.generate(scale.real_dataset_scale, scale.seed);
            Table1Row {
                dataset: dataset.name().to_string(),
                scale: scale.real_dataset_scale,
                published: PublishedStats {
                    graph_count: spec.graph_count,
                    disconnected_graphs: spec.disconnected_graphs,
                    label_count: spec.label_count,
                    avg_nodes: spec.avg_nodes,
                    avg_edges: spec.avg_edges,
                    avg_degree: spec.avg_degree(),
                    avg_labels_per_graph: spec.avg_labels_per_graph,
                },
                measured: DatasetStats::of(&ds),
            }
        })
        .collect();
    Table1Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_rows() {
        let report = run(&ExperimentScale::smoke());
        assert_eq!(report.rows.len(), 4);
        let names: Vec<&str> = report.rows.iter().map(|r| r.dataset.as_str()).collect();
        assert_eq!(names, vec!["AIDS", "PDBS", "PCM", "PPI"]);
    }

    #[test]
    fn measured_regimes_track_published_regimes() {
        let report = run(&ExperimentScale::smoke());
        let by_name = |n: &str| report.rows.iter().find(|r| r.dataset == n).unwrap();
        // AIDS has (scaled) many more graphs than PPI.
        assert!(by_name("AIDS").measured.graph_count > by_name("PPI").measured.graph_count);
        // PCM stays the densest dataset; AIDS/PDBS stay sparse.
        assert!(by_name("PCM").measured.avg_degree > by_name("AIDS").measured.avg_degree);
        assert!(by_name("PCM").measured.avg_degree > by_name("PDBS").measured.avg_degree);
    }

    #[test]
    fn rendering_mentions_every_dataset() {
        let report = run(&ExperimentScale::smoke());
        let text = report.render_text();
        for name in ["AIDS", "PDBS", "PCM", "PPI"] {
            assert!(text.contains(name));
        }
        assert!(text.contains("published"));
        assert!(text.contains("measured"));
    }
}
