//! Figure 6: scalability with the number of graphs in the dataset.
//!
//! The paper sweeps the dataset size from 1 000 to 500 000 graphs at the
//! sane defaults. All metrics are expected to scale roughly linearly with
//! the number of graphs while the false positive ratio stays flat; the
//! interesting part is which methods hit their time/memory limits first
//! (gIndex around 10k graphs, the other mining/encoding methods between 50k
//! and 100k, Grapes by memory at the largest sizes, GGSX last).

use crate::experiments::{measure_point, options_for, synthetic_dataset, workloads_for};
use crate::report::ExperimentReport;
use crate::runner::ExperimentScale;

/// The graph-count sweep used at a given scale, anchored at the scale's
/// default dataset size.
pub fn sweep_for(scale: &ExperimentScale) -> Vec<usize> {
    let base = scale.graph_count.max(4);
    vec![base / 4, base / 2, base, base * 2]
}

/// Runs the Figure 6 experiment at the given scale.
pub fn run(scale: &ExperimentScale) -> ExperimentReport {
    let sweep = sweep_for(scale);
    let mut report = ExperimentReport::new(
        "fig6_numgraphs",
        "Scalability with the number of graphs in the dataset (Figure 6)",
        format!(
            "graph-count sweep {:?}, {} nodes, density {}, {} labels",
            sweep, scale.avg_nodes, scale.avg_density, scale.label_count
        ),
    );
    let options = options_for(scale);
    // Generate the largest dataset once and truncate it for the smaller
    // points, so the smaller datasets are strict prefixes (the same trick
    // keeps the workloads comparable across points).
    let largest = *sweep.last().expect("sweep is non-empty");
    let full = synthetic_dataset(
        scale,
        scale.avg_nodes,
        scale.avg_density,
        scale.label_count,
        largest,
    );
    for count in sweep {
        let dataset = full.truncated(count);
        let workloads = workloads_for(&dataset, scale);
        report.push_point(measure_point(
            format!("{count}"),
            count as f64,
            &dataset,
            &workloads,
            &options,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_increasing_and_contains_default() {
        let scale = ExperimentScale::smoke();
        let sweep = sweep_for(&scale);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert!(sweep.contains(&scale.graph_count));
    }

    #[test]
    fn smoke_run_produces_all_points() {
        let report = run(&ExperimentScale::smoke());
        assert_eq!(report.points.len(), 4);
        for point in &report.points {
            assert_eq!(point.results.len(), 6);
        }
        // Dataset size grows along the x axis.
        assert!(report
            .points
            .windows(2)
            .all(|w| w[0].x_value < w[1].x_value));
    }
}
