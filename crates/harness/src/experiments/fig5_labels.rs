//! Figure 5: sensitivity to the number of distinct labels.
//!
//! The paper sweeps the label alphabet from 10 to 80 at the sane defaults.
//! More labels means less overlap between edges of different graphs, which
//! helps every method's filtering power but hurts (gIndex) or helps
//! (Tree+Δ) the frequent-mining index construction depending on the mining
//! heuristics; with only 10 labels the mining methods blow up because every
//! small fragment is frequent.

use crate::experiments::{measure_point, options_for, synthetic_dataset, workloads_for};
use crate::report::ExperimentReport;
use crate::runner::ExperimentScale;

/// The label sweep used at a given scale (the paper's 10–80 range).
pub fn sweep_for(scale: &ExperimentScale) -> Vec<u32> {
    let base = scale.label_count.max(2);
    vec![base / 2, base, base * 2, base * 4]
}

/// Runs the Figure 5 experiment at the given scale.
pub fn run(scale: &ExperimentScale) -> ExperimentReport {
    let sweep = sweep_for(scale);
    let mut report = ExperimentReport::new(
        "fig5_labels",
        "Sensitivity to the number of distinct labels (Figure 5)",
        format!(
            "label sweep {:?}, {} nodes, density {}, {} graphs",
            sweep, scale.avg_nodes, scale.avg_density, scale.graph_count
        ),
    );
    let options = options_for(scale);
    for labels in sweep {
        let dataset = synthetic_dataset(
            scale,
            scale.avg_nodes,
            scale.avg_density,
            labels,
            scale.graph_count,
        );
        let workloads = workloads_for(&dataset, scale);
        report.push_point(measure_point(
            format!("{labels}"),
            labels as f64,
            &dataset,
            &workloads,
            &options,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_increasing() {
        let sweep = sweep_for(&ExperimentScale::smoke());
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(sweep.len(), 4);
    }

    #[test]
    fn smoke_run_produces_all_points() {
        let report = run(&ExperimentScale::smoke());
        assert_eq!(report.points.len(), 4);
        for point in &report.points {
            assert_eq!(point.results.len(), 6);
        }
    }
}
