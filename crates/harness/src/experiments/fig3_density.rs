//! Figure 3: scalability with graph density.
//!
//! The paper sweeps density from 0.005 to 0.3 at the sane defaults (200
//! nodes, 20 labels, 1000 graphs). At fixed node count the edge count grows
//! linearly with density, so the effect resembles Figure 2 with a gentler
//! slope; only Grapes and GGSX survive the densest settings.

use crate::experiments::{measure_point, options_for, synthetic_dataset, workloads_for};
use crate::report::ExperimentReport;
use crate::runner::ExperimentScale;

/// The density sweep used at a given scale, anchored at the scale's default
/// density and spanning a 20× range like the paper's grid.
pub fn sweep_for(scale: &ExperimentScale) -> Vec<f64> {
    let base = scale.avg_density.max(1e-4);
    vec![base / 5.0, base / 2.0, base, base * 2.0, base * 4.0]
}

/// Runs the Figure 3 experiment at the given scale.
pub fn run(scale: &ExperimentScale) -> ExperimentReport {
    let sweep = sweep_for(scale);
    let mut report = ExperimentReport::new(
        "fig3_density",
        "Scalability with graph density (Figure 3)",
        format!(
            "density sweep {:?}, {} nodes, {} labels, {} graphs",
            sweep, scale.avg_nodes, scale.label_count, scale.graph_count
        ),
    );
    let options = options_for(scale);
    for density in sweep {
        let dataset = synthetic_dataset(
            scale,
            scale.avg_nodes,
            density,
            scale.label_count,
            scale.graph_count,
        );
        let workloads = workloads_for(&dataset, scale);
        report.push_point(measure_point(
            format!("{density:.4}"),
            density,
            &dataset,
            &workloads,
            &options,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_spans_the_default() {
        let scale = ExperimentScale::smoke();
        let sweep = sweep_for(&scale);
        assert_eq!(sweep.len(), 5);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert!(sweep.iter().any(|d| (d - scale.avg_density).abs() < 1e-12));
    }

    #[test]
    fn smoke_run_produces_all_points() {
        let report = run(&ExperimentScale::smoke());
        assert_eq!(report.points.len(), 5);
        for point in &report.points {
            assert_eq!(point.results.len(), 6);
        }
    }
}
