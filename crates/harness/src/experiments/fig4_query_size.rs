//! Figure 4: query processing time vs. density, per query size.
//!
//! Figure 4 of the paper breaks the density sweep of Figure 3 out by query
//! size (4, 8, 16, 32 edges): exhaustive-enumeration methods are largely
//! insensitive to the query size, frequent-mining methods and the densest
//! settings are not. This experiment therefore produces one report per
//! query size, each with the same density x-axis.

use crate::experiments::{fig3_density, measure_point, options_for, synthetic_dataset};
use crate::report::ExperimentReport;
use crate::runner::ExperimentScale;
use sqbench_generator::QueryGen;

/// Runs the Figure 4 experiment at the given scale: one report per query
/// size, in the order of `scale.query_sizes`.
pub fn run(scale: &ExperimentScale) -> Vec<ExperimentReport> {
    let sweep = fig3_density::sweep_for(scale);
    let options = options_for(scale);
    // Pre-generate the datasets once per density; each query size reuses them.
    let datasets: Vec<_> = sweep
        .iter()
        .map(|&density| {
            (
                density,
                synthetic_dataset(
                    scale,
                    scale.avg_nodes,
                    density,
                    scale.label_count,
                    scale.graph_count,
                ),
            )
        })
        .collect();

    scale
        .query_sizes
        .iter()
        .map(|&query_size| {
            let mut report = ExperimentReport::new(
                format!("fig4_qsize{query_size}"),
                format!("Query processing vs. density for {query_size}-edge queries (Figure 4)"),
                format!(
                    "density sweep {:?}, {} nodes, {} labels, {} graphs, query size {}",
                    sweep, scale.avg_nodes, scale.label_count, scale.graph_count, query_size
                ),
            );
            for (density, dataset) in &datasets {
                let workload = QueryGen::new(scale.seed ^ 0x51_00_ad).generate(
                    dataset,
                    scale.queries_per_size,
                    query_size,
                );
                report.push_point(measure_point(
                    format!("{density:.4}"),
                    *density,
                    dataset,
                    std::slice::from_ref(&workload),
                    &options,
                ));
            }
            report
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_report_per_query_size() {
        let scale = ExperimentScale::smoke();
        let reports = run(&scale);
        assert_eq!(reports.len(), scale.query_sizes.len());
        for (report, &size) in reports.iter().zip(scale.query_sizes.iter()) {
            assert!(report.id.contains(&size.to_string()));
            assert_eq!(report.points.len(), 5);
            for point in &report.points {
                assert_eq!(point.results.len(), 6);
            }
        }
    }
}
