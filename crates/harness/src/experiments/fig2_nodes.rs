//! Figure 2: scalability with the number of nodes per graph.
//!
//! The paper sweeps the mean number of nodes from 50 to 2000 (indexing) and
//! up to 800 (query processing), holding density (0.025), labels (20) and
//! graph count (1000) at the sane defaults. A linear increase in nodes means
//! a quadratic increase in edges at fixed density, which is what breaks the
//! frequent-mining methods first.

use crate::experiments::{measure_point, options_for, synthetic_dataset, workloads_for};
use crate::report::ExperimentReport;
use crate::runner::ExperimentScale;

/// The node-count sweep used at a given scale: a laptop-sized subset of the
/// paper's grid, anchored at the scale's default node count.
pub fn sweep_for(scale: &ExperimentScale) -> Vec<usize> {
    let base = scale.avg_nodes.max(10);
    vec![base / 2, (3 * base) / 4, base, (3 * base) / 2, 2 * base]
}

/// Runs the Figure 2 experiment at the given scale.
pub fn run(scale: &ExperimentScale) -> ExperimentReport {
    let sweep = sweep_for(scale);
    let mut report = ExperimentReport::new(
        "fig2_nodes",
        "Scalability with the number of nodes per graph (Figure 2)",
        format!(
            "node sweep {:?}, density {}, {} labels, {} graphs",
            sweep, scale.avg_density, scale.label_count, scale.graph_count
        ),
    );
    let options = options_for(scale);
    for nodes in sweep {
        let dataset = synthetic_dataset(
            scale,
            nodes,
            scale.avg_density,
            scale.label_count,
            scale.graph_count,
        );
        let workloads = workloads_for(&dataset, scale);
        report.push_point(measure_point(
            format!("{nodes}"),
            nodes as f64,
            &dataset,
            &workloads,
            &options,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_increasing_and_anchored_at_default() {
        let scale = ExperimentScale::smoke();
        let sweep = sweep_for(&scale);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert!(sweep.contains(&scale.avg_nodes));
    }

    #[test]
    fn smoke_run_produces_all_points() {
        let report = run(&ExperimentScale::smoke());
        assert_eq!(report.points.len(), 5);
        for point in &report.points {
            assert_eq!(point.results.len(), 6);
            assert!(point.x_value > 0.0);
        }
        // x values strictly increase, as in the paper's x axis.
        assert!(report
            .points
            .windows(2)
            .all(|w| w[0].x_value < w[1].x_value));
    }
}
