//! Figure 1: indexing and query processing over the four real datasets.
//!
//! Panels: (a) indexing time, (b) index size, (c) query processing time,
//! (d) false positive ratio — one bar group per dataset (AIDS, PDBS, PCM,
//! PPI), one bar per method. This experiment runs the same measurement over
//! the simulated stand-ins of the real datasets.

use crate::experiments::{measure_point, options_for, workloads_for};
use crate::report::ExperimentReport;
use crate::runner::ExperimentScale;
use sqbench_generator::RealDataset;

/// Runs the Figure 1 experiment at the given scale.
pub fn run(scale: &ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig1_real",
        "Indexing and query processing over the real datasets (Figure 1)",
        format!(
            "AIDS/PDBS/PCM/PPI-like datasets at scale {}, query sizes {:?}, {} queries per size",
            scale.real_dataset_scale, scale.query_sizes, scale.queries_per_size
        ),
    );
    let options = options_for(scale);
    for (position, dataset_kind) in RealDataset::ALL.iter().enumerate() {
        let dataset = dataset_kind.generate(scale.real_dataset_scale, scale.seed);
        let workloads = workloads_for(&dataset, scale);
        report.push_point(measure_point(
            dataset_kind.name(),
            position as f64,
            &dataset,
            &workloads,
            &options,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_covers_all_datasets_and_methods() {
        let report = run(&ExperimentScale::smoke());
        assert_eq!(report.points.len(), 4);
        for point in &report.points {
            assert_eq!(point.results.len(), 6);
        }
        let labels: Vec<&str> = report.points.iter().map(|p| p.x_label.as_str()).collect();
        assert_eq!(labels, vec!["AIDS", "PDBS", "PCM", "PPI"]);
    }

    #[test]
    fn report_is_renderable() {
        let report = run(&ExperimentScale::smoke());
        let text = crate::report::render_text(&report);
        assert!(text.contains("fig1_real"));
        assert!(text.contains("AIDS"));
    }
}
