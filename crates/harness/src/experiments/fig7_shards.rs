//! Beyond the paper: shard-count sweep of the sharded query service.
//!
//! The paper's study ends at one index over one dataset. This experiment
//! asks the next question — how the four metrics move when the dataset is
//! partitioned over N cooperating shard services (one index per shard,
//! every query fanned out to all shards and merged): indexing time falls
//! per shard but feature mining over smaller slices changes filtering
//! power, so the false positive ratio drifts while answer sets stay
//! exact. Run once per partitioning strategy to compare round-robin,
//! size-balanced and label-aware placement; the per-shard CSV columns
//! (`shards`, `max_shard_time_s`, `shard_balance`,
//! `partition_overhead_bytes`) carry the balance and memory view —
//! partitioning shares graph storage with the source dataset, so the
//! overhead column stays pointer-sized at every point.

use crate::experiments::{measure_point, options_for, synthetic_dataset, workloads_for};
use crate::report::ExperimentReport;
use crate::runner::ExperimentScale;
use crate::service::ShardStrategy;

/// The shard counts swept at a given scale: 1 (the unsharded baseline),
/// then powers of two up to 8, capped so no point has more shards than
/// graphs.
pub fn sweep_for(scale: &ExperimentScale) -> Vec<usize> {
    [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&n| n <= scale.graph_count.max(1))
        .collect()
}

/// Runs the shard-count sweep with the given partitioning strategy at the
/// given scale.
pub fn run_with_strategy(scale: &ExperimentScale, strategy: ShardStrategy) -> ExperimentReport {
    let sweep = sweep_for(scale);
    let mut report = ExperimentReport::new(
        format!("fig7_shards_{}", strategy.name().replace('-', "_")),
        "Scalability with the number of dataset shards (beyond the paper)",
        format!(
            "shard-count sweep {:?} ({} placement), {} graphs, {} nodes, density {}, {} labels",
            sweep,
            strategy.name(),
            scale.graph_count,
            scale.avg_nodes,
            scale.avg_density,
            scale.label_count
        ),
    );
    let dataset = synthetic_dataset(
        scale,
        scale.avg_nodes,
        scale.avg_density,
        scale.label_count,
        scale.graph_count,
    );
    let workloads = workloads_for(&dataset, scale);
    for shards in sweep {
        let options = options_for(scale)
            .with_shards(shards)
            .with_shard_strategy(strategy);
        report.push_point(measure_point(
            format!("{shards}"),
            shards as f64,
            &dataset,
            &workloads,
            &options,
        ));
    }
    report
}

/// Runs the shard-count sweep with round-robin placement (the default).
pub fn run(scale: &ExperimentScale) -> ExperimentReport {
    run_with_strategy(scale, ShardStrategy::RoundRobin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_starts_unsharded_and_grows() {
        let sweep = sweep_for(&ExperimentScale::smoke());
        assert_eq!(sweep[0], 1);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert!(sweep.iter().all(|&n| n <= 16));
    }

    #[test]
    fn smoke_run_reports_shard_columns_and_exact_answers() {
        let scale = ExperimentScale::smoke();
        let report = run(&scale);
        assert_eq!(report.points.len(), sweep_for(&scale).len());
        for point in &report.points {
            assert_eq!(point.results.len(), 6);
            for m in &point.results {
                assert!(
                    !m.timed_out,
                    "{} timed out at {} shards",
                    m.method, point.x_label
                );
                assert_eq!(m.shards, point.x_value as usize);
                if m.shards > 1 {
                    assert_eq!(m.shard_stages.len(), m.shards);
                }
                assert!(m.shard_balance() >= 0.0 && m.shard_balance() <= 1.0);
            }
        }
        // Every method executes the full workload at every shard count —
        // sharding must not lose queries.
        let executed: Vec<usize> = report
            .points
            .iter()
            .flat_map(|p| p.results.iter().map(|m| m.queries_executed))
            .collect();
        assert!(executed.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn size_balanced_strategy_runs_too() {
        let scale = ExperimentScale::smoke();
        let report = run_with_strategy(&scale, ShardStrategy::SizeBalanced);
        assert!(report.id.contains("size_balanced"));
        assert_eq!(report.points.len(), sweep_for(&scale).len());
    }

    #[test]
    fn label_aware_strategy_runs_and_reports_pointer_sized_overhead() {
        let scale = ExperimentScale::smoke();
        let report = run_with_strategy(&scale, ShardStrategy::LabelAware);
        assert!(report.id.contains("label_aware"));
        assert_eq!(report.points.len(), sweep_for(&scale).len());
        for point in &report.points {
            for m in &point.results {
                if m.shards > 1 {
                    // Zero-copy partition: the overhead column carries the
                    // Arc spines, roughly one pointer per graph per shard
                    // layout — never a second copy of the dataset.
                    assert!(m.partition_overhead_bytes > 0);
                    assert!(
                        m.partition_overhead_bytes
                            <= scale.graph_count * 2 * std::mem::size_of::<usize>(),
                        "{}: overhead {} is not pointer-sized",
                        m.method,
                        m.partition_overhead_bytes
                    );
                } else {
                    assert_eq!(m.partition_overhead_bytes, 0);
                }
            }
        }
    }
}
