//! Beyond the paper: selective shard routing vs. full fan-out.
//!
//! The paper's central finding is that filtering power dominates query
//! cost; the routing tier applies the same idea one level up, pruning
//! whole *shards* instead of graphs. This experiment measures it where it
//! matters: a **label-clustered** dataset (four label-disjoint graph
//! families, interleaved so round-robin placement keeps families
//! shard-coherent) served at several shard counts, once with full fan-out
//! and once with synopsis routing. Match sets are identical by
//! construction (routing is sound); the routed runs' `shards_probed` /
//! `shards_skipped` CSV columns show how many index probes the synopses
//! saved, and query/filter times show what that buys end to end.

use crate::experiments::{measure_point, options_for, workloads_for};
use crate::report::ExperimentReport;
use crate::runner::ExperimentScale;
use crate::service::RoutingMode;
use sqbench_generator::{label_clustered, GraphGenConfig};
use sqbench_graph::Dataset;

/// Number of label-disjoint graph families in the routed sweep's dataset.
/// Four families align with the shard counts swept ({2, 4, 8} all divide
/// or are divided by 4), so every shard stays label-coherent under
/// round-robin placement and routing has real skew to exploit.
pub const FAMILIES: u32 = 4;

/// The shard counts swept at a given scale, capped so no point has more
/// shards than graphs. Starts at 2 — routing is a no-op on one shard.
pub fn sweep_for(scale: &ExperimentScale) -> Vec<usize> {
    [2usize, 4, 8]
        .into_iter()
        .filter(|&n| n <= scale.graph_count.max(1))
        .collect()
}

/// The label-clustered dataset the sweep runs on: the scale's synthetic
/// shape, split into [`FAMILIES`] label-disjoint families.
pub fn clustered_dataset(scale: &ExperimentScale) -> Dataset {
    label_clustered(
        &GraphGenConfig::default()
            .with_graph_count(scale.graph_count)
            .with_avg_nodes(scale.avg_nodes)
            .with_avg_density(scale.avg_density)
            .with_label_count(scale.label_count)
            .with_seed(scale.seed),
        FAMILIES,
    )
}

/// Runs the routing sweep: for each shard count, one fanned-out point and
/// one routed point over the same dataset and workloads.
pub fn run(scale: &ExperimentScale) -> ExperimentReport {
    let sweep = sweep_for(scale);
    let mut report = ExperimentReport::new(
        "fig8_routing",
        "Selective shard routing vs. full fan-out (beyond the paper)",
        format!(
            "shard sweep {:?} × {{fanout, routed}} over a label-clustered dataset \
             ({} families, {} graphs, {} nodes, density {}, {} labels per family)",
            sweep,
            FAMILIES,
            scale.graph_count,
            scale.avg_nodes,
            scale.avg_density,
            scale.label_count
        ),
    );
    let dataset = clustered_dataset(scale);
    let workloads = workloads_for(&dataset, scale);
    for shards in sweep {
        for routing in [RoutingMode::Fanout, RoutingMode::Synopsis] {
            let options = options_for(scale).with_shards(shards).with_routing(routing);
            report.push_point(measure_point(
                format!("{}@{shards}", routing.name()),
                shards as f64,
                &dataset,
                &workloads,
                &options,
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_multi_shard_and_ascending() {
        let sweep = sweep_for(&ExperimentScale::smoke());
        assert!(sweep[0] >= 2, "routing needs at least two shards to matter");
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn clustered_dataset_is_label_disjoint_per_family() {
        let scale = ExperimentScale::smoke();
        let ds = clustered_dataset(&scale);
        assert_eq!(ds.len(), scale.graph_count);
        for (id, g) in ds.iter() {
            let family = (id % FAMILIES as usize) as u32;
            let lo = family * scale.label_count;
            let hi = lo + scale.label_count;
            assert!(g.labels().iter().all(|&l| l >= lo && l < hi));
        }
    }

    #[test]
    fn routed_points_probe_strictly_fewer_shards_than_fanout() {
        let scale = ExperimentScale::smoke();
        let report = run(&scale);
        assert_eq!(report.points.len(), 2 * sweep_for(&scale).len());
        for pair in report.points.chunks(2) {
            let (fanout, routed) = (&pair[0], &pair[1]);
            assert!(fanout.x_label.starts_with("fanout@"));
            assert!(routed.x_label.starts_with("routed@"));
            let shards = fanout.x_value as u64;
            for (f, r) in fanout.results.iter().zip(routed.results.iter()) {
                assert_eq!(f.method, r.method);
                assert!(!f.timed_out && !r.timed_out, "{} timed out", f.method);
                // Routing must not lose queries (answer equality is
                // enforced bit-for-bit by the routing proptest).
                assert_eq!(f.queries_executed, r.queries_executed);
                // Fanout probes everything; routing accounts every probe
                // and, on this label-clustered dataset, skips shards.
                assert_eq!(f.shards_probed, shards * f.queries_executed as u64);
                assert_eq!(f.shards_skipped, 0);
                assert_eq!(
                    r.shards_probed + r.shards_skipped,
                    shards * r.queries_executed as u64
                );
                assert!(
                    r.shards_probed < f.shards_probed,
                    "{} routed {} probes, fanout {} — no savings at {} shards",
                    r.method,
                    r.shards_probed,
                    f.shards_probed,
                    shards
                );
                assert!(r.shard_balance() >= 0.0 && r.shard_balance() <= 1.0);
            }
        }
    }
}
