//! Open-loop load generation: seeded arrival processes driving an
//! [`AdmissionQueue`] from producer threads.
//!
//! The paper's experiments are **closed-loop**: a wave of queries is
//! submitted, the harness waits for all of them, then submits the next
//! wave — offered load adapts to service capacity, so saturation can
//! never be observed. A service "for millions of users" faces the
//! opposite regime: arrivals do not care how busy the service is. This
//! module generates that regime deterministically — a seeded arrival
//! **schedule** (Poisson or bursty inter-arrival gaps at a target QPS,
//! query popularity Zipf-distributed over a query pool) replayed against
//! the admission queue by wall-clock-paced producer threads, while the
//! caller's consumer drains waves through a service.
//!
//! Everything random is derived from [`LoadGenConfig::seed`] alone:
//! [`LoadGenConfig::schedule`] is a pure function, so the same config
//! always offers the same load — the property pinned by
//! `tests/proptest_loadgen.rs` and the foundation of the saturation
//! sweeps in `micro_openloop` (offered load is the controlled variable;
//! shed/degrade/latency are the measured ones).
//!
//! ```
//! use sqbench_harness::loadgen::{ArrivalProcess, LoadGenConfig};
//!
//! let config = LoadGenConfig::new(ArrivalProcess::Poisson { qps: 500.0 }, 64).seed(7);
//! let schedule = config.schedule(16);
//! assert_eq!(schedule.len(), 64);
//! assert_eq!(schedule, config.schedule(16)); // same seed ⇒ same load
//! ```

use crate::service::{AdmissionQueue, SubmitError, Ticket};
use sqbench_graph::Graph;
use std::time::{Duration, Instant};

/// How arrivals are spaced in time. Both processes offer the same *mean*
/// rate (`qps`); they differ in variance — the knob that separates "a
/// steady crowd" from "a thundering herd" at equal average load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: i.i.d. exponential inter-arrival gaps with
    /// mean `1/qps` — the classic open-loop model of many independent
    /// users.
    Poisson {
        /// Mean arrival rate, queries per second. Clamped to a small
        /// positive floor at schedule time.
        qps: f64,
    },
    /// Clustered arrivals: burst *events* arrive as a Poisson process at
    /// rate `qps / burst`, and each event delivers `burst` queries
    /// back-to-back — same mean rate as `Poisson { qps }`, much heavier
    /// instantaneous load.
    Bursty {
        /// Mean arrival rate, queries per second, across bursts.
        qps: f64,
        /// Queries per burst event (clamped to ≥ 1; `1` degenerates to
        /// `Poisson`).
        burst: usize,
    },
}

impl ArrivalProcess {
    /// The process's mean offered rate in queries per second.
    pub fn qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { qps } | ArrivalProcess::Bursty { qps, .. } => qps,
        }
    }
}

/// One scheduled arrival: *when* (offset from the run's start) and *what*
/// (an index into the caller's query pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time as nanoseconds from the start of the run. Stored as
    /// an integer so schedules are exactly comparable across runs.
    pub at_nanos: u64,
    /// Which pool query arrives (Zipf-popular: low indexes are hot).
    pub pool_index: usize,
}

impl Arrival {
    /// Arrival offset as a [`Duration`].
    pub fn at(&self) -> Duration {
        Duration::from_nanos(self.at_nanos)
    }
}

/// A deterministic open-loop load description. `schedule` derives the
/// full arrival sequence; [`run_open_loop`] replays it against a queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadGenConfig {
    /// Arrival spacing process and target rate.
    pub arrivals: ArrivalProcess,
    /// Total arrivals to schedule.
    pub queries: usize,
    /// Zipf popularity exponent over the query pool: `0.0` is uniform,
    /// `1.0` the classic hot-head skew. Negative values are clamped to 0.
    pub zipf_exponent: f64,
    /// Master seed: the whole schedule (gaps and pool picks) derives from
    /// it deterministically.
    pub seed: u64,
    /// Per-query deadline budget, measured from the query's scheduled
    /// arrival. `None` submits deadline-free queries (never shed).
    pub deadline: Option<Duration>,
    /// Producer threads replaying the schedule (clamped to ≥ 1). The
    /// schedule itself is producer-count-independent.
    pub producers: usize,
}

impl LoadGenConfig {
    /// A config with the harness defaults: hot-headed Zipf (`1.0`),
    /// seed 0, no deadline, one producer.
    pub fn new(arrivals: ArrivalProcess, queries: usize) -> Self {
        LoadGenConfig {
            arrivals,
            queries,
            zipf_exponent: 1.0,
            seed: 0,
            deadline: None,
            producers: 1,
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Zipf popularity exponent (clamped to ≥ 0 at use).
    pub fn zipf_exponent(mut self, exponent: f64) -> Self {
        self.zipf_exponent = exponent;
        self
    }

    /// Sets the per-query deadline budget from arrival.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Sets the producer thread count (clamped to ≥ 1).
    pub fn producers(mut self, producers: usize) -> Self {
        self.producers = producers.max(1);
        self
    }

    /// Derives the arrival schedule for a pool of `pool_len` queries:
    /// `queries` arrivals with non-decreasing times and Zipf-popular pool
    /// indexes. A pure function of the config and `pool_len` — same
    /// inputs, same schedule, on any machine.
    pub fn schedule(&self, pool_len: usize) -> Vec<Arrival> {
        let pool_len = pool_len.max(1);
        let mut gaps = SplitMix64::new(self.seed ^ 0x9e3779b97f4a7c15);
        let mut picks = SplitMix64::new(self.seed.wrapping_add(0x517cc1b727220a95));
        let zipf = ZipfSampler::new(pool_len, self.zipf_exponent.max(0.0));
        let (rate, burst) = match self.arrivals {
            ArrivalProcess::Poisson { qps } => (qps, 1),
            ArrivalProcess::Bursty { qps, burst } => (qps, burst.max(1)),
        };
        // Burst events arrive at rate qps/burst so the mean per-query
        // rate stays qps; the event's queries arrive back-to-back.
        let event_rate = (rate.max(1e-6)) / burst as f64;
        let mut schedule = Vec::with_capacity(self.queries);
        let mut clock_nanos = 0u64;
        while schedule.len() < self.queries {
            // Exponential inter-event gap by inversion: -ln(1-u)/λ with
            // u uniform in [0, 1) — never ln(0).
            let gap_s = -(1.0 - gaps.unit_f64()).ln() / event_rate;
            let gap_nanos = (gap_s * 1e9).min(u64::MAX as f64) as u64;
            clock_nanos = clock_nanos.saturating_add(gap_nanos);
            for _ in 0..burst.min(self.queries - schedule.len()) {
                schedule.push(Arrival {
                    at_nanos: clock_nanos,
                    pool_index: zipf.sample(picks.unit_f64()),
                });
            }
        }
        schedule
    }
}

/// What one open-loop run offered and what the admission door did with
/// it. Latency and outcome accounting live in the consumer's
/// [`crate::service::ShardedReport`]s — this is the producer-side view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenLoopReport {
    /// Arrivals the schedule offered (scheduled, whether admitted or not).
    pub offered: usize,
    /// Tickets of admitted queries, in ticket order. Joining these
    /// against the consumer's records proves no query was lost.
    pub admitted: Vec<Ticket>,
    /// Queries the admission door shed ([`SubmitError::Shed`]): the
    /// measured cost model judged their deadline infeasible.
    pub shed: usize,
    /// Submissions refused for other reasons (closed queue, injected
    /// admission faults).
    pub refused: usize,
}

impl OpenLoopReport {
    /// Queries admitted.
    pub fn admitted_count(&self) -> usize {
        self.admitted.len()
    }

    /// Shed fraction of offered load (`0.0` for an empty run).
    pub fn shed_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// Replays `config`'s schedule against `queue` in real time from
/// `config.producers` producer threads: each producer sleeps until its
/// next arrival's offset, then submits the scheduled pool query through
/// the cost-aware admission door ([`AdmissionQueue::submit_or_shed`]).
///
/// Open-loop means the producers **never wait for the service**: a slow
/// consumer makes the queue back up and the door shed; it does not slow
/// arrivals down. The caller is responsible for concurrently draining
/// `queue` (e.g. [`crate::service::ShardedService::drain`] in a loop)
/// and for closing it afterwards if producers should stop early.
///
/// Arrivals are dealt round-robin across producers, so any producer
/// count offers the same queries at the same scheduled times (modulo
/// scheduler jitter); the report is aggregated over all producers.
pub fn run_open_loop(
    queue: &AdmissionQueue,
    pool: &[Graph],
    config: &LoadGenConfig,
) -> OpenLoopReport {
    assert!(!pool.is_empty(), "open-loop run needs a non-empty pool");
    let schedule = config.schedule(pool.len());
    let producers = config.producers.max(1);
    let start = Instant::now();
    let run = |producer: usize| {
        let mut admitted: Vec<Ticket> = Vec::new();
        let (mut shed, mut refused) = (0usize, 0usize);
        for arrival in schedule.iter().skip(producer).step_by(producers) {
            let due = start + arrival.at();
            let wait = due.saturating_duration_since(Instant::now());
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
            // The deadline budget runs from the *scheduled* arrival: a
            // producer running late eats into its queries' budgets, the
            // way a real client's timeout keeps ticking.
            let deadline = config.deadline.map(|budget| due + budget);
            match queue.submit_or_shed(pool[arrival.pool_index].clone(), deadline) {
                Ok(ticket) => admitted.push(ticket),
                Err(SubmitError::Shed) => shed += 1,
                Err(_) => refused += 1,
            }
        }
        (admitted, shed, refused)
    };
    let mut report = OpenLoopReport {
        offered: schedule.len(),
        admitted: Vec::with_capacity(schedule.len()),
        shed: 0,
        refused: 0,
    };
    let parts: Vec<(Vec<Ticket>, usize, usize)> = if producers == 1 {
        vec![run(0)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..producers)
                .map(|p| scope.spawn(move || run(p)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| (Vec::new(), 0, 0)))
                .collect()
        })
    };
    for (admitted, shed, refused) in parts {
        report.admitted.extend(admitted);
        report.shed += shed;
        report.refused += refused;
    }
    report.admitted.sort_unstable();
    report
}

/// Zipf(s) over `0..n` by inverse-CDF: cumulative weights `1/(i+1)^s`
/// precomputed once, each sample a binary search. Exponent `0` is the
/// uniform distribution.
struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, exponent: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    /// Maps a uniform `u ∈ [0, 1)` to a pool index.
    fn sample(&self, u: f64) -> usize {
        let total = *self.cumulative.last().expect("non-empty pool");
        let target = u * total;
        self.cumulative
            .partition_point(|&c| c <= target)
            .min(self.cumulative.len() - 1)
    }
}

/// SplitMix64 — tiny, seedable, deterministic; the same generator the
/// fault plan uses, so the harness stays free of RNG dependencies.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_ordered() {
        let config = LoadGenConfig::new(ArrivalProcess::Poisson { qps: 1000.0 }, 256).seed(42);
        let a = config.schedule(32);
        let b = config.schedule(32);
        assert_eq!(a, b);
        assert_eq!(a.len(), 256);
        assert!(a.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
        assert!(a.iter().all(|arr| arr.pool_index < 32));
        // A different seed moves the schedule.
        let c = config.seed(43).schedule(32);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_rate_tracks_target_qps() {
        let config = LoadGenConfig::new(ArrivalProcess::Poisson { qps: 2000.0 }, 4000).seed(7);
        let schedule = config.schedule(8);
        let span_s = schedule.last().unwrap().at_nanos as f64 * 1e-9;
        let rate = schedule.len() as f64 / span_s;
        // 4000 exponential gaps: the empirical rate is within a few
        // percent of the target with overwhelming probability.
        assert!(
            (rate - 2000.0).abs() / 2000.0 < 0.1,
            "empirical rate {rate} strays from target 2000"
        );
    }

    #[test]
    fn bursty_schedule_clusters_arrivals_at_equal_mean_rate() {
        let queries = 4000;
        let burst = LoadGenConfig::new(
            ArrivalProcess::Bursty {
                qps: 2000.0,
                burst: 8,
            },
            queries,
        )
        .seed(7)
        .schedule(8);
        // Bursts arrive back-to-back: most consecutive gaps are zero.
        let zero_gaps = burst
            .windows(2)
            .filter(|w| w[0].at_nanos == w[1].at_nanos)
            .count();
        assert!(
            zero_gaps >= queries * 3 / 4,
            "expected clustered arrivals, got {zero_gaps} zero gaps"
        );
        // Mean rate still tracks the target.
        let span_s = burst.last().unwrap().at_nanos as f64 * 1e-9;
        let rate = queries as f64 / span_s;
        assert!(
            (rate - 2000.0).abs() / 2000.0 < 0.15,
            "empirical burst rate {rate} strays from target 2000"
        );
    }

    #[test]
    fn zipf_skews_toward_the_head_of_the_pool() {
        let config = LoadGenConfig::new(ArrivalProcess::Poisson { qps: 1000.0 }, 2000)
            .seed(3)
            .zipf_exponent(1.0);
        let schedule = config.schedule(16);
        let head = schedule.iter().filter(|a| a.pool_index == 0).count();
        let tail = schedule.iter().filter(|a| a.pool_index == 15).count();
        assert!(
            head > tail * 4,
            "Zipf(1.0) head {head} should dwarf tail {tail}"
        );
        // Exponent 0 is uniform: head and tail are comparable.
        let uniform = config.zipf_exponent(0.0).schedule(16);
        let head = uniform.iter().filter(|a| a.pool_index == 0).count();
        let tail = uniform.iter().filter(|a| a.pool_index == 15).count();
        assert!(head < tail * 3 && tail < head * 3);
    }

    #[test]
    fn zipf_sampler_covers_bounds() {
        let zipf = ZipfSampler::new(4, 1.0);
        assert_eq!(zipf.sample(0.0), 0);
        assert!(zipf.sample(0.999_999) <= 3);
        let single = ZipfSampler::new(1, 1.0);
        assert_eq!(single.sample(0.5), 0);
    }
}
