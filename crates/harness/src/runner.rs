//! Experiment runner: builds indexes, runs query workloads and enforces the
//! per-method time budget.

use crate::metrics::{CacheCounters, MethodMetrics, StageTotals, Stopwatch};
use crate::service::{
    CachePolicy, QueryService, RoutingMode, ServiceOptions, ShardStrategy, ShardedService,
};
use serde::{Deserialize, Serialize};
use sqbench_generator::QueryWorkload;
use sqbench_graph::Dataset;
use sqbench_index::{build_index, MethodConfig, MethodKind};
use std::time::Duration;

/// Scale of an experiment run. The same experiment code is used at three
/// scales:
///
/// * [`ExperimentScale::smoke`] — seconds-long runs used by unit and
///   integration tests;
/// * [`ExperimentScale::laptop`] — the default for the Criterion benches;
///   keeps the shape of the paper's sweeps at a size a laptop can finish;
/// * [`ExperimentScale::paper`] — the full parameter grids of the paper
///   (needs a large machine and many hours, exactly as the original study
///   did).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Number of graphs in synthetic datasets (paper default: 1000).
    pub graph_count: usize,
    /// Mean nodes per synthetic graph (paper default: 200).
    pub avg_nodes: usize,
    /// Mean density of synthetic graphs (paper default: 0.025).
    pub avg_density: f64,
    /// Number of distinct labels (paper default: 20).
    pub label_count: u32,
    /// Queries generated per query size.
    pub queries_per_size: usize,
    /// Query sizes (in edges) to generate.
    pub query_sizes: Vec<usize>,
    /// Scale factor applied to the real-dataset simulators (1.0 = published
    /// sizes).
    pub real_dataset_scale: f64,
    /// Per-method time budget for indexing plus query processing (the
    /// scaled-down analogue of the paper's 8-hour limit).
    pub time_budget: Duration,
    /// RNG seed shared by dataset and workload generation.
    pub seed: u64,
    /// Query-service workers each method's workload is served on (see
    /// [`RunOptions::with_query_threads`]). The paper's latency semantics need
    /// `1`; the smoke/laptop scales use a small pool so every figure run
    /// exercises (and benefits from) batched serving.
    pub query_threads: usize,
}

impl ExperimentScale {
    /// Tiny configuration for tests: a handful of small graphs.
    pub fn smoke() -> Self {
        ExperimentScale {
            graph_count: 16,
            avg_nodes: 12,
            avg_density: 0.15,
            label_count: 5,
            queries_per_size: 2,
            query_sizes: vec![4, 8],
            real_dataset_scale: 0.002,
            time_budget: Duration::from_secs(30),
            seed: 7,
            query_threads: 2,
        }
    }

    /// Laptop-scale configuration used by the benches.
    pub fn laptop() -> Self {
        ExperimentScale {
            graph_count: 200,
            avg_nodes: 40,
            avg_density: 0.05,
            label_count: 20,
            queries_per_size: 10,
            query_sizes: vec![4, 8, 16, 32],
            real_dataset_scale: 0.01,
            time_budget: Duration::from_secs(120),
            seed: 42,
            query_threads: 4,
        }
    }

    /// The paper's full configuration ("sane defaults", 8-hour budget).
    pub fn paper() -> Self {
        ExperimentScale {
            graph_count: 1000,
            avg_nodes: 200,
            avg_density: 0.025,
            label_count: 20,
            queries_per_size: 100,
            query_sizes: vec![4, 8, 16, 32],
            real_dataset_scale: 1.0,
            time_budget: Duration::from_secs(8 * 3600),
            seed: 2015,
            // The paper reports per-query latencies, which assume one
            // query in flight at a time.
            query_threads: 1,
        }
    }
}

/// Options for a single [`run_methods`] invocation: the run-level knobs
/// (method set, index configuration, time budget) layered over the unified
/// [`ServiceOptions`] service surface. Service-side behaviour — workers,
/// shards, placement strategy, routing, retry, caching — lives *only* on
/// [`RunOptions::service`]; the `with_*` conveniences below delegate there.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Which methods to run (defaults to all six).
    pub methods: Vec<MethodKind>,
    /// Per-method index/query configuration.
    pub config: MethodConfig,
    /// Per-method time budget (indexing + queries).
    pub time_budget: Duration,
    /// How each method's query service is shaped: worker threads per pool
    /// (`workers`, an *upper bound* — [`run_methods`] additionally clamps
    /// it to the flattened workload size, since a worker without a query to
    /// claim would only spin), dataset shards (`shards`, 1 = the
    /// single-index service; answer sets are identical to the unsharded
    /// run, candidate counts may differ because each shard mines features
    /// over its own slice), placement strategy, routing mode and the
    /// cross-query [`CachePolicy`]. Prefer `workers = 1` and the disabled
    /// cache when comparing latency numbers against the paper.
    pub service: ServiceOptions,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            methods: MethodKind::ALL.to_vec(),
            config: MethodConfig::default(),
            time_budget: Duration::from_secs(120),
            service: ServiceOptions::new(),
        }
    }
}

impl RunOptions {
    /// Options sized for fast tests (small fingerprints, short paths).
    pub fn fast() -> Self {
        RunOptions {
            config: MethodConfig::fast(),
            time_budget: Duration::from_secs(30),
            ..Default::default()
        }
    }

    /// Restricts the run to a subset of methods.
    pub fn with_methods(mut self, methods: &[MethodKind]) -> Self {
        self.methods = methods.to_vec();
        self
    }

    /// Replaces the whole service surface in one move.
    pub fn with_service(mut self, service: ServiceOptions) -> Self {
        self.service = service;
        self
    }

    /// Serves each method's query workload on up to `threads` service
    /// workers (floored at 1; additionally clamped to the workload size
    /// inside [`run_methods`]). Delegates to [`ServiceOptions::workers`].
    pub fn with_query_threads(mut self, threads: usize) -> Self {
        self.service = self.service.workers(threads);
        self
    }

    /// Partitions the dataset over `shards` cooperating shard services
    /// (floored at 1 = unsharded). Delegates to [`ServiceOptions::shards`].
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.service = self.service.shards(shards);
        self
    }

    /// Sets the shard partitioning strategy (see [`ShardStrategy`]).
    pub fn with_shard_strategy(mut self, strategy: ShardStrategy) -> Self {
        self.service = self.service.strategy(strategy);
        self
    }

    /// Sets the shard routing mode (see [`RoutingMode`]).
    pub fn with_routing(mut self, routing: RoutingMode) -> Self {
        self.service = self.service.routing(routing);
        self
    }

    /// Sets the cross-query cache policy (see [`CachePolicy`]). The
    /// default is [`CachePolicy::disabled`] — paper-comparable runs.
    pub fn with_cache(mut self, cache: CachePolicy) -> Self {
        self.service = self.service.cache(cache);
        self
    }
}

/// Builds each requested method over `dataset` and serves every query of
/// every workload against it through the batch [`QueryService`], returning
/// one [`MethodMetrics`] per method (including the per-stage breakdown the
/// service records).
///
/// The time budget is enforced at two points: after index construction (a
/// method whose build alone exceeds the budget is marked `timed_out` and
/// processes no queries — the analogue of the paper's DNF entries) and
/// before each query enters the service pipeline. With one worker
/// (`query_threads == 1`) queries are claimed in workload order, so the
/// skipped queries are exactly the workload suffix and `queries_executed`
/// records how far the method got; with a multi-worker pool the claim
/// order is still the workload order but completions interleave, so a
/// timed-out method's executed set is a scheduler-dependent subset (the
/// metrics of runs that finish within budget are unaffected — pooled and
/// single-worker runs execute the same queries).
pub fn run_methods(
    dataset: &Dataset,
    workloads: &[QueryWorkload],
    options: &RunOptions,
) -> Vec<MethodMetrics> {
    options
        .methods
        .iter()
        .map(|&kind| run_single_method(kind, dataset, workloads, options))
        .collect()
}

fn run_single_method(
    kind: MethodKind,
    dataset: &Dataset,
    workloads: &[QueryWorkload],
    options: &RunOptions,
) -> MethodMetrics {
    if options.service.shards > 1 {
        return run_sharded_method(kind, dataset, workloads, options);
    }
    let budget = options.time_budget;
    let build_watch = Stopwatch::start();
    let index = build_index(kind, &options.config, dataset);
    let indexing_time_s = build_watch.elapsed_secs();
    let stats = index.stats();

    let mut timed_out = build_watch.elapsed() > budget;
    let mut stages = StageTotals::default();
    let mut false_positive_ratio = 0.0;
    let mut queries_executed = 0usize;
    let mut queries_failed = 0usize;
    let mut cache = CacheCounters::default();

    if !timed_out {
        // Flatten the workloads once and serve them as a single batch
        // through the pipelined query service. The worker bound is clamped
        // to the batch size (see RunOptions::service).
        let queries: Vec<&sqbench_graph::Graph> = workloads
            .iter()
            .flat_map(|w| w.iter().map(|(query, _)| query))
            .collect();
        let workers = options.service.workers.max(1).min(queries.len().max(1));
        let mut service =
            QueryService::new(&*index, dataset, options.service.clone().workers(workers));
        let report = service.run_batch(&queries, Some(build_watch.deadline_after(budget)));
        timed_out = report.timed_out();
        queries_executed = report.executed();
        queries_failed = report.failed();
        false_positive_ratio = report.false_positive_ratio();
        stages = report.totals;
        cache = service.cache_counters();
    }

    MethodMetrics {
        method: kind.name().to_string(),
        indexing_time_s,
        index_size_bytes: stats.size_bytes,
        distinct_features: stats.distinct_features,
        avg_query_time_s: if stages.queries == 0 {
            0.0
        } else {
            (stages.filter_s + stages.verify_s) / stages.queries as f64
        },
        false_positive_ratio,
        queries_executed,
        timed_out,
        // The unsharded single-index service cannot answer partially and
        // the batch path never sheds or retries.
        queries_degraded: 0,
        queries_failed,
        queries_shed: 0,
        retries: 0,
        // Batch runs serve a frozen snapshot of the dataset — the online
        // ingest path flows through `ShardedService::drain` instead.
        inserts_applied: 0,
        removes_applied: 0,
        stages,
        shards: 1,
        // The unsharded service probes its single index once per query.
        shards_probed: queries_executed as u64,
        shards_skipped: 0,
        shard_stages: Vec::new(),
        partition_overhead_bytes: 0,
        cache,
    }
}

/// The sharded twin of `run_single_method`: partitions the dataset, builds
/// one index per shard (indexing time covers all shard builds) and serves
/// the flattened workload as one wave across every shard pool. `timed_out`
/// means at least one query missed the budget deadline on some shard.
fn run_sharded_method(
    kind: MethodKind,
    dataset: &Dataset,
    workloads: &[QueryWorkload],
    options: &RunOptions,
) -> MethodMetrics {
    let budget = options.time_budget;
    let build_watch = Stopwatch::start();
    // The unified service surface flows through verbatim: shards, workers
    // per shard, placement, routing, retry and cache policy. Benchmark
    // runs keep the default bounded-retry policy and inject no faults, so
    // fault-free metrics stay comparable across PRs.
    let mut service = ShardedService::new(kind, &options.config, dataset, options.service.clone());
    let indexing_time_s = build_watch.elapsed_secs();
    let stats = service.stats();

    let mut timed_out = build_watch.elapsed() > budget;
    let mut stages = StageTotals::default();
    let mut shard_stages = vec![StageTotals::default(); service.shard_count()];
    let mut false_positive_ratio = 0.0;
    let mut queries_executed = 0usize;
    let mut queries_degraded = 0usize;
    let mut queries_failed = 0usize;
    let mut retries = 0u64;
    let mut shards_probed = 0u64;
    let mut shards_skipped = 0u64;
    let mut cache = CacheCounters::default();

    if !timed_out {
        let queries: Vec<&sqbench_graph::Graph> = workloads
            .iter()
            .flat_map(|w| w.iter().map(|(query, _)| query))
            .collect();
        let report = service.run_wave(&queries, Some(build_watch.deadline_after(budget)));
        timed_out = report.expired() > 0;
        queries_executed = report.executed();
        queries_degraded = report.degraded();
        queries_failed = report.failed();
        retries = report.retries();
        false_positive_ratio = report.false_positive_ratio();
        shards_probed = report.shards_probed();
        shards_skipped = report.shards_skipped();
        stages = report.totals;
        shard_stages = report.per_shard;
        cache = service.cache_counters();
    }

    MethodMetrics {
        method: kind.name().to_string(),
        indexing_time_s,
        index_size_bytes: stats.size_bytes,
        distinct_features: stats.distinct_features,
        avg_query_time_s: if stages.queries == 0 {
            0.0
        } else {
            (stages.filter_s + stages.verify_s) / stages.queries as f64
        },
        false_positive_ratio,
        queries_executed,
        timed_out,
        queries_degraded,
        queries_failed,
        // Batch waves bypass admission, so nothing is ever shed here.
        queries_shed: 0,
        retries,
        // Batch waves mutate nothing; see `ShardedService::drain` for the
        // mixed read/write path that reports these.
        inserts_applied: 0,
        removes_applied: 0,
        stages,
        shards: service.shard_count(),
        shards_probed,
        shards_skipped,
        shard_stages,
        partition_overhead_bytes: service.partition_overhead_bytes(),
        cache,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};

    fn small_setup() -> (Dataset, Vec<QueryWorkload>) {
        let ds = GraphGen::new(
            GraphGenConfig::default()
                .with_graph_count(15)
                .with_avg_nodes(12)
                .with_avg_density(0.15)
                .with_label_count(4)
                .with_seed(3),
        )
        .generate();
        let workloads = QueryGen::new(5).generate_all_sizes(&ds, 2, &[4, 8]);
        (ds, workloads)
    }

    #[test]
    fn runs_all_methods_and_reports_metrics() {
        let (ds, workloads) = small_setup();
        let results = run_methods(&ds, &workloads, &RunOptions::fast());
        assert_eq!(results.len(), 6);
        for m in &results {
            assert!(!m.timed_out, "method {} unexpectedly timed out", m.method);
            assert_eq!(m.queries_executed, 4);
            assert!(m.indexing_time_s >= 0.0);
            assert!(m.index_size_bytes > 0);
            assert!(m.false_positive_ratio >= 0.0 && m.false_positive_ratio <= 1.0);
            // Per-stage metrics cover exactly the executed queries, and the
            // mean query time is the filter + verify split.
            assert_eq!(m.stages.queries as usize, m.queries_executed);
            let split = m.stages.avg_filter_s() + m.stages.avg_verify_s();
            assert!((m.avg_query_time_s - split).abs() < 1e-12);
            assert!(m.stages.queue_wait_s >= 0.0);
        }
        // All methods returned, in the requested order.
        let names: Vec<&str> = results.iter().map(|m| m.method.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Grapes",
                "GGSX",
                "CT-Index",
                "gIndex",
                "Tree+Delta",
                "gCode"
            ]
        );
    }

    #[test]
    fn method_subset_is_respected() {
        let (ds, workloads) = small_setup();
        let options = RunOptions::fast().with_methods(&[MethodKind::Ggsx, MethodKind::CtIndex]);
        let results = run_methods(&ds, &workloads, &options);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].method, "GGSX");
        assert_eq!(results[1].method, "CT-Index");
    }

    #[test]
    fn batched_execution_agrees_with_sequential() {
        let (ds, workloads) = small_setup();
        // Deterministic methods only: Tree+Δ mutates its index during query
        // processing, so its learned-feature trajectory is order-dependent.
        let kinds = [
            MethodKind::Grapes,
            MethodKind::Ggsx,
            MethodKind::CtIndex,
            MethodKind::GIndex,
            MethodKind::GCode,
        ];
        let sequential = run_methods(&ds, &workloads, &RunOptions::fast().with_methods(&kinds));
        let batched = run_methods(
            &ds,
            &workloads,
            &RunOptions::fast()
                .with_methods(&kinds)
                .with_query_threads(3),
        );
        assert_eq!(sequential.len(), batched.len());
        for (s, b) in sequential.iter().zip(batched.iter()) {
            assert_eq!(s.method, b.method);
            assert_eq!(s.queries_executed, b.queries_executed);
            assert!(!b.timed_out);
            assert!(
                (s.false_positive_ratio - b.false_positive_ratio).abs() < 1e-12,
                "{}: fp ratio diverged",
                s.method
            );
        }
    }

    #[test]
    fn query_threads_builder_clamps_to_one() {
        let options = RunOptions::fast().with_query_threads(0);
        assert_eq!(options.service.workers, 1);
        assert_eq!(RunOptions::default().service.workers, 1);
    }

    #[test]
    fn shards_builder_clamps_and_defaults_to_unsharded() {
        assert_eq!(RunOptions::default().service.shards, 1);
        assert_eq!(RunOptions::fast().with_shards(0).service.shards, 1);
        let options = RunOptions::fast()
            .with_shards(3)
            .with_shard_strategy(ShardStrategy::SizeBalanced);
        assert_eq!(options.service.shards, 3);
        assert_eq!(options.service.strategy, ShardStrategy::SizeBalanced);
    }

    #[test]
    fn sharded_run_reports_per_shard_stages_and_same_answers() {
        let (ds, workloads) = small_setup();
        let kinds = [MethodKind::Ggsx, MethodKind::GCode];
        let unsharded = run_methods(&ds, &workloads, &RunOptions::fast().with_methods(&kinds));
        let sharded = run_methods(
            &ds,
            &workloads,
            &RunOptions::fast().with_methods(&kinds).with_shards(3),
        );
        for (u, s) in unsharded.iter().zip(sharded.iter()) {
            assert_eq!(u.method, s.method);
            assert!(!s.timed_out);
            assert_eq!(s.shards, 3);
            assert_eq!(s.shard_stages.len(), 3);
            assert_eq!(u.queries_executed, s.queries_executed);
            // Per-shard totals cover every (query, shard) execution.
            let shard_queries: u64 = s.shard_stages.iter().map(|t| t.queries).sum();
            assert_eq!(shard_queries as usize, 3 * s.queries_executed);
            assert!(s.shard_balance() >= 0.0 && s.shard_balance() <= 1.0);
            assert!(s.max_shard_time_s() <= s.stages.filter_s + s.stages.verify_s + 1e-12);
            // Sharded index stats aggregate real per-shard indexes.
            assert!(s.index_size_bytes > 0);
        }
        // Unsharded runs leave the shard columns degenerate.
        assert_eq!(unsharded[0].shards, 1);
        assert!(unsharded[0].shard_stages.is_empty());
    }

    #[test]
    fn sharded_zero_budget_marks_methods_as_timed_out() {
        let (ds, workloads) = small_setup();
        let mut options = RunOptions::fast()
            .with_methods(&[MethodKind::Ggsx])
            .with_shards(2);
        options.time_budget = Duration::from_secs(0);
        let results = run_methods(&ds, &workloads, &options);
        assert!(results[0].timed_out);
        assert_eq!(results[0].queries_executed, 0);
        assert_eq!(results[0].avg_query_time_s, 0.0);
        assert!(results[0].false_positive_ratio.is_finite());
    }

    #[test]
    fn query_threads_above_workload_size_clamp_inside_run() {
        // The builder keeps the requested bound verbatim...
        let options = RunOptions::fast()
            .with_methods(&[MethodKind::Ggsx])
            .with_query_threads(64);
        assert_eq!(options.service.workers, 64);
        // ...and `run_methods` clamps it to the 4-query workload: the run
        // completes on 4 workers and reports exactly the serial results.
        let (ds, workloads) = small_setup();
        let oversubscribed = run_methods(&ds, &workloads, &options);
        let serial = run_methods(
            &ds,
            &workloads,
            &RunOptions::fast().with_methods(&[MethodKind::Ggsx]),
        );
        assert_eq!(oversubscribed.len(), 1);
        assert!(!oversubscribed[0].timed_out);
        assert_eq!(
            oversubscribed[0].queries_executed,
            serial[0].queries_executed
        );
        assert!(
            (oversubscribed[0].false_positive_ratio - serial[0].false_positive_ratio).abs() < 1e-12
        );
    }

    #[test]
    fn zero_budget_marks_methods_as_timed_out() {
        let (ds, workloads) = small_setup();
        let mut options = RunOptions::fast().with_methods(&[MethodKind::Ggsx]);
        options.time_budget = Duration::from_secs(0);
        let results = run_methods(&ds, &workloads, &options);
        assert!(results[0].timed_out);
        assert_eq!(results[0].queries_executed, 0);
        assert_eq!(results[0].avg_query_time_s, 0.0);
    }

    #[test]
    fn scales_expose_paper_defaults() {
        let paper = ExperimentScale::paper();
        assert_eq!(paper.graph_count, 1000);
        assert_eq!(paper.avg_nodes, 200);
        assert!((paper.avg_density - 0.025).abs() < 1e-12);
        assert_eq!(paper.label_count, 20);
        assert_eq!(paper.time_budget, Duration::from_secs(8 * 3600));
        let smoke = ExperimentScale::smoke();
        assert!(smoke.graph_count < ExperimentScale::laptop().graph_count);
        assert!(ExperimentScale::laptop().graph_count < paper.graph_count);
    }
}
