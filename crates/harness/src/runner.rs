//! Experiment runner: builds indexes, runs query workloads and enforces the
//! per-method time budget.

use crate::metrics::{workload_false_positive_ratio, MethodMetrics, Stopwatch};
use serde::{Deserialize, Serialize};
use sqbench_generator::QueryWorkload;
use sqbench_graph::Dataset;
use sqbench_index::{build_index, MethodConfig, MethodKind, QueryOutcome};
use std::time::Duration;

/// Scale of an experiment run. The same experiment code is used at three
/// scales:
///
/// * [`ExperimentScale::smoke`] — seconds-long runs used by unit and
///   integration tests;
/// * [`ExperimentScale::laptop`] — the default for the Criterion benches;
///   keeps the shape of the paper's sweeps at a size a laptop can finish;
/// * [`ExperimentScale::paper`] — the full parameter grids of the paper
///   (needs a large machine and many hours, exactly as the original study
///   did).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Number of graphs in synthetic datasets (paper default: 1000).
    pub graph_count: usize,
    /// Mean nodes per synthetic graph (paper default: 200).
    pub avg_nodes: usize,
    /// Mean density of synthetic graphs (paper default: 0.025).
    pub avg_density: f64,
    /// Number of distinct labels (paper default: 20).
    pub label_count: u32,
    /// Queries generated per query size.
    pub queries_per_size: usize,
    /// Query sizes (in edges) to generate.
    pub query_sizes: Vec<usize>,
    /// Scale factor applied to the real-dataset simulators (1.0 = published
    /// sizes).
    pub real_dataset_scale: f64,
    /// Per-method time budget for indexing plus query processing (the
    /// scaled-down analogue of the paper's 8-hour limit).
    pub time_budget: Duration,
    /// RNG seed shared by dataset and workload generation.
    pub seed: u64,
}

impl ExperimentScale {
    /// Tiny configuration for tests: a handful of small graphs.
    pub fn smoke() -> Self {
        ExperimentScale {
            graph_count: 16,
            avg_nodes: 12,
            avg_density: 0.15,
            label_count: 5,
            queries_per_size: 2,
            query_sizes: vec![4, 8],
            real_dataset_scale: 0.002,
            time_budget: Duration::from_secs(30),
            seed: 7,
        }
    }

    /// Laptop-scale configuration used by the benches.
    pub fn laptop() -> Self {
        ExperimentScale {
            graph_count: 200,
            avg_nodes: 40,
            avg_density: 0.05,
            label_count: 20,
            queries_per_size: 10,
            query_sizes: vec![4, 8, 16, 32],
            real_dataset_scale: 0.01,
            time_budget: Duration::from_secs(120),
            seed: 42,
        }
    }

    /// The paper's full configuration ("sane defaults", 8-hour budget).
    pub fn paper() -> Self {
        ExperimentScale {
            graph_count: 1000,
            avg_nodes: 200,
            avg_density: 0.025,
            label_count: 20,
            queries_per_size: 100,
            query_sizes: vec![4, 8, 16, 32],
            real_dataset_scale: 1.0,
            time_budget: Duration::from_secs(8 * 3600),
            seed: 2015,
        }
    }
}

/// Options for a single [`run_methods`] invocation.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Which methods to run (defaults to all six).
    pub methods: Vec<MethodKind>,
    /// Per-method index/query configuration.
    pub config: MethodConfig,
    /// Per-method time budget (indexing + queries).
    pub time_budget: Duration,
    /// Worker threads the query workload is batched across. `1` (the
    /// default) processes queries sequentially, which is what the paper's
    /// latency measurements assume; higher values split each method's
    /// workload over a scoped thread pool — every worker keeps its own
    /// per-thread verification scratch, so throughput scales without
    /// per-query allocation. Per-query wall times are still recorded but
    /// overlap under contention, so prefer `1` when comparing latency
    /// numbers against the paper.
    pub query_threads: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            methods: MethodKind::ALL.to_vec(),
            config: MethodConfig::default(),
            time_budget: Duration::from_secs(120),
            query_threads: 1,
        }
    }
}

impl RunOptions {
    /// Options sized for fast tests (small fingerprints, short paths).
    pub fn fast() -> Self {
        RunOptions {
            config: MethodConfig::fast(),
            time_budget: Duration::from_secs(30),
            ..Default::default()
        }
    }

    /// Restricts the run to a subset of methods.
    pub fn with_methods(mut self, methods: &[MethodKind]) -> Self {
        self.methods = methods.to_vec();
        self
    }

    /// Batches each method's query workload across `threads` workers.
    pub fn with_query_threads(mut self, threads: usize) -> Self {
        self.query_threads = threads.max(1);
        self
    }
}

/// Builds each requested method over `dataset` and runs every query of every
/// workload against it, returning one [`MethodMetrics`] per method.
///
/// The time budget is enforced at two points: after index construction (a
/// method whose build alone exceeds the budget is marked `timed_out` and
/// processes no queries — the analogue of the paper's DNF entries) and
/// between queries. With the default sequential execution
/// (`query_threads == 1`) the skipped queries are exactly the workload
/// suffix, so `queries_executed` records how far the method got; with
/// batched execution each worker stops independently, so a timed-out
/// method's executed set is a scheduler-dependent subset (the metrics of
/// *completed* runs are unaffected — batched and sequential runs that
/// finish within budget execute the same queries).
pub fn run_methods(
    dataset: &Dataset,
    workloads: &[QueryWorkload],
    options: &RunOptions,
) -> Vec<MethodMetrics> {
    options
        .methods
        .iter()
        .map(|&kind| run_single_method(kind, dataset, workloads, options))
        .collect()
}

fn run_single_method(
    kind: MethodKind,
    dataset: &Dataset,
    workloads: &[QueryWorkload],
    options: &RunOptions,
) -> MethodMetrics {
    let budget = options.time_budget;
    let build_watch = Stopwatch::start();
    let index = build_index(kind, &options.config, dataset);
    let indexing_time_s = build_watch.elapsed_secs();
    let stats = index.stats();

    let mut outcomes: Vec<QueryOutcome> = Vec::new();
    let mut total_query_time = 0.0f64;
    let mut timed_out = build_watch.elapsed() > budget;

    if !timed_out {
        // Flatten the workloads once; the batched executor chunks this list
        // across the worker pool.
        let queries: Vec<&sqbench_graph::Graph> = workloads
            .iter()
            .flat_map(|w| w.iter().map(|(query, _)| query))
            .collect();
        let threads = options.query_threads.max(1).min(queries.len().max(1));
        let results = if threads <= 1 {
            run_queries_sequential(&*index, dataset, &queries, &build_watch, budget)
        } else {
            run_queries_batched(&*index, dataset, &queries, &build_watch, budget, threads)
        };
        for result in results {
            match result {
                Some((outcome, secs)) => {
                    total_query_time += secs;
                    outcomes.push(outcome);
                }
                None => timed_out = true,
            }
        }
    }

    let queries_executed = outcomes.len();
    MethodMetrics {
        method: kind.name().to_string(),
        indexing_time_s,
        index_size_bytes: stats.size_bytes,
        distinct_features: stats.distinct_features,
        avg_query_time_s: if queries_executed == 0 {
            0.0
        } else {
            total_query_time / queries_executed as f64
        },
        false_positive_ratio: workload_false_positive_ratio(&outcomes),
        queries_executed,
        timed_out,
    }
}

/// One query's result: `None` when the budget expired before it ran,
/// otherwise the outcome plus its wall time in seconds.
type QueryResult = Option<(QueryOutcome, f64)>;

/// Sequential query execution, preserving workload order (and therefore the
/// paper's "remaining queries are skipped once the budget is exhausted"
/// prefix semantics).
fn run_queries_sequential(
    index: &dyn sqbench_index::GraphIndex,
    dataset: &Dataset,
    queries: &[&sqbench_graph::Graph],
    build_watch: &Stopwatch,
    budget: Duration,
) -> Vec<QueryResult> {
    let mut results = Vec::with_capacity(queries.len());
    for &query in queries {
        if build_watch.elapsed() > budget {
            results.push(None);
            break;
        }
        let qwatch = Stopwatch::start();
        let outcome = index.query(dataset, query);
        results.push(Some((outcome, qwatch.elapsed_secs())));
    }
    results
}

/// Batched query execution: the workload is chunked across `threads` scoped
/// workers that share the index and dataset by reference. Each worker's
/// verification reuses its thread's match-state scratch, so serving a batch
/// allocates verification buffers once per worker, not once per query. The
/// budget is still checked before every query.
fn run_queries_batched(
    index: &dyn sqbench_index::GraphIndex,
    dataset: &Dataset,
    queries: &[&sqbench_graph::Graph],
    build_watch: &Stopwatch,
    budget: Duration,
    threads: usize,
) -> Vec<QueryResult> {
    let chunk_size = queries.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|&query| {
                            if build_watch.elapsed() > budget {
                                return None;
                            }
                            let qwatch = Stopwatch::start();
                            let outcome = index.query(dataset, query);
                            Some((outcome, qwatch.elapsed_secs()))
                        })
                        .collect::<Vec<QueryResult>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("query worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};

    fn small_setup() -> (Dataset, Vec<QueryWorkload>) {
        let ds = GraphGen::new(
            GraphGenConfig::default()
                .with_graph_count(15)
                .with_avg_nodes(12)
                .with_avg_density(0.15)
                .with_label_count(4)
                .with_seed(3),
        )
        .generate();
        let workloads = QueryGen::new(5).generate_all_sizes(&ds, 2, &[4, 8]);
        (ds, workloads)
    }

    #[test]
    fn runs_all_methods_and_reports_metrics() {
        let (ds, workloads) = small_setup();
        let results = run_methods(&ds, &workloads, &RunOptions::fast());
        assert_eq!(results.len(), 6);
        for m in &results {
            assert!(!m.timed_out, "method {} unexpectedly timed out", m.method);
            assert_eq!(m.queries_executed, 4);
            assert!(m.indexing_time_s >= 0.0);
            assert!(m.index_size_bytes > 0);
            assert!(m.false_positive_ratio >= 0.0 && m.false_positive_ratio <= 1.0);
        }
        // All methods returned, in the requested order.
        let names: Vec<&str> = results.iter().map(|m| m.method.as_str()).collect();
        assert_eq!(
            names,
            vec!["Grapes", "GGSX", "CT-Index", "gIndex", "Tree+Delta", "gCode"]
        );
    }

    #[test]
    fn method_subset_is_respected() {
        let (ds, workloads) = small_setup();
        let options = RunOptions::fast().with_methods(&[MethodKind::Ggsx, MethodKind::CtIndex]);
        let results = run_methods(&ds, &workloads, &options);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].method, "GGSX");
        assert_eq!(results[1].method, "CT-Index");
    }

    #[test]
    fn batched_execution_agrees_with_sequential() {
        let (ds, workloads) = small_setup();
        // Deterministic methods only: Tree+Δ mutates its index during query
        // processing, so its learned-feature trajectory is order-dependent.
        let kinds = [
            MethodKind::Grapes,
            MethodKind::Ggsx,
            MethodKind::CtIndex,
            MethodKind::GIndex,
            MethodKind::GCode,
        ];
        let sequential = run_methods(&ds, &workloads, &RunOptions::fast().with_methods(&kinds));
        let batched = run_methods(
            &ds,
            &workloads,
            &RunOptions::fast().with_methods(&kinds).with_query_threads(3),
        );
        assert_eq!(sequential.len(), batched.len());
        for (s, b) in sequential.iter().zip(batched.iter()) {
            assert_eq!(s.method, b.method);
            assert_eq!(s.queries_executed, b.queries_executed);
            assert!(!b.timed_out);
            assert!(
                (s.false_positive_ratio - b.false_positive_ratio).abs() < 1e-12,
                "{}: fp ratio diverged",
                s.method
            );
        }
    }

    #[test]
    fn query_threads_builder_clamps_to_one() {
        let options = RunOptions::fast().with_query_threads(0);
        assert_eq!(options.query_threads, 1);
        assert_eq!(RunOptions::default().query_threads, 1);
    }

    #[test]
    fn zero_budget_marks_methods_as_timed_out() {
        let (ds, workloads) = small_setup();
        let mut options = RunOptions::fast().with_methods(&[MethodKind::Ggsx]);
        options.time_budget = Duration::from_secs(0);
        let results = run_methods(&ds, &workloads, &options);
        assert!(results[0].timed_out);
        assert_eq!(results[0].queries_executed, 0);
        assert_eq!(results[0].avg_query_time_s, 0.0);
    }

    #[test]
    fn scales_expose_paper_defaults() {
        let paper = ExperimentScale::paper();
        assert_eq!(paper.graph_count, 1000);
        assert_eq!(paper.avg_nodes, 200);
        assert!((paper.avg_density - 0.025).abs() < 1e-12);
        assert_eq!(paper.label_count, 20);
        assert_eq!(paper.time_budget, Duration::from_secs(8 * 3600));
        let smoke = ExperimentScale::smoke();
        assert!(smoke.graph_count < ExperimentScale::laptop().graph_count);
        assert!(ExperimentScale::laptop().graph_count < paper.graph_count);
    }
}
