//! Experiment report structures and rendering.
//!
//! Every experiment produces an [`ExperimentReport`]: a series of
//! x-axis points (a dataset name for Figure 1, a parameter value for the
//! scalability sweeps), each carrying one [`MethodMetrics`] record per
//! method. [`render_text`] prints the same four panels the paper plots
//! (indexing time, index size, query processing time, false positive
//! ratio); [`render_csv`] emits a flat machine-readable table.

use crate::metrics::MethodMetrics;
use serde::{Deserialize, Serialize};

/// One x-axis point of an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentPoint {
    /// Human-readable x-axis label (e.g. `"AIDS"` or `"nodes=200"`).
    pub x_label: String,
    /// Numeric x value where applicable (0 for categorical points).
    pub x_value: f64,
    /// Per-method measurements at this point.
    pub results: Vec<MethodMetrics>,
}

/// A full experiment report (one table or figure of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Short id, e.g. `"fig2_nodes"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Description of the workload/parameters used.
    pub description: String,
    /// The measured series.
    pub points: Vec<ExperimentPoint>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        description: impl Into<String>,
    ) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            description: description.into(),
            points: Vec::new(),
        }
    }

    /// Adds a point to the report.
    pub fn push_point(&mut self, point: ExperimentPoint) {
        self.points.push(point);
    }

    /// All method names appearing in the report, in first-seen order.
    pub fn method_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for point in &self.points {
            for result in &point.results {
                if !names.contains(&result.method) {
                    names.push(result.method.clone());
                }
            }
        }
        names
    }

    /// Looks up the metrics of `method` at point index `point_idx`.
    pub fn metrics_at(&self, point_idx: usize, method: &str) -> Option<&MethodMetrics> {
        self.points
            .get(point_idx)?
            .results
            .iter()
            .find(|m| m.method == method)
    }
}

/// Extracts one formatted metric cell from a method's measurements.
type PanelExtractor = fn(&MethodMetrics) -> String;

/// The four metric panels of each figure in the paper.
const PANELS: [(&str, PanelExtractor); 4] = [
    ("Indexing time (s)", |m| format!("{:.4}", m.indexing_time_s)),
    ("Index size (MB)", |m| format!("{:.4}", m.index_size_mb())),
    ("Query processing time (s)", |m| {
        format!("{:.6}", m.avg_query_time_s)
    }),
    ("False positive ratio", |m| {
        format!("{:.4}", m.false_positive_ratio)
    }),
];

/// Renders the report as four plain-text panels (one per metric), each a
/// table with one row per x-axis point and one column per method — the same
/// series the corresponding paper figure plots.
pub fn render_text(report: &ExperimentReport) -> String {
    let methods = report.method_names();
    let mut out = String::new();
    out.push_str(&format!("# {} — {}\n", report.id, report.title));
    out.push_str(&format!("# {}\n", report.description));
    for (panel_title, extract) in PANELS {
        out.push_str(&format!("\n## {panel_title}\n"));
        // Header.
        out.push_str(&format!("{:>18}", "x"));
        for m in &methods {
            out.push_str(&format!("{m:>14}"));
        }
        out.push('\n');
        for point in &report.points {
            out.push_str(&format!("{:>18}", point.x_label));
            for m in &methods {
                let cell = point
                    .results
                    .iter()
                    .find(|r| &r.method == m)
                    .map(|r| {
                        if r.timed_out {
                            "DNF".to_string()
                        } else {
                            extract(r)
                        }
                    })
                    .unwrap_or_else(|| "-".to_string());
                out.push_str(&format!("{cell:>14}"));
            }
            out.push('\n');
        }
    }
    out
}

/// Renders the report as CSV with one row per (point, method) pair,
/// including the per-stage breakdown recorded by the query service (mean
/// queue wait / filter / verify seconds and total candidates pruned) and
/// the sharding columns (`shards`, the total `(query, shard)` probes the
/// routing tier dispatched and skipped, the busiest shard's processing
/// seconds, the lightest/heaviest *probed*-shard balance, and the
/// incremental `partition_overhead_bytes` the shard partition cost on top
/// of the source dataset — 1, 0 and degenerate values for unsharded runs).
///
/// The outcome columns (`queries_degraded`, `queries_failed`,
/// `queries_shed`, `retries`) report the fault-tolerance accounting: how
/// many queries returned a sound partial answer, how many exhausted their
/// retry budget, how many were shed at admission, and how many retry
/// probes were dispatched — all 0 on a healthy fault-free run.
///
/// The ingest columns (`inserts_applied`, `removes_applied`) count the
/// typed mutations the sharded service applied while draining a mixed
/// read/write admission queue — always 0 for batch runs, which serve a
/// frozen dataset snapshot.
///
/// The tail-latency columns (`latency_p50_s`, `latency_p95_s`,
/// `latency_p99_s`) are per-query end-to-end latency percentiles from the
/// run's latency histogram — the SLO view that a mean cannot give,
/// because saturation shows up in the tail long before it moves the
/// average. All 0 when the run recorded no latencies.
///
/// The cache columns report the cross-query caching layer:
/// `avg_cache_probe_s` is the mean per-query time spent probing the
/// feature cache and answer memo (already excluded from
/// `avg_filter_time_s`), and the `cache_*` counters are the run's
/// feature-cache and answer-memo hits/misses plus total LRU evictions —
/// all 0 when the run leaves [`crate::service::CachePolicy`] disabled.
///
/// The exact header and field order are pinned by the golden-file test in
/// `tests/golden_report.rs`; figure scripts parse these columns by name, so
/// changes here must update the golden file deliberately.
pub fn render_csv(report: &ExperimentReport) -> String {
    let mut out = String::from(
        "experiment,x_label,x_value,method,indexing_time_s,index_size_bytes,distinct_features,\
         avg_query_time_s,avg_queue_wait_s,avg_cache_probe_s,avg_filter_time_s,\
         avg_verify_time_s,latency_p50_s,latency_p95_s,latency_p99_s,\
         candidates_pruned,false_positive_ratio,queries_executed,shards,\
         shards_probed,shards_skipped,max_shard_time_s,shard_balance,partition_overhead_bytes,\
         queries_degraded,queries_failed,queries_shed,retries,inserts_applied,removes_applied,\
         timed_out,cache_feature_hits,\
         cache_feature_misses,cache_answer_hits,cache_answer_misses,cache_evictions\n",
    );
    for point in &report.points {
        for m in &point.results {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                report.id,
                point.x_label,
                point.x_value,
                m.method,
                m.indexing_time_s,
                m.index_size_bytes,
                m.distinct_features,
                m.avg_query_time_s,
                m.stages.avg_queue_wait_s(),
                m.stages.avg_cache_probe_s(),
                m.stages.avg_filter_s(),
                m.stages.avg_verify_s(),
                m.latency_p50_s(),
                m.latency_p95_s(),
                m.latency_p99_s(),
                m.stages.candidates_pruned,
                m.false_positive_ratio,
                m.queries_executed,
                m.shards,
                m.shards_probed,
                m.shards_skipped,
                m.max_shard_time_s(),
                m.shard_balance(),
                m.partition_overhead_bytes,
                m.queries_degraded,
                m.queries_failed,
                m.queries_shed,
                m.retries,
                m.inserts_applied,
                m.removes_applied,
                m.timed_out,
                m.cache.feature_hits,
                m.cache.feature_misses,
                m.cache.answer_hits,
                m.cache.answer_misses,
                m.cache.evictions
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics(method: &str, t: f64) -> MethodMetrics {
        let mut stages = crate::metrics::StageTotals::default();
        for _ in 0..8 {
            stages.add_query(t / 1000.0, 0.0, t / 400.0, t / 200.0, 12);
        }
        MethodMetrics {
            method: method.to_string(),
            indexing_time_s: t,
            index_size_bytes: 1024 * 1024,
            distinct_features: 10,
            avg_query_time_s: t / 100.0,
            false_positive_ratio: 0.5,
            queries_executed: 8,
            timed_out: false,
            queries_degraded: 0,
            queries_failed: 0,
            queries_shed: 0,
            retries: 0,
            inserts_applied: 0,
            removes_applied: 0,
            stages,
            shards: 1,
            shards_probed: 0,
            shards_skipped: 0,
            shard_stages: Vec::new(),
            partition_overhead_bytes: 0,
            cache: crate::metrics::CacheCounters::default(),
        }
    }

    fn sample_report() -> ExperimentReport {
        let mut report = ExperimentReport::new("fig_test", "Test figure", "two points");
        report.push_point(ExperimentPoint {
            x_label: "50".into(),
            x_value: 50.0,
            results: vec![sample_metrics("Grapes", 1.0), sample_metrics("GGSX", 2.0)],
        });
        report.push_point(ExperimentPoint {
            x_label: "100".into(),
            x_value: 100.0,
            results: vec![
                sample_metrics("Grapes", 3.0),
                MethodMetrics {
                    timed_out: true,
                    ..sample_metrics("GGSX", 4.0)
                },
            ],
        });
        report
    }

    #[test]
    fn method_names_in_first_seen_order() {
        let report = sample_report();
        assert_eq!(report.method_names(), vec!["Grapes", "GGSX"]);
    }

    #[test]
    fn metrics_lookup() {
        let report = sample_report();
        assert!((report.metrics_at(0, "GGSX").unwrap().indexing_time_s - 2.0).abs() < 1e-12);
        assert!(report.metrics_at(0, "gCode").is_none());
        assert!(report.metrics_at(5, "Grapes").is_none());
    }

    #[test]
    fn text_rendering_contains_panels_and_dnf() {
        let text = render_text(&sample_report());
        assert!(text.contains("Indexing time (s)"));
        assert!(text.contains("Index size (MB)"));
        assert!(text.contains("Query processing time (s)"));
        assert!(text.contains("False positive ratio"));
        assert!(text.contains("DNF"));
        assert!(text.contains("Grapes"));
        assert!(text.contains("fig_test"));
    }

    #[test]
    fn csv_rendering_has_one_row_per_method_point() {
        let csv = render_csv(&sample_report());
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 1 + 4); // header + 2 points × 2 methods
        assert!(lines[0].starts_with("experiment,"));
        assert!(lines[0].contains("avg_filter_time_s"));
        assert!(lines[0].contains("candidates_pruned"));
        assert!(
            lines[0].contains("shards,shards_probed,shards_skipped,max_shard_time_s,shard_balance")
        );
        assert!(lines[0].contains(
            "queries_degraded,queries_failed,queries_shed,retries,\
             inserts_applied,removes_applied,timed_out"
        ));
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
        assert!(lines[4].contains("true") || lines[3].contains("true")); // the DNF row
    }

    #[test]
    fn serde_round_trip_via_clone_eq() {
        let report = sample_report();
        let copy = report.clone();
        assert_eq!(report, copy);
    }
}
