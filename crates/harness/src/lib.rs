//! # sqbench-harness
//!
//! Experiment harness that reproduces the evaluation of the VLDB 2015 paper
//! *"Performance and Scalability of Indexed Subgraph Query Processing
//! Methods"*: it generates the paper's datasets and query workloads, drives
//! all six index methods through the same build → filter → verify pipeline,
//! and reports the paper's four metrics — index construction time, index
//! size, query processing time, and false positive ratio.
//!
//! The crate is organized as:
//!
//! * [`metrics`] — timers, per-method metric records and the false positive
//!   ratio of Equation (3);
//! * [`runner`] — the machinery that builds each index, runs a query
//!   workload against it and enforces the experiment time budget (the
//!   paper's 8-hour limit, scaled down);
//! * [`service`] — the long-lived query service the runner routes
//!   workloads through: a pipelined filter → verify worker pool with
//!   per-worker candidate arenas and work stealing, plus the sharded
//!   service (dataset partitioner, per-shard pools, merge stage) and the
//!   open admission queue (`submit`/`drain` with backpressure and
//!   per-query deadlines);
//! * [`report`] — experiment report data structures plus plain-text and CSV
//!   rendering of the same rows/series the paper plots;
//! * [`experiments`] — one module per table/figure of the paper
//!   (Table 1, Figures 1–6), each parameterized by an [`ExperimentScale`]
//!   so the same code runs as a quick smoke test, a laptop-scale benchmark
//!   or the full paper grid.
//!
//! ## Quick example
//!
//! ```
//! use sqbench_harness::{experiments, ExperimentScale};
//!
//! // Smoke-scale run of the Figure 2 experiment (varying number of nodes).
//! let report = experiments::fig2_nodes::run(&ExperimentScale::smoke());
//! assert!(!report.points.is_empty());
//! println!("{}", sqbench_harness::report::render_text(&report));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod loadgen;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod service;

pub use loadgen::{run_open_loop, ArrivalProcess, LoadGenConfig, OpenLoopReport};
pub use metrics::{
    counted_false_positive_ratio, workload_false_positive_ratio, CacheCounters, MethodMetrics,
    StageTotals,
};
pub use report::{ExperimentPoint, ExperimentReport};
pub use runner::{run_methods, ExperimentScale, RunOptions};
pub use service::{
    AdmissionQueue, AnswerMemo, BatchReport, CachePolicy, FeatureCache, QueryService, Router,
    RoutingMode, ServiceOptions, ShardStrategy, ShardedReport, ShardedService, SubmitError,
};
#[allow(deprecated)]
pub use service::{ServiceConfig, ShardedConfig};
