//! Regression tests for the shared-storage data model: partitioning and
//! prefix truncation must *reference* the source dataset's graphs, never
//! copy them.
//!
//! Before `Dataset` moved to `Arc<Graph>` storage, `partition_dataset`
//! deep-cloned every graph into its shard (doubling resident memory the
//! moment a dataset was sharded) and `Dataset::truncated` deep-cloned
//! every sweep prefix. These tests pin the zero-copy contract two ways:
//! **pointer identity** (`Arc::ptr_eq` against the source allocations — a
//! reintroduced deep copy cannot fake that) and **memory accounting**
//! (a partition's uniquely-owned bytes are pointer spines, a vanishing
//! fraction of the dataset's graph storage).

use sqbench_generator::{GraphGen, GraphGenConfig};
use sqbench_graph::Dataset;
use sqbench_harness::service::{partition_dataset, ShardStrategy};
use std::sync::Arc;

fn dataset(graphs: usize) -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(graphs)
            .with_avg_nodes(16)
            .with_avg_density(0.16)
            .with_label_count(6)
            .with_seed(0xa11c),
    )
    .generate()
}

#[test]
fn partition_reuses_the_source_allocations_for_every_strategy() {
    let ds = dataset(60);
    for strategy in ShardStrategy::ALL {
        for shards in [1usize, 2, 4, 7] {
            let parts = partition_dataset(&ds, shards, strategy);
            assert_eq!(parts.len(), shards);
            let mut covered = 0usize;
            for part in &parts {
                assert_eq!(part.dataset.len(), part.to_global.len());
                for (local, &global) in part.to_global.iter().enumerate() {
                    covered += 1;
                    assert!(
                        Arc::ptr_eq(
                            part.dataset.shared_unchecked(local),
                            ds.shared_unchecked(global)
                        ),
                        "{} @ {shards} shards: local {local} / global {global} \
                         is a fresh allocation, not the source graph",
                        strategy.name()
                    );
                }
            }
            assert_eq!(covered, ds.len(), "partition must cover every graph");
        }
    }
}

#[test]
fn truncated_prefixes_reuse_the_source_allocations() {
    let ds = dataset(40);
    for n in [0usize, 1, 7, 39, 40, 100] {
        let prefix = ds.truncated(n);
        assert_eq!(prefix.len(), n.min(ds.len()));
        for id in prefix.ids() {
            assert!(
                Arc::ptr_eq(prefix.shared_unchecked(id), ds.shared_unchecked(id)),
                "truncated({n}) deep-copied graph {id}"
            );
        }
        // A prefix owns nothing but its pointer spine while the source
        // dataset is alive.
        assert_eq!(
            prefix.shared_memory_bytes() + prefix.owned_memory_bytes(),
            prefix.memory_bytes()
        );
        if n > 0 {
            assert!(prefix.shared_memory_bytes() > 0);
        }
    }
}

/// The memory-accounting half of the acceptance criterion: a full
/// partition of a large dataset adds only pointer spines — ≤1% of the
/// dataset's graph storage, where the deep-copying implementation added
/// ~100%.
#[test]
fn partition_incremental_memory_is_pointer_sized() {
    let ds = dataset(3000);
    let dataset_bytes = ds.memory_bytes();
    for strategy in ShardStrategy::ALL {
        let parts = partition_dataset(&ds, 4, strategy);
        let incremental: usize = parts.iter().map(|p| p.dataset.owned_memory_bytes()).sum();
        let resident: usize = parts.iter().map(|p| p.dataset.memory_bytes()).sum();
        assert!(
            incremental * 100 <= dataset_bytes,
            "{}: partition added {incremental} bytes on a {dataset_bytes}-byte \
             dataset (> 1%) — a deep copy crept back in",
            strategy.name()
        );
        // The parts still *reach* the whole dataset's graph storage; they
        // just do not own it.
        assert!(resident >= dataset_bytes - incremental);
    }
}

/// Re-partitioning the same dataset under every strategy and several shard
/// counts — the placement-experiment pattern — must not accumulate graph
/// copies: all partitions alias the same allocations, so their combined
/// unique footprint stays within a few percent of the single dataset.
#[test]
fn repeated_placement_experiments_share_one_copy_of_the_graphs() {
    let ds = dataset(500);
    let dataset_bytes = ds.memory_bytes();
    let mut partitions = Vec::new();
    for strategy in ShardStrategy::ALL {
        for shards in [2usize, 4] {
            partitions.push(partition_dataset(&ds, shards, strategy));
        }
    }
    let incremental: usize = partitions
        .iter()
        .flatten()
        .map(|p| p.dataset.owned_memory_bytes())
        .sum();
    assert!(
        incremental * 20 <= dataset_bytes,
        "six concurrent partitions added {incremental} bytes on a \
         {dataset_bytes}-byte dataset — graph storage is being copied"
    );
}
