//! Property: fault injection can only *shrink* an answer set, never
//! corrupt it.
//!
//! For any seeded [`FaultPlan`] — verify panics, a stalled shard under a
//! tight deadline, any retry policy — and for **all seven methods**, every
//! record of a faulted wave must satisfy the outcome contract:
//!
//! * `Complete` → answers bit-identical to the fault-free oracle;
//! * `Degraded` → answers a *subset* of the fault-free oracle's (sound:
//!   every reported id is a verified match; incomplete: the missing shards'
//!   matches are absent, never replaced by garbage);
//! * `TimedOut` / `Failed` → answers empty (no partial state leaks).
//!
//! The properties are *conditional on the outcome* rather than asserting
//! which outcome occurs, so they hold on any box regardless of timing —
//! a stalled shard that still makes its deadline on a fast machine simply
//! lands in the `Complete` arm.

use proptest::prelude::*;
use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_harness::service::{
    silence_injected_panics, FaultPlan, FaultSpec, QueryOutcome, RetryPolicy, ServiceOptions,
    ShardedService,
};
use sqbench_index::{build_index, MethodConfig, MethodKind};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ALL_METHODS: [MethodKind; 7] = [
    MethodKind::Grapes,
    MethodKind::Ggsx,
    MethodKind::CtIndex,
    MethodKind::GIndex,
    MethodKind::TreeDelta,
    MethodKind::GCode,
    MethodKind::Scan,
];

fn dataset_from_seed(seed: u64, graphs: usize) -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(graphs)
            .with_avg_nodes(10)
            .with_avg_density(0.14)
            .with_label_count(4)
            .with_seed(seed),
    )
    .generate()
}

/// Checks one faulted record against the fault-free oracle's answers.
fn assert_outcome_contract(
    kind: MethodKind,
    qi: usize,
    outcome: QueryOutcome,
    answers: &[GraphId],
    expected: &[GraphId],
) {
    match outcome {
        QueryOutcome::Complete => prop_assert_eq!(
            answers,
            expected,
            "{}: Complete query {} must match the fault-free oracle",
            kind.name(),
            qi
        ),
        QueryOutcome::Degraded { shards_missing } => {
            prop_assert!(shards_missing >= 1);
            prop_assert!(
                answers.iter().all(|id| expected.contains(id)),
                "{}: Degraded query {} reported an id the oracle rejects",
                kind.name(),
                qi
            );
            // Sound partials are still sorted, deduplicated global ids.
            prop_assert!(answers.windows(2).all(|w| w[0] < w[1]));
        }
        QueryOutcome::TimedOut | QueryOutcome::Failed => prop_assert!(
            answers.is_empty(),
            "{}: {} query {} leaked partial answers",
            kind.name(),
            outcome.name(),
            qi
        ),
        QueryOutcome::Shed => prop_assert!(
            false,
            "batch waves bypass admission and can never shed (query {qi})"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Seeded verify panics, with and without retry, across all seven
    /// methods: answers shrink or heal, never corrupt.
    #[test]
    fn panicked_waves_never_corrupt_answers_for_any_method(
        seed in 0u64..400,
        graphs in 10usize..17,
        panic_queries in 1usize..4,
        panic_times in 1u32..12,
        retry_enabled in any::<bool>(),
    ) {
        silence_injected_panics();
        let ds = dataset_from_seed(seed, graphs);
        let config = MethodConfig::fast();
        let queries: Vec<Graph> = QueryGen::new(seed ^ 0xfa17)
            .generate(&ds, 3, 4)
            .iter()
            .map(|(q, _)| q.clone())
            .collect();
        let refs: Vec<&Graph> = queries.iter().collect();
        let retry = if retry_enabled {
            RetryPolicy { max_retries: 2, backoff: Duration::from_micros(100) }
        } else {
            RetryPolicy::none()
        };

        for kind in ALL_METHODS {
            let oracle = build_index(kind, &config, &ds);
            let expected: Vec<Vec<GraphId>> = queries
                .iter()
                .map(|q| oracle.query(&ds, q).answers)
                .collect();
            let plan = Arc::new(FaultPlan::seeded(seed, &FaultSpec {
                tickets: queries.len() as u64,
                shards: 3,
                panic_queries,
                panic_times,
                stalled_shards: 0,
                stall: Duration::ZERO,
                admission_failures: 0,
            }));
            let mut service = ShardedService::new(
                kind,
                &config,
                &ds,
                ServiceOptions::new().shards(3)
                    .retry(retry)
                    .faults(Arc::clone(&plan)),
            );
            let report = service.run_wave(&refs, None);
            prop_assert!(plan.injected_panics() >= 1, "the plan must actually fire");
            prop_assert_eq!(report.records.len(), queries.len());
            for (qi, record) in report.records.iter().enumerate() {
                assert_outcome_contract(kind, qi, record.outcome, &record.answers, &expected[qi]);
                // Without deadlines nothing can time out; a panicked probe
                // either heals (retry), degrades (other shards answered) or
                // fails — and a fault-free query completes untouched.
                prop_assert!(record.outcome != QueryOutcome::TimedOut);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A stalled shard under a deadline budget: whatever mix of Complete /
    /// Degraded / TimedOut the box's timing produces, every answer set
    /// respects the outcome contract for every method.
    #[test]
    fn stalled_waves_degrade_soundly_for_any_method(
        seed in 0u64..400,
        graphs in 10usize..17,
        stall_ms in 30u64..120,
    ) {
        silence_injected_panics();
        let ds = dataset_from_seed(seed, graphs);
        let config = MethodConfig::fast();
        let queries: Vec<Graph> = QueryGen::new(seed ^ 0x57a1)
            .generate(&ds, 3, 4)
            .iter()
            .map(|(q, _)| q.clone())
            .collect();
        let refs: Vec<&Graph> = queries.iter().collect();

        for kind in ALL_METHODS {
            let oracle = build_index(kind, &config, &ds);
            let expected: Vec<Vec<GraphId>> = queries
                .iter()
                .map(|q| oracle.query(&ds, q).answers)
                .collect();
            let plan = Arc::new(FaultPlan::seeded(seed, &FaultSpec {
                tickets: queries.len() as u64,
                shards: 3,
                panic_queries: 0,
                panic_times: 0,
                stalled_shards: 1,
                stall: Duration::from_millis(stall_ms),
                admission_failures: 0,
            }));
            let mut service = ShardedService::new(
                kind,
                &config,
                &ds,
                ServiceOptions::new().shards(3)
                    .retry(RetryPolicy::none())
                    .faults(Arc::clone(&plan)),
            );
            // A budget well under the stall: the stalled shard cannot make
            // it, the healthy shards usually can.
            let deadline = Instant::now() + Duration::from_millis(stall_ms / 3);
            let report = service.run_wave(&refs, Some(deadline));
            prop_assert_eq!(plan.injected_stalls(), 1);
            prop_assert_eq!(report.records.len(), queries.len());
            for (qi, record) in report.records.iter().enumerate() {
                assert_outcome_contract(kind, qi, record.outcome, &record.answers, &expected[qi]);
            }
        }
    }
}
