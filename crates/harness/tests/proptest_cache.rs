//! Property tests: the cross-query caching layer is invisible in answers.
//!
//! The tentpole soundness claim of the feature-posting-list cache and the
//! canonical answer memo is that they are *pure* accelerators: for every
//! method (the six indexed ones plus the scan baseline), a service built
//! with [`CachePolicy::enabled`] must return bit-identical answer sets to
//! the cache-disabled service — on the unsharded batch path and across a
//! 4-shard wave — including on *repeated* batches, where the second pass
//! is served substantially from cache (feature hits in the filter stage,
//! whole-answer hits at admission).
//!
//! Tree+Δ is the adversarial case: its Δ-feature learning mutates the
//! index during verification, so its candidate *sets* legitimately differ
//! between cached and uncached runs (the cache replays bitsets recorded
//! under an earlier Δ trajectory). Verification is exact, so the property
//! compares answers — the paper's observable — not candidates.

use proptest::prelude::*;
use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_harness::service::{CachePolicy, QueryService, ServiceOptions, ShardedService};
use sqbench_index::{build_index, MethodConfig, MethodKind};

const ALL_METHODS: [MethodKind; 7] = [
    MethodKind::Grapes,
    MethodKind::Ggsx,
    MethodKind::CtIndex,
    MethodKind::GIndex,
    MethodKind::TreeDelta,
    MethodKind::GCode,
    MethodKind::Scan,
];

fn dataset_from_seed(seed: u64, graphs: usize) -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(graphs)
            .with_avg_nodes(10)
            .with_avg_density(0.14)
            .with_label_count(4)
            .with_seed(seed),
    )
    .generate()
}

/// A workload with repeats: every query appears twice in one batch, so a
/// single wave already exercises intra-batch cache reuse, and running the
/// batch twice exercises cross-batch reuse.
fn repeated_queries(ds: &Dataset, seed: u64) -> Vec<Graph> {
    let base: Vec<Graph> = QueryGen::new(seed ^ 0xcac4e)
        .generate(ds, 3, 4)
        .iter()
        .map(|(q, _)| q.clone())
        .collect();
    let mut queries = base.clone();
    queries.extend(base);
    queries
}

fn answers_of(records: &[Option<sqbench_harness::service::QueryRecord>]) -> Vec<Vec<GraphId>> {
    records
        .iter()
        .map(|r| r.as_ref().expect("query completed").answers.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Unsharded: cached answers equal uncached answers for every method,
    /// on a first batch and on an identical repeat batch (served warm).
    #[test]
    fn cached_batches_match_uncached_for_all_methods(
        seed in 0u64..300,
        graphs in 10usize..19,
    ) {
        let ds = dataset_from_seed(seed, graphs);
        let config = MethodConfig::fast();
        let queries = repeated_queries(&ds, seed);
        let refs: Vec<&Graph> = queries.iter().collect();

        for kind in ALL_METHODS {
            let cold_index = build_index(kind, &config, &ds);
            let warm_index = build_index(kind, &config, &ds);
            let mut cold = QueryService::new(&*cold_index, &ds, ServiceOptions::new());
            let mut warm = QueryService::new(
                &*warm_index,
                &ds,
                ServiceOptions::new().cache(CachePolicy::enabled()),
            );
            for pass in 0..2 {
                let cold_report = cold.run_batch(&refs, None);
                let warm_report = warm.run_batch(&refs, None);
                prop_assert_eq!(
                    answers_of(&cold_report.records),
                    answers_of(&warm_report.records),
                    "{} diverged under caching (unsharded, pass {})",
                    kind.name(),
                    pass
                );
            }
        }
    }

    /// Sharded (4 shards): a cached wave equals the uncached wave for
    /// every method, cold and warm — per-shard feature caches and the
    /// service-level answer memo included.
    #[test]
    fn cached_waves_match_uncached_for_all_methods(
        seed in 0u64..300,
        graphs in 10usize..19,
    ) {
        let ds = dataset_from_seed(seed, graphs);
        let config = MethodConfig::fast();
        let queries = repeated_queries(&ds, seed);
        let refs: Vec<&Graph> = queries.iter().collect();

        for kind in ALL_METHODS {
            let mut cold = ShardedService::new(
                kind,
                &config,
                &ds,
                ServiceOptions::new().shards(4),
            );
            let mut warm = ShardedService::new(
                kind,
                &config,
                &ds,
                ServiceOptions::new().shards(4).cache(CachePolicy::enabled()),
            );
            for pass in 0..2 {
                let cold_report = cold.run_wave(&refs, None);
                let warm_report = warm.run_wave(&refs, None);
                for (qi, (c, w)) in cold_report
                    .records
                    .iter()
                    .zip(warm_report.records.iter())
                    .enumerate()
                {
                    prop_assert_eq!(
                        &c.answers,
                        &w.answers,
                        "{} diverged under caching (4 shards, pass {}, query {})",
                        kind.name(),
                        pass,
                        qi
                    );
                }
            }
            // The warm service genuinely cached: small queries repeat, so
            // by the second wave the answer memo must have served hits.
            let counters = warm.cache_counters();
            prop_assert!(
                counters.answer_hits > 0,
                "{}: repeated small queries must hit the answer memo",
                kind.name()
            );
        }
    }
}
