//! Property tests: sharding — and selective shard *routing* — are
//! invisible in match sets.
//!
//! For every method (the six indexed ones plus the scan baseline), serving
//! a workload over {1, 2, 4, 7} shards must return exactly the same
//! graph-id match sets as the unsharded one-shot `query()` path — on both
//! partitioning strategies, including shard counts that do not divide the
//! dataset evenly (the generated datasets have 10–18 graphs, so 4 and 7
//! leave ragged and even empty shards). Filtering power may differ per
//! shard; answers may not.
//!
//! The routing-equivalence property extends this to the synopsis router:
//! routed waves must be bit-identical to full fan-out *and* to the
//! unsharded oracle, on uniform datasets (where synopses rarely
//! discriminate) and on adversarially label-skewed ones (where routing
//! skips most shards — the exact regime where an unsound synopsis would
//! silently drop answers).
//!
//! Both matrices run over **all three** placement strategies —
//! round-robin, size-balanced (LPT) and label-aware clustering — so a
//! placement bug can never hide behind one layout; a final property pins
//! the point of label-aware placement itself: on interleaved
//! label-clustered ingest with a shard count coprime to the family count,
//! it must let routing probe strictly fewer shards than round-robin.

use proptest::prelude::*;
use sqbench_generator::{label_clustered, GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_harness::service::{RoutingMode, ServiceOptions, ShardStrategy, ShardedService};
use sqbench_index::{build_index, MethodConfig, MethodKind};

const ALL_METHODS: [MethodKind; 7] = [
    MethodKind::Grapes,
    MethodKind::Ggsx,
    MethodKind::CtIndex,
    MethodKind::GIndex,
    MethodKind::TreeDelta,
    MethodKind::GCode,
    MethodKind::Scan,
];

fn dataset_from_seed(seed: u64, graphs: usize) -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(graphs)
            .with_avg_nodes(10)
            .with_avg_density(0.14)
            .with_label_count(4)
            .with_seed(seed),
    )
    .generate()
}

/// Adversarial label skew: four label-disjoint families interleaved
/// `i % 4`, so under round-robin placement with 2 or 4 shards every query
/// (drawn from one family) can only match on a single shard and a sound
/// router must skip all others.
fn skewed_dataset_from_seed(seed: u64, graphs: usize) -> Dataset {
    label_clustered(
        &GraphGenConfig::default()
            .with_graph_count(graphs)
            .with_avg_nodes(10)
            .with_avg_density(0.14)
            .with_label_count(4)
            .with_seed(seed),
        4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sharded answers equal unsharded answers for every method, shard
    /// count and placement strategy.
    #[test]
    fn sharded_matches_unsharded_for_all_methods(
        seed in 0u64..300,
        graphs in 10usize..19,
    ) {
        let ds = dataset_from_seed(seed, graphs);
        let config = MethodConfig::fast();
        let queries: Vec<Graph> = QueryGen::new(seed ^ 0x5a4d)
            .generate(&ds, 3, 4)
            .iter()
            .map(|(q, _)| q.clone())
            .collect();
        let refs: Vec<&Graph> = queries.iter().collect();

        for kind in ALL_METHODS {
            // Unsharded ground truth on a fresh index per query order
            // (Tree+Δ mutates its index while querying).
            let oracle = build_index(kind, &config, &ds);
            let expected: Vec<Vec<GraphId>> = queries
                .iter()
                .map(|q| oracle.query(&ds, q).answers)
                .collect();

            for strategy in ShardStrategy::ALL {
                for shards in [1usize, 2, 4, 7] {
                    let mut service = ShardedService::new(
                        kind,
                        &config,
                        &ds,
                        ServiceOptions::new().shards(shards).strategy(strategy),
                    );
                    prop_assert_eq!(service.shard_count(), shards);
                    prop_assert_eq!(
                        service.shard_sizes().iter().sum::<usize>(),
                        ds.len(),
                        "partition must cover the dataset exactly once"
                    );
                    let report = service.run_wave(&refs, None);
                    prop_assert_eq!(report.executed(), queries.len());
                    prop_assert_eq!(report.expired(), 0);
                    for (qi, record) in report.records.iter().enumerate() {
                        prop_assert_eq!(
                            &record.answers,
                            &expected[qi],
                            "{} diverged on query {} with {} shards ({})",
                            kind.name(),
                            qi,
                            shards,
                            strategy.name()
                        );
                        // Merged answers are sorted, deduplicated global ids.
                        prop_assert!(record.answers.windows(2).all(|w| w[0] < w[1]));
                        prop_assert!(record
                            .answers
                            .iter()
                            .all(|&id| id < ds.len()));
                        // No filtering false dismissals survive the merge:
                        // candidates cover the answers on every shard, so the
                        // merged candidate count can never undercut the
                        // merged answer count.
                        prop_assert!(record.candidate_count >= record.answer_count());
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Routing equivalence: for every method, placement strategy and
    /// multi-shard count, routed waves return bit-identical match sets to
    /// full fan-out and to the unsharded oracle — on uniform datasets and
    /// on adversarially label-skewed ones where routing skips most shards.
    #[test]
    fn routed_matches_fanout_and_unsharded_for_all_methods(
        seed in 0u64..200,
        graphs in 10usize..19,
        skewed in any::<bool>(),
    ) {
        let ds = if skewed {
            skewed_dataset_from_seed(seed, graphs)
        } else {
            dataset_from_seed(seed, graphs)
        };
        let config = MethodConfig::fast();
        let queries: Vec<Graph> = QueryGen::new(seed ^ 0x0_405)
            .generate(&ds, 3, 4)
            .iter()
            .map(|(q, _)| q.clone())
            .collect();
        let refs: Vec<&Graph> = queries.iter().collect();

        for kind in ALL_METHODS {
            let oracle = build_index(kind, &config, &ds);
            let expected: Vec<Vec<GraphId>> = queries
                .iter()
                .map(|q| oracle.query(&ds, q).answers)
                .collect();

            for strategy in ShardStrategy::ALL {
                for shards in [2usize, 4, 7] {
                    let base = ServiceOptions::new().shards(shards).strategy(strategy);
                    let mut fanout = ShardedService::new(
                        kind,
                        &config,
                        &ds,
                        base.clone().routing(RoutingMode::Fanout),
                    );
                    let mut routed = ShardedService::new(
                        kind,
                        &config,
                        &ds,
                        base.clone().routing(RoutingMode::Synopsis),
                    );
                    let mut routed_fp = ShardedService::new(
                        kind,
                        &config,
                        &ds,
                        base.routing(RoutingMode::SynopsisFingerprint),
                    );
                    let fanout_report = fanout.run_wave(&refs, None);
                    let routed_report = routed.run_wave(&refs, None);
                    let fp_report = routed_fp.run_wave(&refs, None);
                    prop_assert_eq!(routed_report.executed(), queries.len());
                    prop_assert_eq!(routed_report.expired(), 0);
                    for (qi, (f, r)) in fanout_report
                        .records
                        .iter()
                        .zip(routed_report.records.iter())
                        .enumerate()
                    {
                        // The three-way equivalence of the acceptance
                        // criterion: routed == fanout == unsharded oracle.
                        prop_assert_eq!(
                            &r.answers,
                            &expected[qi],
                            "{} routed≠oracle on query {} ({} shards, {}, skewed={})",
                            kind.name(), qi, shards, strategy.name(), skewed
                        );
                        prop_assert_eq!(
                            &r.answers,
                            &f.answers,
                            "{} routed≠fanout on query {}",
                            kind.name(), qi
                        );
                        // The fingerprint tier may only prune *more*
                        // shards, never answers: fp-routed ≡ fanout too.
                        let fp_rec = &fp_report.records[qi];
                        prop_assert_eq!(
                            &fp_rec.answers,
                            &f.answers,
                            "{} fp-routed≠fanout on query {}",
                            kind.name(), qi
                        );
                        prop_assert!(
                            fp_rec.shards_probed <= r.shards_probed,
                            "{}: fingerprint admitted a shard bounds refuted",
                            kind.name()
                        );
                        // Probe accounting always partitions the shards...
                        prop_assert_eq!(f.shards_probed, shards);
                        prop_assert_eq!(f.shards_skipped, 0);
                        prop_assert_eq!(r.shards_probed + r.shards_skipped, shards);
                        // ...a sound router never skips a shard that holds
                        // an answer (the answers above prove it), and every
                        // query is a real subgraph of its source graph, so
                        // its home shard must admit it.
                        prop_assert!(r.shards_probed >= 1);
                        // Adversarial skew: families have ids ≡ f (mod 4),
                        // so with 2 or 4 round-robin shards each query's
                        // family — and thus every possible answer — lives
                        // on exactly one shard; routing must skip the rest.
                        if skewed
                            && strategy == ShardStrategy::RoundRobin
                            && (shards == 2 || shards == 4)
                        {
                            prop_assert_eq!(
                                r.shards_probed,
                                1,
                                "{}: skewed query {} leaked past its family shard",
                                kind.name(),
                                qi
                            );
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The reason [`ShardStrategy::LabelAware`] exists: on interleaved
    /// label-clustered ingest with a shard count that does not divide the
    /// family count (here 3 shards over 4 families — round-robin smears
    /// every family across every shard), label-aware placement must let
    /// synopsis routing probe strictly fewer shards than round-robin,
    /// while staying bit-identical to the unsharded oracle. Pinned to
    /// [`RoutingMode::Synopsis`] (bounds only) deliberately: fingerprint
    /// refutation can rescue even a smeared round-robin placement (content
    /// bits refute shards that bounds admit), which is a feature of
    /// [`RoutingMode::SynopsisFingerprint`] — this test isolates what
    /// *placement* buys the bound checks.
    #[test]
    fn label_aware_placement_beats_round_robin_on_interleaved_ingest(
        seed in 0u64..200,
        graphs in 16usize..25,
    ) {
        let ds = skewed_dataset_from_seed(seed, graphs);
        let config = MethodConfig::fast();
        let queries: Vec<Graph> = QueryGen::new(seed ^ 0x91ace)
            .generate(&ds, 4, 4)
            .iter()
            .map(|(q, _)| q.clone())
            .collect();
        let refs: Vec<&Graph> = queries.iter().collect();
        let kind = MethodKind::Ggsx;
        let oracle = build_index(kind, &config, &ds);
        let expected: Vec<Vec<GraphId>> = queries
            .iter()
            .map(|q| oracle.query(&ds, q).answers)
            .collect();
        let mut reports = Vec::new();
        for strategy in [ShardStrategy::RoundRobin, ShardStrategy::LabelAware] {
            let mut service = ShardedService::new(
                kind,
                &config,
                &ds,
                ServiceOptions::new().shards(3)
                    .strategy(strategy)
                    .routing(RoutingMode::Synopsis),
            );
            let report = service.run_wave(&refs, None);
            for (qi, record) in report.records.iter().enumerate() {
                prop_assert_eq!(
                    &record.answers,
                    &expected[qi],
                    "{} placement changed query {}'s match set",
                    strategy.name(),
                    qi
                );
            }
            reports.push(report);
        }
        let (rr, la) = (&reports[0], &reports[1]);
        prop_assert!(
            la.shards_probed() < rr.shards_probed(),
            "label-aware probed {} of round-robin's {} — clustering bought nothing",
            la.shards_probed(),
            rr.shards_probed()
        );
    }
}
