//! Property test: sharding is invisible in match sets.
//!
//! For every method (the six indexed ones plus the scan baseline), serving
//! a workload over {1, 2, 4, 7} shards must return exactly the same
//! graph-id match sets as the unsharded one-shot `query()` path — on both
//! partitioning strategies, including shard counts that do not divide the
//! dataset evenly (the generated datasets have 10–18 graphs, so 4 and 7
//! leave ragged and even empty shards). Filtering power may differ per
//! shard; answers may not.

use proptest::prelude::*;
use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_harness::service::{ShardStrategy, ShardedConfig, ShardedService};
use sqbench_index::{build_index, MethodConfig, MethodKind};

const ALL_METHODS: [MethodKind; 7] = [
    MethodKind::Grapes,
    MethodKind::Ggsx,
    MethodKind::CtIndex,
    MethodKind::GIndex,
    MethodKind::TreeDelta,
    MethodKind::GCode,
    MethodKind::Scan,
];

fn dataset_from_seed(seed: u64, graphs: usize) -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(graphs)
            .with_avg_nodes(10)
            .with_avg_density(0.14)
            .with_label_count(4)
            .with_seed(seed),
    )
    .generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sharded answers equal unsharded answers for every method, shard
    /// count and placement strategy.
    #[test]
    fn sharded_matches_unsharded_for_all_methods(
        seed in 0u64..300,
        graphs in 10usize..19,
    ) {
        let ds = dataset_from_seed(seed, graphs);
        let config = MethodConfig::fast();
        let queries: Vec<Graph> = QueryGen::new(seed ^ 0x5a4d)
            .generate(&ds, 3, 4)
            .iter()
            .map(|(q, _)| q.clone())
            .collect();
        let refs: Vec<&Graph> = queries.iter().collect();

        for kind in ALL_METHODS {
            // Unsharded ground truth on a fresh index per query order
            // (Tree+Δ mutates its index while querying).
            let oracle = build_index(kind, &config, &ds);
            let expected: Vec<Vec<GraphId>> = queries
                .iter()
                .map(|q| oracle.query(&ds, q).answers)
                .collect();

            for strategy in [ShardStrategy::RoundRobin, ShardStrategy::SizeBalanced] {
                for shards in [1usize, 2, 4, 7] {
                    let mut service = ShardedService::build(
                        kind,
                        &config,
                        &ds,
                        &ShardedConfig::with_shards(shards).strategy(strategy),
                    );
                    prop_assert_eq!(service.shard_count(), shards);
                    prop_assert_eq!(
                        service.shard_sizes().iter().sum::<usize>(),
                        ds.len(),
                        "partition must cover the dataset exactly once"
                    );
                    let report = service.run_wave(&refs, None);
                    prop_assert_eq!(report.executed(), queries.len());
                    prop_assert_eq!(report.expired(), 0);
                    for (qi, record) in report.records.iter().enumerate() {
                        prop_assert_eq!(
                            &record.answers,
                            &expected[qi],
                            "{} diverged on query {} with {} shards ({})",
                            kind.name(),
                            qi,
                            shards,
                            strategy.name()
                        );
                        // Merged answers are sorted, deduplicated global ids.
                        prop_assert!(record.answers.windows(2).all(|w| w[0] < w[1]));
                        prop_assert!(record
                            .answers
                            .iter()
                            .all(|&id| id < ds.len()));
                        // No filtering false dismissals survive the merge:
                        // candidates cover the answers on every shard, so the
                        // merged candidate count can never undercut the
                        // merged answer count.
                        prop_assert!(record.candidate_count >= record.answer_count());
                    }
                }
            }
        }
    }
}
