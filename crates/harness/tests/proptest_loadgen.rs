//! Property: the open-loop load generator is a pure function of its
//! seed — same config ⇒ same arrival schedule and query sequence, on any
//! machine and any number of replays. This is what makes saturation
//! experiments comparable across methods: every method faces bit-identical
//! offered load.

use proptest::prelude::*;
use sqbench_harness::loadgen::{ArrivalProcess, LoadGenConfig};

/// Builds the process from generated integers: the vendored proptest has
/// integer strategies only, so rates and exponents derive from them.
fn process_of(bursty: bool, qps_x10: u64, burst: usize) -> ArrivalProcess {
    let qps = qps_x10 as f64 / 10.0;
    if bursty {
        ArrivalProcess::Bursty { qps, burst }
    } else {
        ArrivalProcess::Poisson { qps }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed ⇒ byte-identical schedule; the schedule is well-formed
    /// (ordered in time, pool indexes in range, exact arrival count).
    #[test]
    fn same_seed_same_schedule(
        bursty in any::<bool>(),
        qps_x10 in 500u64..50_000,
        burst in 1usize..12,
        queries in 1usize..512,
        pool_len in 1usize..64,
        exponent_x100 in 0u32..200,
        seed in any::<u64>(),
    ) {
        let config = LoadGenConfig::new(process_of(bursty, qps_x10, burst), queries)
            .seed(seed)
            .zipf_exponent(exponent_x100 as f64 / 100.0);
        let first = config.schedule(pool_len);
        let second = config.schedule(pool_len);
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(first.len(), queries);
        prop_assert!(first.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
        prop_assert!(first.iter().all(|a| a.pool_index < pool_len));
    }

    /// Different seeds diverge: the generator actually uses its seed
    /// (a constant schedule would trivially pass determinism).
    #[test]
    fn different_seeds_diverge(
        bursty in any::<bool>(),
        qps_x10 in 500u64..50_000,
        burst in 1usize..12,
        seed in any::<u64>(),
    ) {
        let config = LoadGenConfig::new(process_of(bursty, qps_x10, burst), 64);
        let a = config.seed(seed).schedule(16);
        let b = config.seed(seed.wrapping_add(1)).schedule(16);
        prop_assert!(a != b, "seeds {} and {} produced identical schedules", seed, seed.wrapping_add(1));
    }
}
