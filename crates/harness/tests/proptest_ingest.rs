//! Property tests: online ingest is invisible in match sets.
//!
//! The mutable-dataset contract is *answer equivalence*: after any
//! interleaving of inserts, removals and queries, a service that absorbed
//! the mutations incrementally must return exactly the answers of an
//! index rebuilt from scratch over the surviving dataset. Candidate sets
//! may differ — a mutated gIndex or Tree+Δ keeps its frozen feature
//! vocabulary, so it can filter more loosely than a re-mined rebuild —
//! but the verified answers may not.
//!
//! The matrix runs every method (the six indexed ones plus the scan
//! baseline) over {1, 4} shards with **both cache levels enabled**, so a
//! stale feature bitset or answer-memo entry surviving a mutation cannot
//! hide: each query runs twice, and the second, memo-warmed wave must
//! still match the rebuilt-from-scratch oracle.
//!
//! A deterministic soak drives the same contract through the admission
//! queue: a scripted mixed read/write workload drains in ticket order,
//! loses no tickets, and every read observes exactly the dataset state of
//! its admission point.

use proptest::prelude::*;
use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_harness::service::{
    AdmissionQueue, CachePolicy, QueryOutcome, ServiceOptions, ShardedService, Ticket,
};
use sqbench_index::{build_index, MethodConfig, MethodKind};

const ALL_METHODS: [MethodKind; 7] = [
    MethodKind::Grapes,
    MethodKind::Ggsx,
    MethodKind::CtIndex,
    MethodKind::GIndex,
    MethodKind::TreeDelta,
    MethodKind::GCode,
    MethodKind::Scan,
];

fn dataset_from_seed(seed: u64, graphs: usize) -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(graphs)
            .with_avg_nodes(9)
            .with_avg_density(0.15)
            .with_label_count(4)
            .with_seed(seed),
    )
    .generate()
}

/// Graphs to feed the insert path: drawn from the same generator family
/// as the dataset (so inserted graphs actually join answer sets) but from
/// an independent seed (so they are not byte-identical to resident ones).
fn insert_pool(seed: u64, graphs: usize) -> Vec<Graph> {
    let pool = dataset_from_seed(seed ^ 0xfeed_beef, graphs);
    pool.ids()
        .map(|id| pool.graph_unchecked(id).clone())
        .collect()
}

/// One scripted mutation-or-read step, decoded from proptest bytes.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert,
    Remove(u8),
    Query(u8),
}

fn decode(kind: u8, sel: u8) -> Op {
    match kind % 3 {
        0 => Op::Insert,
        1 => Op::Remove(sel),
        _ => Op::Query(sel),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The acceptance property: any interleaving of insert/remove/query
    /// answers exactly like re-indexing from scratch — for all seven
    /// methods, unsharded (one shard) and across four shards, with both
    /// cache levels enabled throughout.
    #[test]
    fn interleaved_ingest_matches_rebuild_for_all_methods(
        seed in 0u64..200,
        graphs in 8usize..13,
        script in collection::vec((any::<u8>(), any::<u8>()), 6..10),
    ) {
        let ds = dataset_from_seed(seed, graphs);
        let pool = insert_pool(seed, 4);
        let config = MethodConfig::fast();
        let queries: Vec<Graph> = QueryGen::new(seed ^ 0x16e57)
            .generate(&ds, 3, 4)
            .iter()
            .map(|(q, _)| q.clone())
            .collect();

        for kind in ALL_METHODS {
            for shards in [1usize, 4] {
                let mut service = ShardedService::new(
                    kind,
                    &config,
                    &ds,
                    ServiceOptions::new()
                        .shards(shards)
                        .cache(CachePolicy::enabled()),
                );
                // The mirror replays every mutation on a plain Dataset; a
                // from-scratch rebuild over it is the ground truth.
                let mut mirror = ds.clone();
                let mut next_insert = 0usize;

                for (step, &(kind_byte, sel)) in script.iter().enumerate() {
                    match decode(kind_byte, sel) {
                        Op::Insert => {
                            let g = pool[next_insert % pool.len()].clone();
                            next_insert += 1;
                            let got = service.insert_graph(g.clone());
                            let want = mirror.push(g);
                            prop_assert_eq!(
                                got, want,
                                "{}: insert ids diverged at step {}",
                                kind.name(), step
                            );
                        }
                        Op::Remove(sel) => {
                            let target = sel as GraphId % mirror.len();
                            let got = service.remove_graph(target);
                            let want = mirror.remove(target);
                            prop_assert_eq!(
                                got, want,
                                "{}: removal of {} diverged at step {}",
                                kind.name(), target, step
                            );
                        }
                        Op::Query(sel) => {
                            let q = &queries[sel as usize % queries.len()];
                            let expected = build_index(kind, &config, &mirror)
                                .query(&mirror, q)
                                .answers;
                            // Twice: the second wave is memo-warmed, so a
                            // stale cache entry would surface here.
                            for wave in 0..2 {
                                let report = service.run_wave(&[q], None);
                                prop_assert_eq!(
                                    &report.records[0].answers,
                                    &expected,
                                    "{}: wave {} diverged from rebuild at step {} ({} shards)",
                                    kind.name(), wave, step, shards
                                );
                            }
                        }
                    }
                }

                // Whatever the script did, the end state must answer every
                // workload query exactly like a from-scratch rebuild.
                for q in &queries {
                    let expected = build_index(kind, &config, &mirror)
                        .query(&mirror, q)
                        .answers;
                    let report = service.run_wave(&[q], None);
                    prop_assert_eq!(
                        &report.records[0].answers,
                        &expected,
                        "{}: final state diverged from rebuild ({} shards)",
                        kind.name(), shards
                    );
                    prop_assert!(report.records[0]
                        .answers
                        .iter()
                        .all(|&id| mirror.is_live(id)));
                }
            }
        }
    }
}

/// The mixed read/write soak of the CI `ingest-proptest` job: a scripted
/// workload of reads, inserts and removals flows through one admission
/// queue and drains in ticket order. No ticket may be lost, mutation
/// accounting must balance, and every read must observe exactly the
/// dataset state of its admission point — with the answer memo enabled
/// and demonstrably hot (repeated reads between mutations), so a stale
/// cached answer cannot survive.
#[test]
fn mixed_read_write_soak_loses_no_tickets_and_serves_no_stale_answers() {
    let ds = dataset_from_seed(7, 12);
    let config = MethodConfig::fast();
    let queries: Vec<Graph> = QueryGen::new(0x50a)
        .generate(&ds, 3, 4)
        .iter()
        .map(|(q, _)| q.clone())
        .collect();
    let pool = insert_pool(7, 4);
    let mut service = ShardedService::new(
        MethodKind::Grapes,
        &config,
        &ds,
        ServiceOptions::new()
            .shards(4)
            .cache(CachePolicy::enabled()),
    );

    // Script: each round drains three waves through the same queue —
    // a cold read pass, a repeat read pass (the memo, probed once per
    // wave, only hits across waves), then a mutation followed by reads
    // that must observe the post-mutation state.
    #[derive(Debug, Clone)]
    enum Planned {
        Read(usize),
        Insert(usize),
        Remove(GraphId),
    }
    let mut waves: Vec<Vec<Planned>> = Vec::new();
    for round in 0..4usize {
        let reads: Vec<Planned> = (0..queries.len()).map(Planned::Read).collect();
        waves.push(reads.clone());
        waves.push(reads.clone());
        let mutation = if round % 2 == 0 {
            Planned::Insert(round / 2)
        } else {
            Planned::Remove(round as GraphId)
        };
        let mut mixed = vec![mutation];
        mixed.extend(reads);
        waves.push(mixed);
    }

    let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(64));
    let mut script = Vec::new();
    let mut records = Vec::new();
    let (mut inserts, mut removes) = (0usize, 0usize);
    for wave in &waves {
        for op in wave {
            match op {
                Planned::Read(qi) => queue.submit(queries[*qi].clone(), None).unwrap(),
                Planned::Insert(pi) => queue.submit_insert(pool[*pi].clone()).unwrap(),
                Planned::Remove(id) => queue.submit_remove(*id).unwrap(),
            };
        }
        let report = service.drain(&queue, None);
        assert_eq!(report.records.len(), wave.len(), "a ticket was lost");
        assert_eq!(report.expired(), 0);
        inserts += report.inserts_applied;
        removes += report.removes_applied;
        script.extend(wave.iter().cloned());
        records.extend(report.records);
    }

    // No lost tickets: one record per submitted op, in ticket order,
    // numbered continuously across every drained wave.
    assert_eq!(records.len(), script.len());
    let tickets: Vec<Ticket> = records.iter().map(|r| r.ticket).collect();
    assert_eq!(tickets, (0..script.len() as Ticket).collect::<Vec<_>>());
    assert_eq!(inserts, 2);
    assert_eq!(removes, 2);

    // Replay the script against a mirror dataset: every read's answers
    // must equal a from-scratch rebuild over the mirror at that instant.
    let mut mirror = ds.clone();
    let mut oracle = Some(build_index(MethodKind::Grapes, &config, &mirror));
    for (op, record) in script.iter().zip(&records) {
        match op {
            Planned::Read(qi) => {
                let oracle =
                    oracle.get_or_insert_with(|| build_index(MethodKind::Grapes, &config, &mirror));
                let expected = oracle.query(&mirror, &queries[*qi]).answers;
                assert_eq!(
                    record.answers, expected,
                    "ticket {} served answers from a stale dataset state",
                    record.ticket
                );
            }
            Planned::Insert(pi) => {
                mirror.push(pool[*pi].clone());
                oracle = None; // rebuild lazily at the next read
                assert_eq!(record.outcome, QueryOutcome::Complete);
                assert!(record.answers.is_empty());
            }
            Planned::Remove(id) => {
                assert!(mirror.remove(*id));
                oracle = None;
                assert_eq!(record.outcome, QueryOutcome::Complete);
                assert!(record.answers.is_empty());
            }
        }
    }

    // The staleness check above only bites if the memo actually served
    // hits between mutations — prove it was hot.
    assert!(
        service.cache_counters().answer_hits > 0,
        "soak never exercised the answer memo"
    );
}
