//! Basic graph algorithms needed across the workspace: traversal,
//! connectivity, and component extraction.
//!
//! These are used by the dataset statistics (number of disconnected graphs in
//! Table 1), by the Grapes verification stage (which tests the query against
//! individual connected components), and by the generators (to report how
//! many synthetic graphs are trees vs. contain cycles, as discussed in §4.2
//! of the paper).

use crate::graph::{Graph, VertexId};
use std::collections::VecDeque;

/// Returns the vertices of each connected component of `g`, as a vector of
/// vertex-id lists. Components are discovered in order of their smallest
/// vertex id; vertices within a component are listed in BFS order.
pub fn connected_components(g: &Graph) -> Vec<Vec<VertexId>> {
    let n = g.vertex_count();
    let mut visited = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            component.push(v);
            for &w in g.neighbors(v) {
                if !visited[w] {
                    visited[w] = true;
                    queue.push_back(w);
                }
            }
        }
        components.push(component);
    }
    components
}

/// `true` iff the graph is connected. The empty graph is considered
/// connected (it has zero components, hence no disconnection).
pub fn is_connected(g: &Graph) -> bool {
    if g.vertex_count() == 0 {
        return true;
    }
    connected_components(g).len() == 1
}

/// Extracts each connected component of `g` as a standalone [`Graph`].
/// Used by Grapes-style verification, which matches the query against each
/// surviving component separately.
pub fn component_subgraphs(g: &Graph) -> Vec<Graph> {
    connected_components(g)
        .into_iter()
        .map(|vs| g.induced_subgraph(&vs))
        .collect()
}

/// Breadth-first order of vertices reachable from `start`.
pub fn bfs_order(g: &Graph, start: VertexId) -> Vec<VertexId> {
    let n = g.vertex_count();
    if start >= n {
        return Vec::new();
    }
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in g.neighbors(v) {
            if !visited[w] {
                visited[w] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Depth-first order of vertices reachable from `start` (preorder, neighbors
/// visited in ascending id order).
pub fn dfs_order(g: &Graph, start: VertexId) -> Vec<VertexId> {
    let n = g.vertex_count();
    if start >= n {
        return Vec::new();
    }
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        if visited[v] {
            continue;
        }
        visited[v] = true;
        order.push(v);
        // Push in reverse so that the smallest-id neighbor is popped first.
        for &w in g.neighbors(v).iter().rev() {
            if !visited[w] {
                stack.push(w);
            }
        }
    }
    order
}

/// `true` iff the graph contains at least one cycle. For undirected graphs a
/// connected component with `|E| >= |V|` necessarily has a cycle, and a
/// forest satisfies `|E| = |V| - #components`.
pub fn has_cycle(g: &Graph) -> bool {
    let components = connected_components(g);
    let num_components = components.len();
    g.edge_count() > g.vertex_count().saturating_sub(num_components)
}

/// `true` iff the graph is a forest of simple paths (every vertex has degree
/// at most two and there are no cycles). GraphGen statistics in the paper
/// distinguish path/tree/cyclic graphs; the generators use this helper to
/// report that mix.
pub fn is_path_forest(g: &Graph) -> bool {
    !has_cycle(g) && g.vertices().all(|v| g.degree(v) <= 2)
}

/// Shortest-path distance (in edges) between `from` and `to`, or `None` if
/// they are not connected (or out of range).
pub fn bfs_distance(g: &Graph, from: VertexId, to: VertexId) -> Option<usize> {
    let n = g.vertex_count();
    if from >= n || to >= n {
        return None;
    }
    if from == to {
        return Some(0);
    }
    let mut dist = vec![usize::MAX; n];
    dist[from] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            if dist[w] == usize::MAX {
                dist[w] = dist[v] + 1;
                if w == to {
                    return Some(dist[w]);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

/// The diameter (longest shortest path) of the graph, computed by running a
/// BFS from every vertex. Returns 0 for graphs with fewer than two vertices
/// and `None` if the graph is disconnected.
pub fn diameter(g: &Graph) -> Option<usize> {
    let n = g.vertex_count();
    if n < 2 {
        return Some(0);
    }
    if !is_connected(g) {
        return None;
    }
    let mut best = 0usize;
    for start in 0..n {
        let mut dist = vec![usize::MAX; n];
        dist[start] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    best = best.max(dist[w]);
                    queue.push_back(w);
                }
            }
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn two_triangles() -> Graph {
        GraphBuilder::new("2tri")
            .vertices(&[0, 0, 0, 1, 1, 1])
            .edges(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .build()
            .unwrap()
    }

    fn path5() -> Graph {
        GraphBuilder::new("p5")
            .vertices(&[0, 1, 2, 3, 4])
            .edges(&[(0, 1), (1, 2), (2, 3), (3, 4)])
            .build()
            .unwrap()
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = two_triangles();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4, 5]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn components_of_connected_graph() {
        let g = path5();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).len(), 1);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::new("empty");
        assert!(is_connected(&g));
        assert!(connected_components(&g).is_empty());
    }

    #[test]
    fn component_subgraphs_preserve_structure() {
        let g = two_triangles();
        let subs = component_subgraphs(&g);
        assert_eq!(subs.len(), 2);
        for sub in subs {
            assert_eq!(sub.vertex_count(), 3);
            assert_eq!(sub.edge_count(), 3);
            assert!(has_cycle(&sub));
        }
    }

    #[test]
    fn bfs_and_dfs_cover_component() {
        let g = path5();
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(dfs_order(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_order(&g, 2), vec![2, 1, 3, 0, 4]);
        assert!(bfs_order(&g, 99).is_empty());
    }

    #[test]
    fn cycle_detection() {
        assert!(has_cycle(&two_triangles()));
        assert!(!has_cycle(&path5()));
        let star = GraphBuilder::new("star")
            .vertices(&[0, 1, 1, 1])
            .edges(&[(0, 1), (0, 2), (0, 3)])
            .build()
            .unwrap();
        assert!(!has_cycle(&star));
        assert!(!is_path_forest(&star)); // center has degree 3
        assert!(is_path_forest(&path5()));
    }

    #[test]
    fn distances_and_diameter() {
        let g = path5();
        assert_eq!(bfs_distance(&g, 0, 4), Some(4));
        assert_eq!(bfs_distance(&g, 2, 2), Some(0));
        assert_eq!(bfs_distance(&g, 0, 99), None);
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(diameter(&two_triangles()), None);
        assert_eq!(bfs_distance(&two_triangles(), 0, 3), None);
    }
}
