//! Per-graph and per-dataset statistics, plus the routing synopses the
//! sharded query service consults before fanning a query out.
//!
//! [`DatasetStats`] computes exactly the columns of Table 1 in the paper:
//! number of graphs, number of disconnected graphs, number of distinct
//! labels, average / standard deviation of the number of nodes per graph,
//! average number of edges, average density, average degree, and average
//! number of distinct labels per graph.
//!
//! [`GraphSynopsis`] and [`ShardSynopsis`] summarize what a graph (or a
//! shard's worth of graphs) *could possibly contain*: label multiplicities,
//! a cumulative degree histogram, the set of edge label pairs, and
//! vertex/edge maxima. [`ShardSynopsis::admits`] is a **sound necessary
//! condition** for a subgraph match existing inside the shard — it may
//! admit a shard that holds no match (a false positive, resolved by the
//! index + verifier), but it never rejects a shard that does (no false
//! negatives), mirroring the paper's filtering contract.

use crate::algo::is_connected;
use crate::dataset::Dataset;
use crate::graph::{Graph, Label};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Summary statistics of a single graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges.
    pub edges: usize,
    /// Density per Definition 4.
    pub density: f64,
    /// Average degree per Definition 5.
    pub average_degree: f64,
    /// Number of distinct labels occurring in the graph.
    pub distinct_labels: usize,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Whether the graph is connected.
    pub connected: bool,
}

impl GraphStats {
    /// Computes statistics for one graph.
    pub fn of(g: &Graph) -> Self {
        GraphStats {
            vertices: g.vertex_count(),
            edges: g.edge_count(),
            density: g.density(),
            average_degree: g.average_degree(),
            distinct_labels: g.distinct_label_count(),
            max_degree: g.max_degree(),
            connected: is_connected(g),
        }
    }
}

/// Summary statistics of a whole dataset — the rows of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of graphs in the dataset.
    pub graph_count: usize,
    /// Number of graphs that are disconnected.
    pub disconnected_graphs: usize,
    /// Number of distinct labels used across the dataset.
    pub distinct_labels: usize,
    /// Average number of vertices per graph.
    pub avg_nodes: f64,
    /// Standard deviation of the number of vertices per graph.
    pub stddev_nodes: f64,
    /// Average number of edges per graph.
    pub avg_edges: f64,
    /// Average graph density.
    pub avg_density: f64,
    /// Average of the graphs' average degrees.
    pub avg_degree: f64,
    /// Average number of distinct labels per graph.
    pub avg_labels_per_graph: f64,
}

impl DatasetStats {
    /// Computes Table-1 style statistics for a dataset.
    pub fn of(ds: &Dataset) -> Self {
        let n = ds.len();
        if n == 0 {
            return DatasetStats {
                name: ds.name().to_string(),
                graph_count: 0,
                disconnected_graphs: 0,
                distinct_labels: 0,
                avg_nodes: 0.0,
                stddev_nodes: 0.0,
                avg_edges: 0.0,
                avg_density: 0.0,
                avg_degree: 0.0,
                avg_labels_per_graph: 0.0,
            };
        }
        let per_graph: Vec<GraphStats> = ds.iter().map(|(_, g)| GraphStats::of(g)).collect();
        let nf = n as f64;
        let avg_nodes = per_graph.iter().map(|s| s.vertices as f64).sum::<f64>() / nf;
        let var_nodes = per_graph
            .iter()
            .map(|s| {
                let d = s.vertices as f64 - avg_nodes;
                d * d
            })
            .sum::<f64>()
            / nf;
        DatasetStats {
            name: ds.name().to_string(),
            graph_count: n,
            disconnected_graphs: per_graph.iter().filter(|s| !s.connected).count(),
            distinct_labels: ds.distinct_label_count(),
            avg_nodes,
            stddev_nodes: var_nodes.sqrt(),
            avg_edges: per_graph.iter().map(|s| s.edges as f64).sum::<f64>() / nf,
            avg_density: per_graph.iter().map(|s| s.density).sum::<f64>() / nf,
            avg_degree: per_graph.iter().map(|s| s.average_degree).sum::<f64>() / nf,
            avg_labels_per_graph: per_graph
                .iter()
                .map(|s| s.distinct_labels as f64)
                .sum::<f64>()
                / nf,
        }
    }

    /// Renders the statistics as a single human-readable row, matching the
    /// layout of Table 1 in the paper.
    pub fn to_table_row(&self) -> String {
        format!(
            "{name:12} graphs={graphs:7} disconnected={disc:6} labels={labels:4} \
             avg_nodes={an:9.2} sd_nodes={sd:9.2} avg_edges={ae:10.2} \
             avg_density={ad:7.4} avg_degree={deg:7.2} avg_labels={al:6.2}",
            name = self.name,
            graphs = self.graph_count,
            disc = self.disconnected_graphs,
            labels = self.distinct_labels,
            an = self.avg_nodes,
            sd = self.stddev_nodes,
            ae = self.avg_edges,
            ad = self.avg_density,
            deg = self.avg_degree,
            al = self.avg_labels_per_graph,
        )
    }
}

/// A cheap, order-independent summary of what one graph could contain,
/// used on both sides of the shard-routing admissibility test: computed
/// per query at routing time and folded into a [`ShardSynopsis`] per data
/// graph at partition time.
///
/// Every field is *monotone under subgraph embedding*: if `q` is a
/// subgraph of `g` (injective, label-preserving, edge-preserving — the
/// paper's Definition 2), then field-by-field `q`'s synopsis is dominated
/// by `g`'s. That monotonicity is what makes [`ShardSynopsis::admits`] a
/// sound necessary condition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GraphSynopsis {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges.
    pub edges: usize,
    /// Vertices per label: `label_counts[l]` is how many vertices carry
    /// label `l`. An embedding maps the query's `l`-labeled vertices
    /// injectively onto the data graph's, so each count is monotone.
    pub label_counts: BTreeMap<Label, usize>,
    /// Cumulative degree histogram: `degree_ge[d]` is the number of
    /// vertices with degree **at least** `d` (so `degree_ge[0]` is the
    /// vertex count; the vector has `max_degree + 1` entries, empty for
    /// the empty graph). An embedding maps a query vertex of degree `d`
    /// to a data vertex of degree ≥ `d` (its neighbors map to distinct
    /// neighbors), so each cumulative count is monotone.
    pub degree_ge: Vec<usize>,
    /// The set of unordered endpoint-label pairs `(a, b)` with `a <= b`
    /// over all edges. Every query edge must reappear (label-for-label)
    /// in the data graph, so the query's pair set is a subset of the data
    /// graph's.
    pub label_pairs: BTreeSet<(Label, Label)>,
}

impl GraphSynopsis {
    /// Computes the synopsis of one graph in a single pass over its
    /// vertices and edges.
    pub fn of(g: &Graph) -> Self {
        let mut label_counts: BTreeMap<Label, usize> = BTreeMap::new();
        for &label in g.labels() {
            *label_counts.entry(label).or_insert(0) += 1;
        }
        let mut degree_ge = vec![0usize; if g.is_empty() { 0 } else { g.max_degree() + 1 }];
        for v in g.vertices() {
            // Count per exact degree first; suffix-sum below turns the
            // histogram into cumulative "degree at least d" counts.
            degree_ge[g.degree(v)] += 1;
        }
        for d in (0..degree_ge.len().saturating_sub(1)).rev() {
            degree_ge[d] += degree_ge[d + 1];
        }
        let label_pairs = g
            .edges()
            .map(|(u, v)| {
                let (a, b) = (g.label(u), g.label(v));
                (a.min(b), a.max(b))
            })
            .collect();
        GraphSynopsis {
            vertices: g.vertex_count(),
            edges: g.edge_count(),
            label_counts,
            degree_ge,
            label_pairs,
        }
    }
}

/// Per-shard routing synopsis: the field-wise *maximum* of the shard's
/// per-graph [`GraphSynopsis`]es (and the union of their label-pair sets).
///
/// A subgraph query answers per graph, so the shard can hold a match only
/// if **some single graph** dominates the query's synopsis. Taking the
/// per-field maximum over graphs relaxes that (the dominating values may
/// come from different graphs), which keeps the synopsis tiny at the cost
/// of extra admissions — never missed ones: if `q ⊆ g` for a graph `g` in
/// the shard, every field of `q`'s synopsis is ≤ `g`'s ≤ the shard's
/// maximum, and `q`'s label pairs are inside `g`'s ⊆ the shard's union.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardSynopsis {
    /// Number of graphs summarized.
    pub graphs: usize,
    /// Largest vertex count of any single graph.
    pub max_vertices: usize,
    /// Largest edge count of any single graph.
    pub max_edges: usize,
    /// Per label: the largest number of vertices carrying it in any
    /// single graph (a query needing 3 `L7` vertices skips shards whose
    /// best graph has ≤ 2).
    pub max_label_counts: BTreeMap<Label, usize>,
    /// Per degree `d`: the largest `degree_ge[d]` of any single graph.
    pub degree_ge_max: Vec<usize>,
    /// Union of the graphs' edge label-pair sets.
    pub label_pairs: BTreeSet<(Label, Label)>,
}

impl ShardSynopsis {
    /// Computes the synopsis of a whole dataset (one shard's slice).
    pub fn of(dataset: &Dataset) -> Self {
        let mut synopsis = ShardSynopsis::default();
        for (_, g) in dataset.iter() {
            synopsis.absorb(&GraphSynopsis::of(g));
        }
        synopsis
    }

    /// Folds one graph's synopsis into the shard summary.
    pub fn absorb(&mut self, g: &GraphSynopsis) {
        self.graphs += 1;
        self.max_vertices = self.max_vertices.max(g.vertices);
        self.max_edges = self.max_edges.max(g.edges);
        for (&label, &count) in &g.label_counts {
            let entry = self.max_label_counts.entry(label).or_insert(0);
            *entry = (*entry).max(count);
        }
        if g.degree_ge.len() > self.degree_ge_max.len() {
            self.degree_ge_max.resize(g.degree_ge.len(), 0);
        }
        for (d, &count) in g.degree_ge.iter().enumerate() {
            self.degree_ge_max[d] = self.degree_ge_max[d].max(count);
        }
        self.label_pairs.extend(g.label_pairs.iter().copied());
    }

    /// Sound admissibility test: `false` **proves** no graph in the shard
    /// contains the query (safe to skip the shard); `true` means a match
    /// is possible and the shard must be probed.
    ///
    /// Every check tests a condition that `q ⊆ g` implies for each graph
    /// `g` in the shard (see the field docs), so rejecting requires *all*
    /// graphs to fail at least one monotone bound — a necessary-condition
    /// filter with no false negatives, exactly the contract the paper
    /// demands of index filtering.
    pub fn admits(&self, q: &GraphSynopsis) -> bool {
        if q.vertices > self.max_vertices || q.edges > self.max_edges {
            return false;
        }
        if q.degree_ge.len() > self.degree_ge_max.len() {
            return false; // the query needs a higher degree than any graph has
        }
        for (d, &needed) in q.degree_ge.iter().enumerate() {
            if needed > self.degree_ge_max[d] {
                return false;
            }
        }
        for (label, &needed) in &q.label_counts {
            if self.max_label_counts.get(label).copied().unwrap_or(0) < needed {
                return false;
            }
        }
        q.label_pairs.is_subset(&self.label_pairs)
    }

    /// Estimated heap bytes of the synopsis — the routing layer's whole
    /// memory cost, reported alongside index sizes.
    pub fn memory_bytes(&self) -> usize {
        self.max_label_counts.len() * std::mem::size_of::<(Label, usize)>()
            + self.degree_ge_max.capacity() * std::mem::size_of::<usize>()
            + self.label_pairs.len() * std::mem::size_of::<(Label, Label)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle(label: u32) -> Graph {
        GraphBuilder::new("tri")
            .vertices(&[label, label, label + 1])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap()
    }

    fn disconnected_pair() -> Graph {
        GraphBuilder::new("pair")
            .vertices(&[0, 1, 2, 3])
            .edges(&[(0, 1), (2, 3)])
            .build()
            .unwrap()
    }

    #[test]
    fn graph_stats_of_triangle() {
        let s = GraphStats::of(&triangle(0));
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 3);
        assert!((s.density - 1.0).abs() < 1e-12);
        assert!((s.average_degree - 2.0).abs() < 1e-12);
        assert_eq!(s.distinct_labels, 2);
        assert_eq!(s.max_degree, 2);
        assert!(s.connected);
    }

    #[test]
    fn graph_stats_detects_disconnection() {
        let s = GraphStats::of(&disconnected_pair());
        assert!(!s.connected);
    }

    #[test]
    fn dataset_stats_aggregates() {
        let ds = Dataset::from_graphs("mix", vec![triangle(0), triangle(5), disconnected_pair()]);
        let s = DatasetStats::of(&ds);
        assert_eq!(s.graph_count, 3);
        assert_eq!(s.disconnected_graphs, 1);
        // labels used: {0,1,5,6} from triangles + {0,1,2,3} from the pair
        assert_eq!(s.distinct_labels, 6);
        assert!((s.avg_nodes - (3.0 + 3.0 + 4.0) / 3.0).abs() < 1e-12);
        assert!((s.avg_edges - (3.0 + 3.0 + 2.0) / 3.0).abs() < 1e-12);
        assert!(s.stddev_nodes > 0.0);
        assert!(s.avg_density > 0.0 && s.avg_density <= 1.0);
    }

    #[test]
    fn dataset_stats_of_empty_dataset() {
        let s = DatasetStats::of(&Dataset::new("empty"));
        assert_eq!(s.graph_count, 0);
        assert_eq!(s.avg_nodes, 0.0);
        assert_eq!(s.stddev_nodes, 0.0);
    }

    #[test]
    fn stddev_is_zero_for_identical_graphs() {
        let ds = Dataset::from_graphs("same", vec![triangle(0), triangle(0)]);
        let s = DatasetStats::of(&ds);
        assert!(s.stddev_nodes.abs() < 1e-12);
    }

    #[test]
    fn table_row_contains_name_and_counts() {
        let ds = Dataset::from_graphs("rowtest", vec![triangle(0)]);
        let row = DatasetStats::of(&ds).to_table_row();
        assert!(row.contains("rowtest"));
        assert!(row.contains("graphs="));
        assert!(row.contains("avg_density="));
    }

    // ------------------------------------------------------------------
    // Routing synopses. The soundness contract under test: whenever the
    // query IS a subgraph of some shard graph the synopsis MUST admit;
    // rejections are only allowed when a monotone bound proves no graph
    // can contain the query.
    // ------------------------------------------------------------------

    /// A labeled path `labels[0] - labels[1] - ...`.
    fn path(labels: &[u32]) -> Graph {
        let edges: Vec<(usize, usize)> = (1..labels.len()).map(|i| (i - 1, i)).collect();
        GraphBuilder::new("path")
            .vertices(labels)
            .edges(&edges)
            .build()
            .unwrap()
    }

    /// A star: `center` linked to each leaf label.
    fn star(center: u32, leaves: &[u32]) -> Graph {
        let mut labels = vec![center];
        labels.extend_from_slice(leaves);
        let edges: Vec<(usize, usize)> = (1..=leaves.len()).map(|leaf| (0, leaf)).collect();
        GraphBuilder::new("star")
            .vertices(&labels)
            .edges(&edges)
            .build()
            .unwrap()
    }

    #[test]
    fn graph_synopsis_counts_labels_degrees_and_pairs() {
        let s = GraphSynopsis::of(&triangle(0)); // labels 0, 0, 1
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.label_counts[&0], 2);
        assert_eq!(s.label_counts[&1], 1);
        // All three triangle vertices have degree 2.
        assert_eq!(s.degree_ge, vec![3, 3, 3]);
        assert!(s.label_pairs.contains(&(0, 0)));
        assert!(s.label_pairs.contains(&(0, 1)));
        assert_eq!(s.label_pairs.len(), 2);
        // The empty graph has an empty synopsis.
        assert_eq!(
            GraphSynopsis::of(&Graph::new("e")),
            GraphSynopsis::default()
        );
    }

    #[test]
    fn synopsis_must_admit_actual_subgraphs() {
        // Queries carved out of a shard graph must always be admitted —
        // the no-false-negative half of the contract, checked exhaustively
        // over every induced subgraph of every shard graph.
        let shard = Dataset::from_graphs(
            "shard",
            vec![triangle(0), star(7, &[1, 2, 3]), path(&[4, 5, 4, 5])],
        );
        let synopsis = ShardSynopsis::of(&shard);
        for (_, g) in shard.iter() {
            for mask in 1u32..(1 << g.vertex_count()) {
                let vertices: Vec<usize> = (0..g.vertex_count())
                    .filter(|v| mask & (1 << v) != 0)
                    .collect();
                let sub = g.induced_subgraph(&vertices);
                assert!(
                    synopsis.admits(&GraphSynopsis::of(&sub)),
                    "synopsis rejected an actual subgraph of {} (mask {mask:b})",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn synopsis_safely_rejects_impossible_queries() {
        let shard = Dataset::from_graphs("shard", vec![triangle(0), path(&[0, 1, 0])]);
        let synopsis = ShardSynopsis::of(&shard);
        // More `0`-labeled vertices than any single graph has (2 + 1 split
        // across graphs does not help — matches are per graph).
        assert!(!synopsis.admits(&GraphSynopsis::of(&path(&[0, 0, 0]))));
        // A label absent from the shard.
        assert!(!synopsis.admits(&GraphSynopsis::of(&path(&[9, 0]))));
        // A degree no shard vertex reaches (star center: degree 3 > 2).
        assert!(!synopsis.admits(&GraphSynopsis::of(&star(0, &[0, 1, 1]))));
        // An edge label pair the shard never contains: (1, 1).
        assert!(!synopsis.admits(&GraphSynopsis::of(&path(&[1, 1]))));
        // More vertices than the largest graph.
        assert!(!synopsis.admits(&GraphSynopsis::of(&path(&[0, 1, 0, 1]))));
    }

    #[test]
    fn empty_shard_rejects_everything_but_the_empty_query() {
        let synopsis = ShardSynopsis::of(&Dataset::new("empty"));
        assert_eq!(synopsis.graphs, 0);
        assert!(!synopsis.admits(&GraphSynopsis::of(&path(&[0]))));
        assert!(!synopsis.admits(&GraphSynopsis::of(&triangle(0))));
        // The empty query is vacuously contained everywhere; admitting it
        // is sound (probing an empty shard simply answers nothing).
        assert!(synopsis.admits(&GraphSynopsis::default()));
    }

    #[test]
    fn single_label_universe_routes_on_structure_alone() {
        // Every vertex carries label 0, so labels cannot discriminate —
        // admissibility must fall back to size and degree bounds.
        let shard = Dataset::from_graphs("mono", vec![path(&[0, 0, 0])]);
        let synopsis = ShardSynopsis::of(&shard);
        assert!(synopsis.admits(&GraphSynopsis::of(&path(&[0, 0]))));
        assert!(synopsis.admits(&GraphSynopsis::of(&path(&[0, 0, 0]))));
        // Too many vertices for the single 3-vertex graph.
        assert!(!synopsis.admits(&GraphSynopsis::of(&path(&[0, 0, 0, 0]))));
        // Degree-3 hub exceeds the path's maximum degree of 2.
        assert!(!synopsis.admits(&GraphSynopsis::of(&star(0, &[0, 0, 0]))));
    }

    #[test]
    fn recomputed_synopsis_after_removal_stays_sound_for_live_graphs() {
        // The online-ingest removal path recomputes a shard's synopsis
        // with `ShardSynopsis::of` over the mutated dataset. Dead slots
        // hold empty placeholder graphs, so the recompute tightens to the
        // live maxima — but must never narrow below them: every live
        // graph (hence every query embedded in one) stays admitted.
        let big = star(7, &[1, 2, 3]); // 4 vertices, max degree 3
        let mut ds = Dataset::from_graphs("shard", vec![triangle(0), big.clone(), path(&[4, 5])]);
        let before = ShardSynopsis::of(&ds);
        assert_eq!(before.max_vertices, 4);
        assert!(before.admits(&GraphSynopsis::of(&big)));

        assert!(ds.remove(1)); // remove the star
        let after = ShardSynopsis::of(&ds);
        // Sound tightening: the removed graph's exclusive bounds are gone…
        assert_eq!(after.max_vertices, 3);
        assert!(!after.admits(&GraphSynopsis::of(&big)));
        // …but no live graph lost admission, and the placeholder did not
        // leak structure into the summary.
        for (id, g) in ds.iter() {
            if ds.is_live(id) {
                assert!(
                    after.admits(&GraphSynopsis::of(g)),
                    "live graph {id} narrowed out of its own shard"
                );
            }
        }
        // The dead slot still counts toward `graphs` (dense id space) but
        // contributes no labels, degrees or pairs.
        assert_eq!(after.graphs, ds.len());
        assert!(!after.max_label_counts.contains_key(&7));
    }

    #[test]
    fn shard_synopsis_absorb_matches_batch_construction() {
        let graphs = vec![triangle(0), star(3, &[4, 5, 6]), path(&[1, 2])];
        let batch = ShardSynopsis::of(&Dataset::from_graphs("ds", graphs.clone()));
        let mut incremental = ShardSynopsis::default();
        for g in &graphs {
            incremental.absorb(&GraphSynopsis::of(g));
        }
        assert_eq!(batch, incremental);
        assert_eq!(batch.graphs, 3);
        assert_eq!(batch.max_vertices, 4);
        assert!(batch.memory_bytes() > 0);
    }
}
