//! Per-graph and per-dataset statistics.
//!
//! [`DatasetStats`] computes exactly the columns of Table 1 in the paper:
//! number of graphs, number of disconnected graphs, number of distinct
//! labels, average / standard deviation of the number of nodes per graph,
//! average number of edges, average density, average degree, and average
//! number of distinct labels per graph.

use crate::algo::is_connected;
use crate::dataset::Dataset;
use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Summary statistics of a single graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges.
    pub edges: usize,
    /// Density per Definition 4.
    pub density: f64,
    /// Average degree per Definition 5.
    pub average_degree: f64,
    /// Number of distinct labels occurring in the graph.
    pub distinct_labels: usize,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Whether the graph is connected.
    pub connected: bool,
}

impl GraphStats {
    /// Computes statistics for one graph.
    pub fn of(g: &Graph) -> Self {
        GraphStats {
            vertices: g.vertex_count(),
            edges: g.edge_count(),
            density: g.density(),
            average_degree: g.average_degree(),
            distinct_labels: g.distinct_label_count(),
            max_degree: g.max_degree(),
            connected: is_connected(g),
        }
    }
}

/// Summary statistics of a whole dataset — the rows of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of graphs in the dataset.
    pub graph_count: usize,
    /// Number of graphs that are disconnected.
    pub disconnected_graphs: usize,
    /// Number of distinct labels used across the dataset.
    pub distinct_labels: usize,
    /// Average number of vertices per graph.
    pub avg_nodes: f64,
    /// Standard deviation of the number of vertices per graph.
    pub stddev_nodes: f64,
    /// Average number of edges per graph.
    pub avg_edges: f64,
    /// Average graph density.
    pub avg_density: f64,
    /// Average of the graphs' average degrees.
    pub avg_degree: f64,
    /// Average number of distinct labels per graph.
    pub avg_labels_per_graph: f64,
}

impl DatasetStats {
    /// Computes Table-1 style statistics for a dataset.
    pub fn of(ds: &Dataset) -> Self {
        let n = ds.len();
        if n == 0 {
            return DatasetStats {
                name: ds.name().to_string(),
                graph_count: 0,
                disconnected_graphs: 0,
                distinct_labels: 0,
                avg_nodes: 0.0,
                stddev_nodes: 0.0,
                avg_edges: 0.0,
                avg_density: 0.0,
                avg_degree: 0.0,
                avg_labels_per_graph: 0.0,
            };
        }
        let per_graph: Vec<GraphStats> = ds.graphs().iter().map(GraphStats::of).collect();
        let nf = n as f64;
        let avg_nodes = per_graph.iter().map(|s| s.vertices as f64).sum::<f64>() / nf;
        let var_nodes = per_graph
            .iter()
            .map(|s| {
                let d = s.vertices as f64 - avg_nodes;
                d * d
            })
            .sum::<f64>()
            / nf;
        DatasetStats {
            name: ds.name().to_string(),
            graph_count: n,
            disconnected_graphs: per_graph.iter().filter(|s| !s.connected).count(),
            distinct_labels: ds.distinct_label_count(),
            avg_nodes,
            stddev_nodes: var_nodes.sqrt(),
            avg_edges: per_graph.iter().map(|s| s.edges as f64).sum::<f64>() / nf,
            avg_density: per_graph.iter().map(|s| s.density).sum::<f64>() / nf,
            avg_degree: per_graph.iter().map(|s| s.average_degree).sum::<f64>() / nf,
            avg_labels_per_graph: per_graph
                .iter()
                .map(|s| s.distinct_labels as f64)
                .sum::<f64>()
                / nf,
        }
    }

    /// Renders the statistics as a single human-readable row, matching the
    /// layout of Table 1 in the paper.
    pub fn to_table_row(&self) -> String {
        format!(
            "{name:12} graphs={graphs:7} disconnected={disc:6} labels={labels:4} \
             avg_nodes={an:9.2} sd_nodes={sd:9.2} avg_edges={ae:10.2} \
             avg_density={ad:7.4} avg_degree={deg:7.2} avg_labels={al:6.2}",
            name = self.name,
            graphs = self.graph_count,
            disc = self.disconnected_graphs,
            labels = self.distinct_labels,
            an = self.avg_nodes,
            sd = self.stddev_nodes,
            ae = self.avg_edges,
            ad = self.avg_density,
            deg = self.avg_degree,
            al = self.avg_labels_per_graph,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle(label: u32) -> Graph {
        GraphBuilder::new("tri")
            .vertices(&[label, label, label + 1])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap()
    }

    fn disconnected_pair() -> Graph {
        GraphBuilder::new("pair")
            .vertices(&[0, 1, 2, 3])
            .edges(&[(0, 1), (2, 3)])
            .build()
            .unwrap()
    }

    #[test]
    fn graph_stats_of_triangle() {
        let s = GraphStats::of(&triangle(0));
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 3);
        assert!((s.density - 1.0).abs() < 1e-12);
        assert!((s.average_degree - 2.0).abs() < 1e-12);
        assert_eq!(s.distinct_labels, 2);
        assert_eq!(s.max_degree, 2);
        assert!(s.connected);
    }

    #[test]
    fn graph_stats_detects_disconnection() {
        let s = GraphStats::of(&disconnected_pair());
        assert!(!s.connected);
    }

    #[test]
    fn dataset_stats_aggregates() {
        let ds = Dataset::from_graphs("mix", vec![triangle(0), triangle(5), disconnected_pair()]);
        let s = DatasetStats::of(&ds);
        assert_eq!(s.graph_count, 3);
        assert_eq!(s.disconnected_graphs, 1);
        // labels used: {0,1,5,6} from triangles + {0,1,2,3} from the pair
        assert_eq!(s.distinct_labels, 6);
        assert!((s.avg_nodes - (3.0 + 3.0 + 4.0) / 3.0).abs() < 1e-12);
        assert!((s.avg_edges - (3.0 + 3.0 + 2.0) / 3.0).abs() < 1e-12);
        assert!(s.stddev_nodes > 0.0);
        assert!(s.avg_density > 0.0 && s.avg_density <= 1.0);
    }

    #[test]
    fn dataset_stats_of_empty_dataset() {
        let s = DatasetStats::of(&Dataset::new("empty"));
        assert_eq!(s.graph_count, 0);
        assert_eq!(s.avg_nodes, 0.0);
        assert_eq!(s.stddev_nodes, 0.0);
    }

    #[test]
    fn stddev_is_zero_for_identical_graphs() {
        let ds = Dataset::from_graphs("same", vec![triangle(0), triangle(0)]);
        let s = DatasetStats::of(&ds);
        assert!(s.stddev_nodes.abs() < 1e-12);
    }

    #[test]
    fn table_row_contains_name_and_counts() {
        let ds = Dataset::from_graphs("rowtest", vec![triangle(0)]);
        let row = DatasetStats::of(&ds).to_table_row();
        assert!(row.contains("rowtest"));
        assert!(row.contains("graphs="));
        assert!(row.contains("avg_density="));
    }
}
