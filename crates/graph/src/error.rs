//! Error types shared by the graph data model.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors raised by graph construction, dataset manipulation and text I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id was used that does not exist in the graph.
    UnknownVertex {
        /// The offending vertex id.
        vertex: usize,
        /// Number of vertices currently in the graph.
        vertex_count: usize,
    },
    /// An edge connecting a vertex to itself was rejected.
    SelfLoop {
        /// The vertex for which a self loop was attempted.
        vertex: usize,
    },
    /// The same undirected edge was inserted twice.
    DuplicateEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// A graph id was used that does not exist in the dataset.
    UnknownGraph {
        /// The offending graph id.
        graph: usize,
        /// Number of graphs currently in the dataset.
        graph_count: usize,
    },
    /// A parse error while reading the `.gfu`-style text format.
    Parse {
        /// Line number (1-based) where the error occurred.
        line: usize,
        /// Human readable description.
        message: String,
    },
    /// An I/O error converted to a string so the error stays `Clone`/`Eq`.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex {
                vertex,
                vertex_count,
            } => write!(
                f,
                "unknown vertex id {vertex} (graph has {vertex_count} vertices)"
            ),
            GraphError::SelfLoop { vertex } => {
                write!(f, "self loops are not allowed (vertex {vertex})")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge ({u}, {v}) already exists")
            }
            GraphError::UnknownGraph { graph, graph_count } => write!(
                f,
                "unknown graph id {graph} (dataset has {graph_count} graphs)"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(message) => write!(f, "i/o error: {message}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_vertex() {
        let err = GraphError::UnknownVertex {
            vertex: 7,
            vertex_count: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains('7'));
        assert!(msg.contains('3'));
    }

    #[test]
    fn display_self_loop() {
        let err = GraphError::SelfLoop { vertex: 2 };
        assert!(err.to_string().contains("self loop"));
    }

    #[test]
    fn display_duplicate_edge() {
        let err = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(err.to_string().contains("(1, 2)"));
    }

    #[test]
    fn display_parse() {
        let err = GraphError::Parse {
            line: 12,
            message: "bad label".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("12"));
        assert!(msg.contains("bad label"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: GraphError = io.into();
        assert!(matches!(err, GraphError::Io(_)));
        assert!(err.to_string().contains("missing"));
    }
}
