//! A convenience builder for constructing graphs from edge lists.

use crate::error::Result;
use crate::graph::{Graph, Label, VertexId};

/// Fluent builder used by tests, examples and the generators to assemble
/// graphs from label lists and edge lists without tracking vertex ids by
/// hand.
///
/// ```
/// use sqbench_graph::GraphBuilder;
///
/// let g = GraphBuilder::new("square")
///     .vertices(&[0, 1, 0, 1])
///     .edge(0, 1)
///     .edge(1, 2)
///     .edge(2, 3)
///     .edge(3, 0)
///     .build()
///     .unwrap();
/// assert_eq!(g.vertex_count(), 4);
/// assert_eq!(g.edge_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    labels: Vec<Label>,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            name: name.into(),
            labels: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Appends a single vertex with the given label; vertices are numbered in
    /// insertion order starting from 0.
    pub fn vertex(mut self, label: Label) -> Self {
        self.labels.push(label);
        self
    }

    /// Appends a batch of vertices with the given labels.
    pub fn vertices(mut self, labels: &[Label]) -> Self {
        self.labels.extend_from_slice(labels);
        self
    }

    /// Records an undirected edge between vertices `u` and `v` (by insertion
    /// index). Validation happens at [`GraphBuilder::build`] time.
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Records a batch of undirected edges.
    pub fn edges(mut self, edges: &[(VertexId, VertexId)]) -> Self {
        self.edges.extend_from_slice(edges);
        self
    }

    /// Number of vertices added so far; useful when constructing edges
    /// incrementally.
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Builds the graph, validating every edge.
    pub fn build(self) -> Result<Graph> {
        let mut g = Graph::with_capacity(self.name, self.labels.len());
        for label in self.labels {
            g.add_vertex(label);
        }
        for (u, v) in self.edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Builds the graph, ignoring duplicate edges instead of failing.
    pub fn build_dedup(self) -> Result<Graph> {
        let mut g = Graph::with_capacity(self.name, self.labels.len());
        for label in self.labels {
            g.add_vertex(label);
        }
        for (u, v) in self.edges {
            g.add_edge_if_absent(u, v)?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GraphError;

    #[test]
    fn builds_simple_graph() {
        let g = GraphBuilder::new("g")
            .vertex(5)
            .vertex(6)
            .edge(0, 1)
            .build()
            .unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.label(0), 5);
        assert_eq!(g.label(1), 6);
    }

    #[test]
    fn batch_vertices_and_edges() {
        let g = GraphBuilder::new("g")
            .vertices(&[0, 1, 2, 3])
            .edges(&[(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn build_reports_invalid_edges() {
        let err = GraphBuilder::new("g")
            .vertices(&[0, 1])
            .edge(0, 7)
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::UnknownVertex { vertex: 7, .. }));
    }

    #[test]
    fn build_reports_duplicate_edges() {
        let err = GraphBuilder::new("g")
            .vertices(&[0, 1])
            .edge(0, 1)
            .edge(1, 0)
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge { .. }));
    }

    #[test]
    fn build_dedup_ignores_duplicate_edges() {
        let g = GraphBuilder::new("g")
            .vertices(&[0, 1])
            .edge(0, 1)
            .edge(1, 0)
            .build_dedup()
            .unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn vertex_count_tracks_insertions() {
        let b = GraphBuilder::new("g").vertices(&[0, 0, 0]);
        assert_eq!(b.vertex_count(), 3);
    }
}
