//! # sqbench-graph
//!
//! Labeled undirected graph data model used throughout the subgraph query
//! processing benchmark. The types in this crate mirror the definitions of
//! the VLDB 2015 paper *"Performance and Scalability of Indexed Subgraph
//! Query Processing Methods"*:
//!
//! * [`Graph`] — an undirected graph with a single label per vertex
//!   (Definition 1 in the paper). Vertices are identified by dense
//!   [`VertexId`]s local to the graph; any label may appear on multiple
//!   vertices.
//! * [`Dataset`] — an ordered collection of graphs addressed by
//!   [`GraphId`], the unit over which indexes are built and subgraph
//!   queries are answered.
//! * [`stats`] — per-graph and per-dataset statistics (density, average
//!   degree, label counts) matching Table 1 of the paper.
//! * [`gfu`] — a GRAPES-style plain-text serialization so datasets can be
//!   persisted and exchanged.
//!
//! The crate is intentionally dependency-light: the index methods, feature
//! extractors and isomorphism testers in the rest of the workspace all build
//! on these types.
//!
//! ## Quick example
//!
//! ```
//! use sqbench_graph::{Graph, Dataset};
//!
//! // A triangle with two labels.
//! let mut g = Graph::new("triangle");
//! let a = g.add_vertex(0);
//! let b = g.add_vertex(0);
//! let c = g.add_vertex(1);
//! g.add_edge(a, b).unwrap();
//! g.add_edge(b, c).unwrap();
//! g.add_edge(c, a).unwrap();
//!
//! assert_eq!(g.vertex_count(), 3);
//! assert_eq!(g.edge_count(), 3);
//! assert!((g.density() - 1.0).abs() < 1e-9);
//!
//! let mut ds = Dataset::new("example");
//! let gid = ds.push(g);
//! assert_eq!(ds.len(), 1);
//! assert_eq!(ds.graph(gid).unwrap().vertex_count(), 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algo;
pub mod builder;
pub mod dataset;
pub mod error;
pub mod gfu;
pub mod graph;
pub mod stats;

pub use builder::GraphBuilder;
pub use dataset::{Dataset, GraphId};
pub use error::{GraphError, Result};
pub use graph::{Graph, Label, VertexId};
pub use stats::{DatasetStats, GraphStats, GraphSynopsis, ShardSynopsis};
