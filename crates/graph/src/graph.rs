//! The core labeled undirected graph type.

use crate::error::{GraphError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A vertex label. The paper's graphs carry a single categorical label per
/// vertex; labels are small integers drawn from an alphabet of configurable
/// size (10–80 distinct labels in the synthetic sweeps).
pub type Label = u32;

/// Identifier of a vertex inside a single [`Graph`]. Ids are dense: the
/// `i`-th vertex added to a graph receives id `i`.
pub type VertexId = usize;

/// An undirected, vertex-labeled graph (Definition 1 of the paper).
///
/// * No self loops and no parallel edges.
/// * Each vertex carries exactly one [`Label`]; the same label may appear on
///   any number of vertices.
/// * Adjacency is stored as a sorted neighbor list per vertex, which keeps
///   neighbor iteration cache-friendly and makes `has_edge` a binary search.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    labels: Vec<Label>,
    adjacency: Vec<Vec<VertexId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph with a human-readable name (e.g. the molecule
    /// id in a chemical dataset).
    pub fn new(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            labels: Vec::new(),
            adjacency: Vec::new(),
            edge_count: 0,
        }
    }

    /// Creates an empty graph and pre-allocates room for `vertices` vertices.
    pub fn with_capacity(name: impl Into<String>, vertices: usize) -> Self {
        Graph {
            name: name.into(),
            labels: Vec::with_capacity(vertices),
            adjacency: Vec::with_capacity(vertices),
            edge_count: 0,
        }
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a vertex carrying `label` and returns its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = self.labels.len();
        self.labels.push(label);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected edge between `u` and `v`.
    ///
    /// Returns an error if either endpoint does not exist, if `u == v`
    /// (self loop), or if the edge already exists.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        let n = self.labels.len();
        if u >= n {
            return Err(GraphError::UnknownVertex {
                vertex: u,
                vertex_count: n,
            });
        }
        if v >= n {
            return Err(GraphError::UnknownVertex {
                vertex: v,
                vertex_count: n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        // Keep neighbor lists sorted so `has_edge` can binary search.
        let pos_u = self.adjacency[u].binary_search(&v).unwrap_err();
        self.adjacency[u].insert(pos_u, v);
        let pos_v = self.adjacency[v].binary_search(&u).unwrap_err();
        self.adjacency[v].insert(pos_v, u);
        self.edge_count += 1;
        Ok(())
    }

    /// Adds an edge if it is valid and not already present; silently ignores
    /// duplicates. Returns `true` if a new edge was inserted.
    pub fn add_edge_if_absent(&mut self, u: VertexId, v: VertexId) -> Result<bool> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range; use [`Graph::try_label`] for a checked
    /// variant.
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v]
    }

    /// The label of vertex `v`, or an error if `v` does not exist.
    pub fn try_label(&self, v: VertexId) -> Result<Label> {
        self.labels
            .get(v)
            .copied()
            .ok_or(GraphError::UnknownVertex {
                vertex: v,
                vertex_count: self.labels.len(),
            })
    }

    /// All vertex labels, indexed by vertex id.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Sorted neighbor list of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adjacency[v]
    }

    /// Degree (number of incident edges) of vertex `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency[v].len()
    }

    /// Hints the CPU to pull this graph's hot buffers (label array, adjacency
    /// spine, and the first adjacency row) into cache ahead of use.
    ///
    /// The block verifier calls this for the *next* block of candidate graphs
    /// while VF2 still runs on the current one, so the pointer-chasing start
    /// of each match does not stall on a cold cache line. On non-x86_64
    /// targets this compiles to nothing; it is a pure hint either way and has
    /// no observable effect on results.
    #[inline]
    pub fn prefetch_hint(&self) {
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            if !self.labels.is_empty() {
                _mm_prefetch(self.labels.as_ptr() as *const i8, _MM_HINT_T0);
            }
            if !self.adjacency.is_empty() {
                _mm_prefetch(self.adjacency.as_ptr() as *const i8, _MM_HINT_T0);
                let first = &self.adjacency[0];
                if !first.is_empty() {
                    _mm_prefetch(first.as_ptr() as *const i8, _MM_HINT_T0);
                }
            }
        }
    }

    /// `true` iff an edge between `u` and `v` exists. Out-of-range ids simply
    /// yield `false`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        match self.adjacency.get(u) {
            Some(neigh) => neigh.binary_search(&v).is_ok(),
            None => false,
        }
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.labels.len()
    }

    /// Iterator over all undirected edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(u, neigh)| neigh.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Graph density per Definition 4 of the paper:
    /// `2|E| / (|V| (|V|-1))`, in `[0, 1]`. Graphs with fewer than two
    /// vertices have density 0.
    pub fn density(&self) -> f64 {
        let n = self.labels.len();
        if n < 2 {
            return 0.0;
        }
        (2.0 * self.edge_count as f64) / (n as f64 * (n as f64 - 1.0))
    }

    /// Average vertex degree per Definition 5: `2|E| / |V|`.
    pub fn average_degree(&self) -> f64 {
        let n = self.labels.len();
        if n == 0 {
            return 0.0;
        }
        2.0 * self.edge_count as f64 / n as f64
    }

    /// Number of distinct labels appearing in this graph.
    pub fn distinct_label_count(&self) -> usize {
        let mut seen: Vec<Label> = self.labels.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Histogram of label occurrences: label -> number of vertices carrying it.
    pub fn label_histogram(&self) -> BTreeMap<Label, usize> {
        let mut hist = BTreeMap::new();
        for &l in &self.labels {
            *hist.entry(l).or_insert(0) += 1;
        }
        hist
    }

    /// Vertices carrying a given label.
    pub fn vertices_with_label(&self, label: Label) -> Vec<VertexId> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(v, &l)| (l == label).then_some(v))
            .collect()
    }

    /// Rewrites every vertex label through `f` in place. Used by the
    /// label-clustered dataset generators, which shift each graph family
    /// into its own disjoint label range so shard synopses can tell the
    /// families apart.
    pub fn map_labels(&mut self, mut f: impl FnMut(Label) -> Label) {
        for label in &mut self.labels {
            *label = f(*label);
        }
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// An estimate of the number of heap bytes used by this graph. Used by
    /// the harness to report index and dataset sizes.
    pub fn memory_bytes(&self) -> usize {
        let label_bytes = self.labels.capacity() * std::mem::size_of::<Label>();
        let adjacency_bytes: usize = self
            .adjacency
            .iter()
            .map(|n| n.capacity() * std::mem::size_of::<VertexId>())
            .sum();
        let spine = self.adjacency.capacity() * std::mem::size_of::<Vec<VertexId>>();
        label_bytes + adjacency_bytes + spine + self.name.capacity()
    }

    /// Returns the subgraph induced by `vertices`. The `i`-th entry of
    /// `vertices` becomes vertex `i` of the result; duplicate ids are
    /// collapsed. Edges of the original graph with both endpoints in
    /// `vertices` are preserved.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> Graph {
        let mut mapping: BTreeMap<VertexId, VertexId> = BTreeMap::new();
        let mut sub = Graph::with_capacity(format!("{}#induced", self.name), vertices.len());
        for &v in vertices {
            if v < self.vertex_count() && !mapping.contains_key(&v) {
                let new_id = sub.add_vertex(self.labels[v]);
                mapping.insert(v, new_id);
            }
        }
        for (&old_u, &new_u) in &mapping {
            for &old_v in self.neighbors(old_u) {
                if old_u < old_v {
                    if let Some(&new_v) = mapping.get(&old_v) {
                        // Ignore duplicates defensively; they cannot occur here.
                        let _ = sub.add_edge_if_absent(new_u, new_v);
                    }
                }
            }
        }
        sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new("path");
        let ids: Vec<_> = (0..n).map(|i| g.add_vertex(i as Label % 3)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    #[test]
    fn empty_graph_properties() {
        let g = Graph::new("empty");
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
        assert_eq!(g.density(), 0.0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.distinct_label_count(), 0);
    }

    #[test]
    fn add_vertices_and_edges() {
        let mut g = Graph::new("g");
        let a = g.add_vertex(1);
        let b = g.add_vertex(2);
        let c = g.add_vertex(1);
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(b, a));
        assert!(!g.has_edge(a, c));
        assert_eq!(g.degree(b), 2);
        assert_eq!(g.neighbors(b), &[a, c]);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new("g");
        let a = g.add_vertex(0);
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop { vertex: a }));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut g = Graph::new("g");
        let a = g.add_vertex(0);
        let b = g.add_vertex(0);
        g.add_edge(a, b).unwrap();
        assert_eq!(
            g.add_edge(b, a),
            Err(GraphError::DuplicateEdge { u: b, v: a })
        );
        assert_eq!(g.add_edge_if_absent(a, b), Ok(false));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_unknown_vertex() {
        let mut g = Graph::new("g");
        let a = g.add_vertex(0);
        assert!(matches!(
            g.add_edge(a, 5),
            Err(GraphError::UnknownVertex { vertex: 5, .. })
        ));
        assert!(g.try_label(9).is_err());
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        let mut g = Graph::new("k4");
        let ids: Vec<_> = (0..4).map(|_| g.add_vertex(0)).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(ids[i], ids[j]).unwrap();
            }
        }
        assert!((g.density() - 1.0).abs() < 1e-12);
        assert!((g.average_degree() - 3.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn density_of_path() {
        let g = path_graph(5);
        // path on 5 vertices: 4 edges, density = 2*4 / (5*4) = 0.4
        assert!((g.density() - 0.4).abs() < 1e-12);
        assert!((g.average_degree() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = path_graph(6);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        for (u, v) in edges {
            assert!(u < v);
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn label_histogram_counts() {
        let g = path_graph(7); // labels cycle 0,1,2
        let hist = g.label_histogram();
        assert_eq!(hist[&0], 3);
        assert_eq!(hist[&1], 2);
        assert_eq!(hist[&2], 2);
        assert_eq!(g.distinct_label_count(), 3);
        assert_eq!(g.vertices_with_label(0), vec![0, 3, 6]);
    }

    #[test]
    fn induced_subgraph_preserves_edges_and_labels() {
        let g = path_graph(5); // 0-1-2-3-4
        let sub = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(sub.label(0), g.label(1));
        assert_eq!(sub.label(1), g.label(2));
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_ignores_duplicates_and_out_of_range() {
        let g = path_graph(4);
        let sub = g.induced_subgraph(&[0, 0, 1, 99]);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn map_labels_rewrites_in_place() {
        let mut g = path_graph(4); // labels 0,1,2,0
        g.map_labels(|l| l + 10);
        assert_eq!(g.labels(), &[10, 11, 12, 10]);
        assert_eq!(g.edge_count(), 3, "structure is untouched");
        assert_eq!(g.vertices_with_label(10), vec![0, 3]);
    }

    #[test]
    fn memory_bytes_is_positive_for_nonempty_graph() {
        let g = path_graph(10);
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn serde_round_trip() {
        let g = path_graph(5);
        let json = serde_json_like(&g);
        assert!(json.contains("path"));
    }

    /// Minimal check that serde derives compile and produce output; we avoid
    /// depending on serde_json by using the `serde` `Serialize` impl through
    /// a tiny custom serializer (the debug formatting of the bincode-free
    /// path). Here we simply ensure `Clone`+`PartialEq` round-trips.
    fn serde_json_like(g: &Graph) -> String {
        // The serde derive is exercised properly in the harness crate where
        // reports are serialized; here we only smoke-test structural clone.
        let clone = g.clone();
        assert_eq!(&clone, g);
        format!("{:?}", clone)
    }
}
