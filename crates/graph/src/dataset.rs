//! Datasets: ordered collections of graphs over which indexes are built.

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Identifier of a graph inside a [`Dataset`]. Graph ids are dense and equal
/// to the graph's position in insertion order, matching how every index
/// method in the paper stores "graph-id lists" per feature.
pub type GraphId = usize;

/// A collection of labeled graphs — the unit against which subgraph queries
/// are answered. A query `q` must return the ids of all graphs in the
/// dataset that contain `q` (Definition 3).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    name: String,
    graphs: Vec<Graph>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new(name: impl Into<String>) -> Self {
        Dataset {
            name: name.into(),
            graphs: Vec::new(),
        }
    }

    /// Creates a dataset from an existing vector of graphs.
    pub fn from_graphs(name: impl Into<String>, graphs: Vec<Graph>) -> Self {
        Dataset {
            name: name.into(),
            graphs,
        }
    }

    /// The dataset's name (e.g. `"AIDS-like"` or a synthetic sweep label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the dataset.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Appends a graph and returns its id.
    pub fn push(&mut self, graph: Graph) -> GraphId {
        let id = self.graphs.len();
        self.graphs.push(graph);
        id
    }

    /// Number of graphs in the dataset.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// `true` if the dataset contains no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The graph with the given id, or an error if it does not exist.
    pub fn graph(&self, id: GraphId) -> Result<&Graph> {
        self.graphs.get(id).ok_or(GraphError::UnknownGraph {
            graph: id,
            graph_count: self.graphs.len(),
        })
    }

    /// Unchecked indexed access; panics on out-of-range ids.
    pub fn graph_unchecked(&self, id: GraphId) -> &Graph {
        &self.graphs[id]
    }

    /// Iterator over `(GraphId, &Graph)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GraphId, &Graph)> {
        self.graphs.iter().enumerate()
    }

    /// All graphs as a slice, indexed by [`GraphId`].
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// All graph ids (`0..len`).
    pub fn ids(&self) -> impl Iterator<Item = GraphId> {
        0..self.graphs.len()
    }

    /// Total number of vertices across all graphs.
    pub fn total_vertices(&self) -> usize {
        self.graphs.iter().map(Graph::vertex_count).sum()
    }

    /// Total number of edges across all graphs.
    pub fn total_edges(&self) -> usize {
        self.graphs.iter().map(Graph::edge_count).sum()
    }

    /// Number of distinct labels used across the whole dataset.
    pub fn distinct_label_count(&self) -> usize {
        let mut labels: Vec<u32> = self
            .graphs
            .iter()
            .flat_map(|g| g.labels().iter().copied())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// Estimated heap bytes used by all graphs in the dataset.
    pub fn memory_bytes(&self) -> usize {
        self.graphs.iter().map(Graph::memory_bytes).sum()
    }

    /// Returns a new dataset containing only the first `n` graphs. Useful for
    /// scaling experiments that sweep the number of graphs.
    pub fn truncated(&self, n: usize) -> Dataset {
        Dataset {
            name: format!("{}[0..{}]", self.name, n.min(self.graphs.len())),
            graphs: self.graphs.iter().take(n).cloned().collect(),
        }
    }
}

impl IntoIterator for Dataset {
    type Item = Graph;
    type IntoIter = std::vec::IntoIter<Graph>;

    fn into_iter(self) -> Self::IntoIter {
        self.graphs.into_iter()
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Graph;
    type IntoIter = std::slice::Iter<'a, Graph>;

    fn into_iter(self) -> Self::IntoIter {
        self.graphs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn tiny_graph(n: usize, label: u32) -> Graph {
        let mut b = GraphBuilder::new(format!("g{n}"));
        for _ in 0..n {
            b = b.vertex(label);
        }
        for i in 1..n {
            b = b.edge(i - 1, i);
        }
        b.build().unwrap()
    }

    #[test]
    fn push_and_lookup() {
        let mut ds = Dataset::new("ds");
        let id0 = ds.push(tiny_graph(3, 0));
        let id1 = ds.push(tiny_graph(4, 1));
        assert_eq!(id0, 0);
        assert_eq!(id1, 1);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.graph(id1).unwrap().vertex_count(), 4);
        assert!(ds.graph(7).is_err());
    }

    #[test]
    fn totals() {
        let ds = Dataset::from_graphs("ds", vec![tiny_graph(3, 0), tiny_graph(5, 1)]);
        assert_eq!(ds.total_vertices(), 8);
        assert_eq!(ds.total_edges(), 2 + 4);
        assert_eq!(ds.distinct_label_count(), 2);
        assert!(ds.memory_bytes() > 0);
    }

    #[test]
    fn iteration_orders_by_id() {
        let ds = Dataset::from_graphs("ds", vec![tiny_graph(1, 0), tiny_graph(2, 0)]);
        let ids: Vec<_> = ds.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
        let sizes: Vec<_> = (&ds).into_iter().map(Graph::vertex_count).collect();
        assert_eq!(sizes, vec![1, 2]);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let ds = Dataset::from_graphs(
            "ds",
            vec![tiny_graph(1, 0), tiny_graph(2, 0), tiny_graph(3, 0)],
        );
        let t = ds.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.graph(1).unwrap().vertex_count(), 2);
        let t_all = ds.truncated(10);
        assert_eq!(t_all.len(), 3);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new("empty");
        assert!(ds.is_empty());
        assert_eq!(ds.total_vertices(), 0);
        assert_eq!(ds.distinct_label_count(), 0);
    }
}
