//! Datasets: ordered collections of graphs over which indexes are built.
//!
//! Graph storage is **shared**: a [`Dataset`] holds its graphs behind
//! [`Arc`], so derived datasets — shard partitions, truncated prefixes,
//! placement experiments — reference the same allocations instead of deep
//! copying them. Sharing is invisible to readers (every accessor still
//! hands out plain `&Graph`); it only changes what cloning costs
//! (O(pointers), not O(bytes)) and what the memory accounting reports
//! (see [`Dataset::owned_memory_bytes`] / [`Dataset::shared_memory_bytes`]).

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifier of a graph inside a [`Dataset`]. Graph ids are dense and equal
/// to the graph's position in insertion order, matching how every index
/// method in the paper stores "graph-id lists" per feature.
pub type GraphId = usize;

/// A collection of labeled graphs — the unit against which subgraph queries
/// are answered. A query `q` must return the ids of all graphs in the
/// dataset that contain `q` (Definition 3).
///
/// Graphs are stored as `Arc<Graph>`: [`Dataset::clone`],
/// [`Dataset::truncated`] and the sharded service's `partition_dataset`
/// share the underlying graph allocations instead of copying them.
///
/// # Removal and dead slots
///
/// [`Dataset::remove`] does **not** shift ids: the removed slot keeps its
/// position (so every index posting list, shard id table and candidate
/// bitset stays valid) but its graph storage is swapped for an empty
/// placeholder and the id is recorded as *dead*. Checked accessors
/// ([`Dataset::graph`], [`Dataset::shared`]) treat dead ids like missing
/// ones, so verification paths skip them naturally; `len()`/`ids()` keep
/// covering the full dense id space, and [`Dataset::live_len`] /
/// [`Dataset::is_live`] expose the live view.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    name: String,
    graphs: Vec<Arc<Graph>>,
    /// Ids of removed (dead) slots, sorted ascending. Empty on every
    /// dataset that never saw a removal, so equality of frozen datasets is
    /// unchanged.
    dead: Vec<GraphId>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new(name: impl Into<String>) -> Self {
        Dataset {
            name: name.into(),
            graphs: Vec::new(),
            dead: Vec::new(),
        }
    }

    /// Creates a dataset from an existing vector of graphs, taking unique
    /// ownership of each (the graphs become shareable from here on).
    pub fn from_graphs(name: impl Into<String>, graphs: Vec<Graph>) -> Self {
        Dataset {
            name: name.into(),
            graphs: graphs.into_iter().map(Arc::new).collect(),
            dead: Vec::new(),
        }
    }

    /// Creates a dataset from already-shared graph handles without copying
    /// any graph storage — the zero-copy constructor `partition_dataset`
    /// and [`Dataset::truncated`] build on.
    pub fn from_shared(name: impl Into<String>, graphs: Vec<Arc<Graph>>) -> Self {
        Dataset {
            name: name.into(),
            graphs,
            dead: Vec::new(),
        }
    }

    /// The dataset's name (e.g. `"AIDS-like"` or a synthetic sweep label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the dataset.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Appends a graph and returns its id.
    pub fn push(&mut self, graph: Graph) -> GraphId {
        self.push_shared(Arc::new(graph))
    }

    /// Appends an already-shared graph handle (no copy) and returns its id.
    pub fn push_shared(&mut self, graph: Arc<Graph>) -> GraphId {
        let id = self.graphs.len();
        self.graphs.push(graph);
        id
    }

    /// Removes the graph with the given id without shifting any other id:
    /// the slot's storage is swapped for an empty placeholder (freeing the
    /// graph if this dataset was its last holder) and the id joins the dead
    /// list. Returns `false` when the id is out of range or already dead.
    ///
    /// `len()` and `ids()` still cover the dense id space afterwards —
    /// that is what keeps index posting lists and shard id tables valid —
    /// but [`Dataset::graph`] / [`Dataset::shared`] now error for the id
    /// and [`Dataset::live_len`] shrinks.
    pub fn remove(&mut self, id: GraphId) -> bool {
        if id >= self.graphs.len() {
            return false;
        }
        match self.dead.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.graphs[id] = Arc::new(Graph::new("<dead>"));
                self.dead.insert(pos, id);
                true
            }
        }
    }

    /// `true` when `id` addresses a live (not removed) graph.
    pub fn is_live(&self, id: GraphId) -> bool {
        id < self.graphs.len() && self.dead.binary_search(&id).is_err()
    }

    /// Number of live graphs (`len()` minus removed slots).
    pub fn live_len(&self) -> usize {
        self.graphs.len() - self.dead.len()
    }

    /// Ids of removed slots, sorted ascending.
    pub fn dead_ids(&self) -> &[GraphId] {
        &self.dead
    }

    /// Number of graph slots in the dataset, **including** dead ones —
    /// the dense id-space bound every index universe tracks. See
    /// [`Dataset::live_len`] for the live count.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// `true` if the dataset contains no graph slots.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The graph with the given id, or an error if it does not exist (out
    /// of range or removed).
    pub fn graph(&self, id: GraphId) -> Result<&Graph> {
        self.shared(id).map(|g| &**g)
    }

    /// Unchecked indexed access; panics on out-of-range ids.
    pub fn graph_unchecked(&self, id: GraphId) -> &Graph {
        &self.graphs[id]
    }

    /// The shared handle of the graph with the given id, or an error if it
    /// does not exist (out of range or removed). `Arc::clone` the result
    /// to reference the graph from another dataset without copying it.
    pub fn shared(&self, id: GraphId) -> Result<&Arc<Graph>> {
        if !self.is_live(id) {
            return Err(GraphError::UnknownGraph {
                graph: id,
                graph_count: self.graphs.len(),
            });
        }
        Ok(&self.graphs[id])
    }

    /// Unchecked shared-handle access; panics on out-of-range ids.
    pub fn shared_unchecked(&self, id: GraphId) -> &Arc<Graph> {
        &self.graphs[id]
    }

    /// Iterator over `(GraphId, &Graph)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GraphId, &Graph)> {
        self.graphs.iter().enumerate().map(|(id, g)| (id, &**g))
    }

    /// Iterator over `(GraphId, &Arc<Graph>)` pairs in id order — the
    /// handle-level twin of [`Dataset::iter`] for callers that share
    /// graphs onward.
    pub fn iter_shared(&self) -> impl Iterator<Item = (GraphId, &Arc<Graph>)> {
        self.graphs.iter().enumerate()
    }

    /// All graph handles as a slice, indexed by [`GraphId`]. The element
    /// type is `Arc<Graph>`, which derefs to [`Graph`], so
    /// `ds.graphs().iter().map(|g| g.vertex_count())`-style reads work
    /// unchanged.
    pub fn graphs(&self) -> &[Arc<Graph>] {
        &self.graphs
    }

    /// All graph ids (`0..len`).
    pub fn ids(&self) -> impl Iterator<Item = GraphId> {
        0..self.graphs.len()
    }

    /// Total number of vertices across all graphs.
    pub fn total_vertices(&self) -> usize {
        self.graphs.iter().map(|g| g.vertex_count()).sum()
    }

    /// Total number of edges across all graphs.
    pub fn total_edges(&self) -> usize {
        self.graphs.iter().map(|g| g.edge_count()).sum()
    }

    /// Number of distinct labels used across the whole dataset.
    pub fn distinct_label_count(&self) -> usize {
        let mut labels: Vec<u32> = self
            .graphs
            .iter()
            .flat_map(|g| g.labels().iter().copied())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// Heap bytes of the `Arc<Graph>` spine itself — the cost a zero-copy
    /// derived dataset pays per graph (one pointer), independent of graph
    /// sizes.
    fn spine_bytes(&self) -> usize {
        self.graphs.capacity() * std::mem::size_of::<Arc<Graph>>()
    }

    /// Estimated heap bytes *reachable* from the dataset: every graph's
    /// storage plus the handle spine. Graphs shared with other datasets are
    /// counted in full — this is the resident-set view; see
    /// [`Dataset::owned_memory_bytes`] for the incremental view.
    pub fn memory_bytes(&self) -> usize {
        self.graphs
            .iter()
            .map(|g| g.memory_bytes() + std::mem::size_of::<Graph>())
            .sum::<usize>()
            + self.spine_bytes()
    }

    /// Estimated heap bytes this dataset *uniquely* owns: the handle spine
    /// plus the storage of graphs no other handle references
    /// (`Arc::strong_count == 1`). For a shard partition or truncated
    /// prefix taken while the source dataset is alive, this is the
    /// partition's true incremental memory cost — the spine only, a few
    /// bytes per graph instead of a full copy.
    ///
    /// The split is a point-in-time snapshot: dropping the last other
    /// holder of a shared graph silently moves its bytes from shared to
    /// owned.
    pub fn owned_memory_bytes(&self) -> usize {
        self.graphs
            .iter()
            .filter(|g| Arc::strong_count(g) == 1)
            .map(|g| g.memory_bytes() + std::mem::size_of::<Graph>())
            .sum::<usize>()
            + self.spine_bytes()
    }

    /// Estimated heap bytes reachable from this dataset but shared with at
    /// least one other graph handle. Always
    /// `memory_bytes() - owned_memory_bytes()`.
    pub fn shared_memory_bytes(&self) -> usize {
        self.memory_bytes() - self.owned_memory_bytes()
    }

    /// Returns a new dataset containing only the first `n` graphs, sharing
    /// their storage with `self` (`Arc::clone` per graph — O(pointers), no
    /// graph bytes are copied). Useful for scaling experiments that sweep
    /// the number of graphs over many prefixes of one generated dataset.
    pub fn truncated(&self, n: usize) -> Dataset {
        Dataset {
            name: format!("{}[0..{}]", self.name, n.min(self.graphs.len())),
            graphs: self.graphs.iter().take(n).cloned().collect(),
            dead: self.dead.iter().copied().filter(|&id| id < n).collect(),
        }
    }
}

impl IntoIterator for Dataset {
    type Item = Graph;
    type IntoIter = std::iter::Map<std::vec::IntoIter<Arc<Graph>>, fn(Arc<Graph>) -> Graph>;

    /// Consumes the dataset into owned graphs. Graphs not shared with any
    /// other dataset are moved out of their `Arc` without copying; shared
    /// ones are cloned (the other holders keep the original).
    fn into_iter(self) -> Self::IntoIter {
        self.graphs.into_iter().map(Arc::unwrap_or_clone)
    }
}

/// `&Arc<Graph>` → `&Graph`, named so it can be a `fn`-pointer iterator
/// adapter in `IntoIterator for &Dataset`.
fn deref_graph(g: &Arc<Graph>) -> &Graph {
    g
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Graph;
    type IntoIter =
        std::iter::Map<std::slice::Iter<'a, Arc<Graph>>, fn(&'a Arc<Graph>) -> &'a Graph>;

    fn into_iter(self) -> Self::IntoIter {
        self.graphs
            .iter()
            .map(deref_graph as fn(&Arc<Graph>) -> &Graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn tiny_graph(n: usize, label: u32) -> Graph {
        let mut b = GraphBuilder::new(format!("g{n}"));
        for _ in 0..n {
            b = b.vertex(label);
        }
        for i in 1..n {
            b = b.edge(i - 1, i);
        }
        b.build().unwrap()
    }

    #[test]
    fn push_and_lookup() {
        let mut ds = Dataset::new("ds");
        let id0 = ds.push(tiny_graph(3, 0));
        let id1 = ds.push(tiny_graph(4, 1));
        assert_eq!(id0, 0);
        assert_eq!(id1, 1);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.graph(id1).unwrap().vertex_count(), 4);
        assert!(ds.graph(7).is_err());
        assert!(ds.shared(7).is_err());
        assert_eq!(ds.shared(0).unwrap().vertex_count(), 3);
    }

    #[test]
    fn totals() {
        let ds = Dataset::from_graphs("ds", vec![tiny_graph(3, 0), tiny_graph(5, 1)]);
        assert_eq!(ds.total_vertices(), 8);
        assert_eq!(ds.total_edges(), 2 + 4);
        assert_eq!(ds.distinct_label_count(), 2);
        assert!(ds.memory_bytes() > 0);
    }

    #[test]
    fn iteration_orders_by_id() {
        let ds = Dataset::from_graphs("ds", vec![tiny_graph(1, 0), tiny_graph(2, 0)]);
        let ids: Vec<_> = ds.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
        let sizes: Vec<_> = (&ds).into_iter().map(Graph::vertex_count).collect();
        assert_eq!(sizes, vec![1, 2]);
        let shared_ids: Vec<_> = ds.iter_shared().map(|(id, _)| id).collect();
        assert_eq!(shared_ids, vec![0, 1]);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let ds = Dataset::from_graphs(
            "ds",
            vec![tiny_graph(1, 0), tiny_graph(2, 0), tiny_graph(3, 0)],
        );
        let t = ds.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.graph(1).unwrap().vertex_count(), 2);
        let t_all = ds.truncated(10);
        assert_eq!(t_all.len(), 3);
    }

    #[test]
    fn truncated_shares_graph_storage() {
        let ds = Dataset::from_graphs("ds", vec![tiny_graph(2, 0), tiny_graph(3, 0)]);
        let t = ds.truncated(2);
        for id in t.ids() {
            assert!(
                Arc::ptr_eq(t.shared_unchecked(id), ds.shared_unchecked(id)),
                "truncated graph {id} was deep-copied"
            );
        }
        // The prefix uniquely owns only its pointer spine: every graph
        // byte it can reach is shared with the source dataset.
        let graph_bytes: usize = t
            .iter()
            .map(|(_, g)| g.memory_bytes() + std::mem::size_of::<Graph>())
            .sum();
        assert_eq!(t.owned_memory_bytes() + graph_bytes, t.memory_bytes());
        assert_eq!(
            t.memory_bytes(),
            t.owned_memory_bytes() + t.shared_memory_bytes()
        );
    }

    #[test]
    fn owned_and_shared_bytes_partition_memory_bytes() {
        let mut ds = Dataset::from_graphs("ds", vec![tiny_graph(4, 0), tiny_graph(5, 1)]);
        // A freshly built dataset owns everything it can reach.
        assert_eq!(ds.owned_memory_bytes(), ds.memory_bytes());
        assert_eq!(ds.shared_memory_bytes(), 0);
        // Share one graph into a second dataset: its bytes flip to shared
        // on both sides; the unshared graph's bytes stay owned.
        let mut other = Dataset::new("other");
        other.push_shared(Arc::clone(ds.shared(0).unwrap()));
        assert!(ds.shared_memory_bytes() > 0);
        assert!(ds.owned_memory_bytes() < ds.memory_bytes());
        assert_eq!(
            ds.owned_memory_bytes() + ds.shared_memory_bytes(),
            ds.memory_bytes()
        );
        assert!(other.shared_memory_bytes() > 0);
        // Dropping the sharer returns the bytes to owned.
        drop(other);
        assert_eq!(ds.owned_memory_bytes(), ds.memory_bytes());
        // Keep `ds` mutable use meaningful: pushing stays cheap and owned.
        let id = ds.push(tiny_graph(2, 2));
        assert!(Arc::strong_count(ds.shared_unchecked(id)) == 1);
    }

    #[test]
    fn into_iter_moves_unshared_graphs_and_clones_shared_ones() {
        let ds = Dataset::from_graphs("ds", vec![tiny_graph(2, 0), tiny_graph(3, 1)]);
        let keep = Arc::clone(ds.shared(1).unwrap());
        let owned: Vec<Graph> = ds.into_iter().collect();
        assert_eq!(owned.len(), 2);
        assert_eq!(owned[1].vertex_count(), 3);
        // The shared graph survived the consuming iteration.
        assert_eq!(keep.vertex_count(), 3);
    }

    #[test]
    fn remove_keeps_ids_stable_and_errors_on_dead_access() {
        let mut ds = Dataset::from_graphs(
            "ds",
            vec![tiny_graph(2, 0), tiny_graph(3, 1), tiny_graph(4, 2)],
        );
        assert!(ds.remove(1));
        assert!(!ds.remove(1), "double remove must be a no-op");
        assert!(!ds.remove(9), "out-of-range remove must be a no-op");
        // The dense id space is unchanged; only liveness shrinks.
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.live_len(), 2);
        assert_eq!(ds.dead_ids(), &[1]);
        assert!(ds.is_live(0) && !ds.is_live(1) && ds.is_live(2));
        assert!(ds.graph(1).is_err());
        assert!(ds.shared(1).is_err());
        assert_eq!(ds.graph(2).unwrap().vertex_count(), 4);
        // The dead slot's storage was dropped to a placeholder.
        assert_eq!(ds.graph_unchecked(1).vertex_count(), 0);
        // Appending after a removal keeps ids dense.
        assert_eq!(ds.push(tiny_graph(5, 3)), 3);
        assert_eq!(ds.live_len(), 3);
        // Truncation carries the dead ids that survive the cut.
        assert_eq!(ds.truncated(2).dead_ids(), &[1]);
        assert!(ds.truncated(1).dead_ids().is_empty());
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new("empty");
        assert!(ds.is_empty());
        assert_eq!(ds.total_vertices(), 0);
        assert_eq!(ds.distinct_label_count(), 0);
        assert_eq!(ds.memory_bytes(), 0);
        assert_eq!(ds.owned_memory_bytes(), 0);
        assert_eq!(ds.shared_memory_bytes(), 0);
    }
}
