//! Property-based tests for the graph data model and the `.gfu` text format.

use proptest::prelude::*;
use sqbench_graph::{algo, gfu, Dataset, Graph};

/// Strategy producing an arbitrary labeled graph with up to `max_n` vertices
/// and a random subset of the possible edges.
fn arb_graph(max_n: usize, max_labels: u32) -> impl Strategy<Value = Graph> {
    (1..=max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..max_labels, n);
        let edge_flags = proptest::collection::vec(any::<bool>(), n * (n.saturating_sub(1)) / 2);
        (labels, edge_flags).prop_map(move |(labels, flags)| {
            let mut g = Graph::new("prop");
            for &l in &labels {
                g.add_vertex(l);
            }
            let mut k = 0usize;
            for u in 0..n {
                for v in (u + 1)..n {
                    if flags.get(k).copied().unwrap_or(false) {
                        g.add_edge(u, v).unwrap();
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Density is always within [0, 1] and the degree-sum identity holds.
    #[test]
    fn density_and_degree_invariants(g in arb_graph(12, 5)) {
        prop_assert!(g.density() >= 0.0 && g.density() <= 1.0);
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        prop_assert!((g.average_degree() - degree_sum as f64 / g.vertex_count().max(1) as f64).abs() < 1e-9);
    }

    /// The edges iterator agrees with `has_edge` and yields each edge once.
    #[test]
    fn edges_iterator_consistent(g in arb_graph(10, 3)) {
        let edges: Vec<_> = g.edges().collect();
        prop_assert_eq!(edges.len(), g.edge_count());
        let mut seen = std::collections::HashSet::new();
        for (u, v) in edges {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
            prop_assert!(seen.insert((u, v)));
        }
    }

    /// Connected components partition the vertex set.
    #[test]
    fn components_partition_vertices(g in arb_graph(12, 4)) {
        let comps = algo::connected_components(&g);
        let mut all: Vec<usize> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = g.vertices().collect();
        prop_assert_eq!(all, expected);
        // Forest identity: #edges >= #vertices - #components, equality iff acyclic
        let slack = g.edge_count() as i64 - (g.vertex_count() as i64 - comps.len() as i64);
        prop_assert!(slack >= 0);
        prop_assert_eq!(slack > 0, algo::has_cycle(&g));
    }

    /// Induced subgraph on all vertices is the same graph up to renaming.
    #[test]
    fn induced_on_all_vertices_is_identity(g in arb_graph(10, 4)) {
        let all: Vec<usize> = g.vertices().collect();
        let sub = g.induced_subgraph(&all);
        prop_assert_eq!(sub.vertex_count(), g.vertex_count());
        prop_assert_eq!(sub.edge_count(), g.edge_count());
        for v in g.vertices() {
            prop_assert_eq!(sub.label(v), g.label(v));
        }
    }

    /// Writing a dataset to `.gfu` text and parsing it back is lossless
    /// (names, labels, edges).
    #[test]
    fn gfu_round_trip(graphs in proptest::collection::vec(arb_graph(8, 4), 1..5)) {
        let ds = Dataset::from_graphs("prop", graphs);
        let text = gfu::write_dataset(&ds);
        let parsed = gfu::parse_dataset("prop", &text).unwrap();
        prop_assert_eq!(parsed.len(), ds.len());
        for (id, g) in ds.iter() {
            let p = parsed.graph(id).unwrap();
            prop_assert_eq!(p.vertex_count(), g.vertex_count());
            prop_assert_eq!(p.edge_count(), g.edge_count());
            prop_assert_eq!(p.labels(), g.labels());
            for (u, v) in g.edges() {
                prop_assert!(p.has_edge(u, v));
            }
        }
    }

    /// BFS distance is symmetric and satisfies the triangle inequality
    /// through any intermediate vertex.
    #[test]
    fn bfs_distance_symmetric(g in arb_graph(9, 3)) {
        let n = g.vertex_count();
        for u in 0..n {
            for v in 0..n {
                let duv = algo::bfs_distance(&g, u, v);
                let dvu = algo::bfs_distance(&g, v, u);
                prop_assert_eq!(duv, dvu);
                if u == v {
                    prop_assert_eq!(duv, Some(0));
                }
            }
        }
    }
}
