//! Random-walk query workload generator (§4.3 of the paper).
//!
//! Queries are constructed by:
//!
//! 1. selecting a graph uniformly at random from the dataset;
//! 2. selecting a start node uniformly at random from that graph;
//! 3. performing a random walk from that node;
//! 4. maintaining the graph formed by the union of visited nodes and
//!    travelled edges;
//! 5. stopping when the desired number of query edges has been collected.
//!
//! Because queries are extracted from dataset graphs they are guaranteed to
//! have at least one answer, and on average they share the dataset's density
//! and label distribution — exactly the property the paper relies on when it
//! interprets false-positive ratios.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sqbench_graph::{Dataset, Graph, GraphId, VertexId};
use std::collections::{BTreeMap, BTreeSet};

/// A query workload: a set of query graphs of a common target size, plus the
/// id of the dataset graph each query was extracted from (useful for sanity
/// checks — that graph must always appear in the answer set).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryWorkload {
    /// Requested number of edges per query.
    pub edges_per_query: usize,
    /// The query graphs.
    pub queries: Vec<Graph>,
    /// For each query, the dataset graph it was extracted from.
    pub source_graphs: Vec<GraphId>,
}

impl QueryWorkload {
    /// Number of queries in the workload.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` if the workload contains no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterator over `(query, source graph id)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Graph, GraphId)> + '_ {
        self.queries.iter().zip(self.source_graphs.iter().copied())
    }
}

/// Random-walk query generator.
#[derive(Debug, Clone)]
pub struct QueryGen {
    seed: u64,
    /// Maximum number of (graph, start vertex) attempts per query before the
    /// generator gives up and accepts a smaller query. Dataset graphs whose
    /// components are smaller than the requested query size make a full-size
    /// extraction impossible, so a bound is required for termination.
    max_attempts: usize,
}

impl QueryGen {
    /// Creates a query generator with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        QueryGen {
            seed,
            max_attempts: 50,
        }
    }

    /// Overrides the per-query retry budget.
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Generates `count` queries of `edges_per_query` edges each from the
    /// dataset. Panics only if the dataset is empty.
    pub fn generate(
        &self,
        dataset: &Dataset,
        count: usize,
        edges_per_query: usize,
    ) -> QueryWorkload {
        assert!(
            !dataset.is_empty(),
            "cannot generate queries from an empty dataset"
        );
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(edges_per_query as u64));
        let mut queries = Vec::with_capacity(count);
        let mut source_graphs = Vec::with_capacity(count);
        for qi in 0..count {
            let (query, source) = self.generate_one(&mut rng, dataset, edges_per_query, qi);
            queries.push(query);
            source_graphs.push(source);
        }
        QueryWorkload {
            edges_per_query,
            queries,
            source_graphs,
        }
    }

    /// Generates query workloads for each of the given sizes (the paper uses
    /// 4, 8, 16 and 32 edges).
    pub fn generate_all_sizes(
        &self,
        dataset: &Dataset,
        count_per_size: usize,
        sizes: &[usize],
    ) -> Vec<QueryWorkload> {
        sizes
            .iter()
            .map(|&s| self.generate(dataset, count_per_size, s))
            .collect()
    }

    fn generate_one(
        &self,
        rng: &mut StdRng,
        dataset: &Dataset,
        target_edges: usize,
        query_index: usize,
    ) -> (Graph, GraphId) {
        let mut best: Option<(Graph, GraphId)> = None;
        for _ in 0..self.max_attempts {
            let gid = rng.gen_range(0..dataset.len());
            let graph = dataset.graph_unchecked(gid);
            if graph.vertex_count() == 0 || graph.edge_count() == 0 {
                continue;
            }
            let start = rng.gen_range(0..graph.vertex_count());
            let extracted = random_walk_subgraph(rng, graph, start, target_edges, query_index);
            let is_better = match &best {
                None => true,
                Some((b, _)) => extracted.edge_count() > b.edge_count(),
            };
            if is_better {
                let full = extracted.edge_count() >= target_edges;
                best = Some((extracted, gid));
                if full {
                    break;
                }
            }
        }
        best.unwrap_or_else(|| {
            // Degenerate dataset (all graphs edge-less): fall back to a
            // single-vertex query extracted from graph 0.
            let g = dataset.graph_unchecked(0);
            let mut q = Graph::new(format!("query-{query_index}"));
            if g.vertex_count() > 0 {
                q.add_vertex(g.label(0));
            }
            (q, 0)
        })
    }
}

/// Extracts a connected subgraph of `graph` with (up to) `target_edges`
/// edges by random walk from `start`, keeping the union of visited vertices
/// and travelled edges.
fn random_walk_subgraph(
    rng: &mut StdRng,
    graph: &Graph,
    start: VertexId,
    target_edges: usize,
    query_index: usize,
) -> Graph {
    // Collected vertices (original id -> query id) and edges (original ids).
    let mut vertex_map: BTreeMap<VertexId, VertexId> = BTreeMap::new();
    let mut edges: BTreeSet<(VertexId, VertexId)> = BTreeSet::new();
    let mut query = Graph::new(format!("query-{query_index}"));

    let qstart = query.add_vertex(graph.label(start));
    vertex_map.insert(start, qstart);

    let mut current = start;
    // The walk needs a step budget: on graphs whose component has fewer than
    // `target_edges` edges the target is unreachable.
    let budget = (target_edges * 50).max(200);
    for _ in 0..budget {
        if edges.len() >= target_edges {
            break;
        }
        let neighbors = graph.neighbors(current);
        if neighbors.is_empty() {
            break;
        }
        // Prefer edges not yet travelled so the walk keeps growing even when
        // it doubles back; fall back to any neighbor to keep moving.
        let fresh: Vec<VertexId> = neighbors
            .iter()
            .copied()
            .filter(|&w| {
                let key = if current < w {
                    (current, w)
                } else {
                    (w, current)
                };
                !edges.contains(&key)
            })
            .collect();
        let next = if !fresh.is_empty() {
            fresh[rng.gen_range(0..fresh.len())]
        } else {
            neighbors[rng.gen_range(0..neighbors.len())]
        };
        let key = if current < next {
            (current, next)
        } else {
            (next, current)
        };
        vertex_map
            .entry(next)
            .or_insert_with(|| query.add_vertex(graph.label(next)));
        if edges.insert(key) {
            let qu = vertex_map[&current];
            let qv = vertex_map[&next];
            let _ = query.add_edge_if_absent(qu, qv);
        }
        current = next;
    }
    query
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphgen::{GraphGen, GraphGenConfig};
    use sqbench_graph::algo;

    fn small_dataset() -> Dataset {
        GraphGen::new(
            GraphGenConfig::small()
                .with_graph_count(20)
                .with_avg_nodes(40)
                .with_seed(100),
        )
        .generate()
    }

    #[test]
    fn generates_requested_count_and_size() {
        let ds = small_dataset();
        let wl = QueryGen::new(1).generate(&ds, 15, 8);
        assert_eq!(wl.len(), 15);
        assert_eq!(wl.edges_per_query, 8);
        for (q, _) in wl.iter() {
            assert_eq!(q.edge_count(), 8, "query {} has wrong size", q.name());
        }
    }

    #[test]
    fn queries_are_connected() {
        let ds = small_dataset();
        let wl = QueryGen::new(2).generate(&ds, 20, 16);
        for (q, _) in wl.iter() {
            assert!(algo::is_connected(q));
        }
    }

    #[test]
    fn queries_use_labels_of_source_graph() {
        let ds = small_dataset();
        let wl = QueryGen::new(3).generate(&ds, 10, 4);
        for (q, src) in wl.iter() {
            let source = ds.graph(src).unwrap();
            let source_labels: std::collections::BTreeSet<u32> =
                source.labels().iter().copied().collect();
            assert!(q.labels().iter().all(|l| source_labels.contains(l)));
        }
    }

    #[test]
    fn query_is_subgraph_of_source_in_edge_count() {
        let ds = small_dataset();
        let wl = QueryGen::new(4).generate(&ds, 10, 32);
        for (q, src) in wl.iter() {
            let source = ds.graph(src).unwrap();
            assert!(q.edge_count() <= source.edge_count());
            assert!(q.vertex_count() <= source.vertex_count());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let ds = small_dataset();
        let a = QueryGen::new(7).generate(&ds, 5, 8);
        let b = QueryGen::new(7).generate(&ds, 5, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn all_sizes_generates_one_workload_per_size() {
        let ds = small_dataset();
        let workloads = QueryGen::new(8).generate_all_sizes(&ds, 3, &[4, 8, 16, 32]);
        assert_eq!(workloads.len(), 4);
        assert_eq!(workloads[0].edges_per_query, 4);
        assert_eq!(workloads[3].edges_per_query, 32);
    }

    #[test]
    fn small_graphs_yield_best_effort_queries() {
        // Dataset of triangles: a 32-edge query cannot exist; the generator
        // must still terminate and return the largest extraction it found.
        let mut ds = Dataset::new("triangles");
        for i in 0..5 {
            let mut g = Graph::new(format!("t{i}"));
            let a = g.add_vertex(0);
            let b = g.add_vertex(1);
            let c = g.add_vertex(2);
            g.add_edge(a, b).unwrap();
            g.add_edge(b, c).unwrap();
            g.add_edge(c, a).unwrap();
            ds.push(g);
        }
        let wl = QueryGen::new(9).generate(&ds, 4, 32);
        assert_eq!(wl.len(), 4);
        for (q, _) in wl.iter() {
            assert!(q.edge_count() <= 3);
            assert!(q.edge_count() >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let ds = Dataset::new("empty");
        QueryGen::new(1).generate(&ds, 1, 4);
    }
}
