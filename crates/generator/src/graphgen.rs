//! A GraphGen-style synthetic dataset generator.
//!
//! §4.2 of the paper describes the generation procedure of the GraphGen tool
//! used for all synthetic sweeps:
//!
//! 1. the user specifies the number of distinct labels, the number of graphs,
//!    the average graph density and average graph size;
//! 2. GraphGen forms an alphabet of distinct edges consisting of all possible
//!    pairs of node labels;
//! 3. for every new graph it draws a size and density from normal
//!    distributions around the requested averages (standard deviation 5 and
//!    0.01 respectively) and then repeatedly adds random edges from the
//!    alphabet until the requested size/density is reached.
//!
//! This module reproduces that behaviour with one practical refinement: the
//! paper notes that *all* graphs in the synthetic datasets are connected, so
//! edge insertion starts from a random spanning tree over the sampled
//! vertices and then adds uniformly random extra edges until the target edge
//! count implied by the sampled density is met. Vertex labels are drawn
//! uniformly from the label alphabet, which makes every label pair (i.e.
//! every "edge letter" of GraphGen's alphabet) equally likely, as in the
//! original tool.

use crate::sweeps::normal_sample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sqbench_graph::{Dataset, Graph, Label};

/// Configuration for [`GraphGen`]. The defaults are the paper's "sane
/// defaults": 200 nodes per graph, density 0.025, 20 distinct labels and
/// 1000 graphs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphGenConfig {
    /// Number of graphs to generate.
    pub graph_count: usize,
    /// Mean number of nodes per graph.
    pub avg_nodes: usize,
    /// Standard deviation of the per-graph node count (paper: 5).
    pub stddev_nodes: f64,
    /// Mean graph density (Definition 4).
    pub avg_density: f64,
    /// Standard deviation of the per-graph density (paper: 0.01).
    pub stddev_density: f64,
    /// Number of distinct vertex labels in the dataset.
    pub label_count: u32,
    /// Seed for the deterministic random number generator.
    pub seed: u64,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        GraphGenConfig {
            graph_count: 1000,
            avg_nodes: 200,
            stddev_nodes: 5.0,
            avg_density: 0.025,
            stddev_density: 0.01,
            label_count: 20,
            seed: 0x5eed_0001,
        }
    }
}

impl GraphGenConfig {
    /// The paper's "sane defaults" scaled down to a quick-running size,
    /// used by tests and examples: 100 graphs of 50 nodes.
    pub fn small() -> Self {
        GraphGenConfig {
            graph_count: 100,
            avg_nodes: 50,
            ..Default::default()
        }
    }

    /// Builder-style setter for the number of graphs.
    pub fn with_graph_count(mut self, graph_count: usize) -> Self {
        self.graph_count = graph_count;
        self
    }

    /// Builder-style setter for the mean number of nodes per graph.
    pub fn with_avg_nodes(mut self, avg_nodes: usize) -> Self {
        self.avg_nodes = avg_nodes;
        self
    }

    /// Builder-style setter for the mean density.
    pub fn with_avg_density(mut self, avg_density: f64) -> Self {
        self.avg_density = avg_density;
        self
    }

    /// Builder-style setter for the label alphabet size.
    pub fn with_label_count(mut self, label_count: u32) -> Self {
        self.label_count = label_count;
        self
    }

    /// Builder-style setter for the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A short human-readable tag describing the configuration, used in
    /// dataset names and experiment reports.
    pub fn tag(&self) -> String {
        format!(
            "synth-n{}-d{:.3}-l{}-g{}",
            self.avg_nodes, self.avg_density, self.label_count, self.graph_count
        )
    }
}

/// The GraphGen-style synthetic dataset generator.
#[derive(Debug, Clone)]
pub struct GraphGen {
    config: GraphGenConfig,
}

impl GraphGen {
    /// Creates a generator for the given configuration.
    pub fn new(config: GraphGenConfig) -> Self {
        GraphGen { config }
    }

    /// The configuration this generator was created with.
    pub fn config(&self) -> &GraphGenConfig {
        &self.config
    }

    /// Generates the full dataset. The output is deterministic for a given
    /// configuration (including the seed).
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut ds = Dataset::new(self.config.tag());
        for i in 0..self.config.graph_count {
            ds.push(self.generate_graph(&mut rng, i));
        }
        ds
    }

    /// Generates a single connected graph following the §4.2 procedure.
    fn generate_graph(&self, rng: &mut StdRng, index: usize) -> Graph {
        let cfg = &self.config;
        // Sample per-graph node count and density from normal distributions
        // around the configured means (paper: stddev 5 nodes, 0.01 density).
        let n = normal_sample(rng, cfg.avg_nodes as f64, cfg.stddev_nodes)
            .round()
            .max(2.0) as usize;
        let density = normal_sample(rng, cfg.avg_density, cfg.stddev_density).clamp(0.0, 1.0);

        let max_edges = n * (n - 1) / 2;
        // Density -> edge target; a connected graph needs at least n-1 edges.
        let target_edges = ((density * max_edges as f64).round() as usize)
            .max(n - 1)
            .min(max_edges);

        let mut g = Graph::with_capacity(format!("synthetic-{index}"), n);
        for _ in 0..n {
            g.add_vertex(rng.gen_range(0..cfg.label_count) as Label);
        }

        // Random spanning tree: attach each new vertex to a uniformly random
        // earlier vertex. This guarantees connectivity (all synthetic graphs
        // in the paper are connected).
        for v in 1..n {
            let u = rng.gen_range(0..v);
            g.add_edge(u, v)
                .expect("spanning tree edge is always valid");
        }

        // Add uniformly random extra edges until the density target is met.
        // Mirrors GraphGen's "pick a random edge from the alphabet" loop; we
        // bound the number of attempts so near-complete graphs terminate.
        let mut attempts = 0usize;
        let max_attempts = 20 * max_edges.max(1);
        while g.edge_count() < target_edges && attempts < max_attempts {
            attempts += 1;
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let _ = g.add_edge_if_absent(u, v);
        }
        g
    }
}

/// Generates a dataset of `families` **label-disjoint graph families**,
/// interleaved so that graph `i` belongs to family `i % families`.
///
/// Family `f` is generated with the base configuration (graph counts split
/// as evenly as possible, seeds decorrelated per family) and then shifted
/// into its own label range `[f * label_count, (f + 1) * label_count)`, so
/// no label — and no edge label pair — ever crosses families. This is the
/// adversarial skew the shard-routing layer thrives on: round-robin
/// partitioning over `N` shards sends family `f` to shard(s)
/// `{s : s ≡ f (mod families)}` whenever `families` and `N` divide one
/// another, so a query drawn from one family (as random-walk queries are)
/// can only ever match inside that family's shards and a sound synopsis
/// router skips all others.
pub fn label_clustered(config: &GraphGenConfig, families: u32) -> Dataset {
    let families = families.max(1);
    let mut family_graphs: Vec<std::vec::IntoIter<Graph>> = (0..families)
        .map(|f| {
            let count = config.graph_count / families as usize
                + usize::from((f as usize) < config.graph_count % families as usize);
            let sub = GraphGen::new(
                config
                    .clone()
                    .with_graph_count(count)
                    // Decorrelate families: same shape parameters, fresh
                    // stream per family, still deterministic overall.
                    .with_seed(config.seed.wrapping_add(0x9e37_79b9 * (f as u64 + 1))),
            )
            .generate();
            let offset = f * config.label_count.max(1);
            let graphs: Vec<Graph> = sub
                .into_iter()
                .map(|mut g| {
                    g.map_labels(|label| label + offset);
                    g.set_name(format!("family{f}-{}", g.name()));
                    g
                })
                .collect();
            graphs.into_iter()
        })
        .collect();
    let mut ds = Dataset::new(format!("{}-fam{families}", config.tag()));
    for i in 0..config.graph_count {
        let g = family_graphs[i % families as usize]
            .next()
            .expect("per-family counts sum to graph_count in interleave order");
        ds.push(g);
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::algo;

    #[test]
    fn default_config_matches_paper_sane_defaults() {
        let cfg = GraphGenConfig::default();
        assert_eq!(cfg.avg_nodes, 200);
        assert_eq!(cfg.graph_count, 1000);
        assert_eq!(cfg.label_count, 20);
        assert!((cfg.avg_density - 0.025).abs() < 1e-12);
    }

    #[test]
    fn generates_requested_number_of_graphs() {
        let cfg = GraphGenConfig::small().with_graph_count(25).with_seed(1);
        let ds = GraphGen::new(cfg).generate();
        assert_eq!(ds.len(), 25);
    }

    #[test]
    fn all_generated_graphs_are_connected() {
        let cfg = GraphGenConfig::small().with_graph_count(30).with_seed(2);
        let ds = GraphGen::new(cfg).generate();
        for (_, g) in ds.iter() {
            assert!(algo::is_connected(g), "graph {} disconnected", g.name());
        }
    }

    #[test]
    fn average_node_count_tracks_configuration() {
        let cfg = GraphGenConfig::default()
            .with_graph_count(200)
            .with_avg_nodes(80)
            .with_seed(3);
        let ds = GraphGen::new(cfg).generate();
        let avg: f64 = ds
            .graphs()
            .iter()
            .map(|g| g.vertex_count() as f64)
            .sum::<f64>()
            / ds.len() as f64;
        assert!((avg - 80.0).abs() < 3.0, "avg nodes {avg} too far from 80");
    }

    #[test]
    fn average_density_tracks_configuration() {
        let cfg = GraphGenConfig::default()
            .with_graph_count(150)
            .with_avg_nodes(60)
            .with_avg_density(0.08)
            .with_seed(4);
        let ds = GraphGen::new(cfg).generate();
        let avg: f64 = ds.graphs().iter().map(|g| g.density()).sum::<f64>() / ds.len() as f64;
        assert!(
            (avg - 0.08).abs() < 0.02,
            "avg density {avg} too far from 0.08"
        );
    }

    #[test]
    fn labels_stay_within_alphabet() {
        let cfg = GraphGenConfig::small()
            .with_graph_count(10)
            .with_label_count(7)
            .with_seed(5);
        let ds = GraphGen::new(cfg).generate();
        for (_, g) in ds.iter() {
            assert!(g.labels().iter().all(|&l| l < 7));
        }
        assert!(ds.distinct_label_count() <= 7);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cfg = GraphGenConfig::small().with_graph_count(5).with_seed(42);
        let a = GraphGen::new(cfg.clone()).generate();
        let b = GraphGen::new(cfg).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = GraphGen::new(GraphGenConfig::small().with_graph_count(5).with_seed(1)).generate();
        let b = GraphGen::new(GraphGenConfig::small().with_graph_count(5).with_seed(2)).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn dense_configuration_produces_mostly_cyclic_graphs() {
        // The paper notes >95% of synthetic graphs contain cycles for the
        // default parameters (the only exceptions being 50-node graphs and
        // density 0.005); verify the same holds for our generator.
        let cfg = GraphGenConfig::default()
            .with_graph_count(100)
            .with_avg_nodes(100)
            .with_avg_density(0.05)
            .with_seed(6);
        let ds = GraphGen::new(cfg).generate();
        let cyclic = ds.graphs().iter().filter(|g| algo::has_cycle(g)).count();
        assert!(cyclic >= 95, "only {cyclic}/100 graphs contain cycles");
    }

    #[test]
    fn label_clustered_families_are_label_disjoint_and_interleaved() {
        let cfg = GraphGenConfig::small()
            .with_graph_count(23)
            .with_label_count(6)
            .with_seed(9);
        let ds = label_clustered(&cfg, 4);
        assert_eq!(ds.len(), 23);
        for (id, g) in ds.iter() {
            let family = (id % 4) as u32;
            let range = (family * 6)..((family + 1) * 6);
            assert!(
                g.labels().iter().all(|l| range.contains(l)),
                "graph {id} leaked outside family {family}'s label range"
            );
            assert!(algo::is_connected(g));
        }
        // Deterministic for a fixed configuration.
        assert_eq!(label_clustered(&cfg, 4), label_clustered(&cfg, 4));
        // One family degenerates to a plain (relabeled-by-identity) dataset.
        assert_eq!(label_clustered(&cfg, 1).len(), 23);
    }

    #[test]
    fn tag_encodes_parameters() {
        let tag = GraphGenConfig::default().tag();
        assert!(tag.contains("n200"));
        assert!(tag.contains("l20"));
        assert!(tag.contains("g1000"));
    }
}
