//! # sqbench-generator
//!
//! Dataset and query-workload generators for the subgraph query processing
//! benchmark, reproducing the experimental setup of §4.2–4.3 of the VLDB
//! 2015 paper:
//!
//! * [`GraphGen`] — a reimplementation of the GraphGen synthetic dataset
//!   generator: the user chooses the number of graphs, the mean number of
//!   nodes per graph, the mean graph density and the number of distinct
//!   labels; individual graph sizes and densities are drawn from normal
//!   distributions around those means (std. dev. 5 nodes and 0.01 density,
//!   as in the paper), and all generated graphs are connected.
//! * [`real_like`] — simulators that synthesize datasets matching the
//!   published Table 1 characteristics of the four real datasets (AIDS,
//!   PDBS, PCM, PPI). The paper's real data files are not redistributable,
//!   so we reproduce their structural regimes instead (graph counts, sizes,
//!   densities, degrees, label counts, and the share of disconnected
//!   graphs); see DESIGN.md for the substitution rationale.
//! * [`QueryGen`] — the random-walk query workload generator of §4.3:
//!   queries are connected subgraphs of dataset graphs with a requested
//!   number of edges (4, 8, 16 or 32 in the paper).
//! * [`sweeps`] — the parameter grids used by the scalability experiments
//!   (number of nodes, density, labels, number of graphs, query size).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graphgen;
pub mod query;
pub mod real_like;
pub mod sweeps;

pub use graphgen::{label_clustered, GraphGen, GraphGenConfig};
pub use query::{QueryGen, QueryWorkload};
pub use real_like::{RealDataset, RealDatasetSpec};
