//! Parameter grids used by the scalability experiments and small numeric
//! helpers shared by the generators.
//!
//! The values below are the sweep points reported in §5.2 of the paper.
//! Benchmarks use truncated versions of these grids (see the `bench` crate)
//! so they complete at laptop scale; the harness exposes both.

use rand::Rng;

/// Number-of-nodes sweep of §5.2.1 (full paper grid).
pub const PAPER_NODE_SWEEP: &[usize] = &[
    50, 75, 100, 125, 150, 175, 200, 250, 300, 400, 500, 600, 800, 1000, 1200, 1400, 1600, 1800,
    2000,
];

/// Density sweep of §5.2.2 (full paper grid).
pub const PAPER_DENSITY_SWEEP: &[f64] = &[
    0.005, 0.006, 0.007, 0.008, 0.009, 0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04, 0.045, 0.05,
    0.06, 0.07, 0.08, 0.09, 0.1, 0.2, 0.3,
];

/// Distinct-label sweep of §5.2.3 (full paper grid).
pub const PAPER_LABEL_SWEEP: &[u32] = &[10, 20, 30, 40, 50, 60, 70, 80];

/// Number-of-graphs sweep of §5.2.4 (full paper grid).
pub const PAPER_GRAPH_COUNT_SWEEP: &[usize] =
    &[1000, 2500, 5000, 7500, 10000, 25000, 50000, 100000, 500000];

/// Query sizes (in edges) used throughout the paper (§4.3).
pub const PAPER_QUERY_SIZES: &[usize] = &[4, 8, 16, 32];

/// The paper's "sane defaults" for the synthetic sweeps: 200 nodes,
/// density 0.025, 20 labels, 1000 graphs.
pub const SANE_DEFAULT_NODES: usize = 200;
/// Default density of the sane-default configuration.
pub const SANE_DEFAULT_DENSITY: f64 = 0.025;
/// Default label alphabet size of the sane-default configuration.
pub const SANE_DEFAULT_LABELS: u32 = 20;
/// Default dataset size of the sane-default configuration.
pub const SANE_DEFAULT_GRAPHS: usize = 1000;

/// Draws a sample from a normal distribution with the given mean and
/// standard deviation using the Box–Muller transform. We implement this
/// directly (rather than pulling in `rand_distr`) to keep the dependency set
/// to the sanctioned crates.
pub fn normal_sample<R: Rng + ?Sized>(rng: &mut R, mean: f64, stddev: f64) -> f64 {
    if stddev <= 0.0 {
        return mean;
    }
    // Box–Muller: u1 in (0,1], u2 in [0,1)
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + stddev * z
}

/// Truncated grids sized for laptop-scale benchmark runs. Each keeps the
/// shape of the paper's sweep (including the region where method crossovers
/// happen at small scale) while remaining tractable without a 128 GB host.
pub mod laptop {
    /// Node sweep used by the `fig2_nodes` bench.
    pub const NODE_SWEEP: &[usize] = &[50, 75, 100, 150, 200];
    /// Density sweep used by the `fig3_density` bench.
    pub const DENSITY_SWEEP: &[f64] = &[0.005, 0.01, 0.025, 0.05, 0.1];
    /// Label sweep used by the `fig5_labels` bench.
    pub const LABEL_SWEEP: &[u32] = &[10, 20, 40, 80];
    /// Graph-count sweep used by the `fig6_numgraphs` bench.
    pub const GRAPH_COUNT_SWEEP: &[usize] = &[250, 500, 1000, 2000];
    /// Query sizes exercised by the benches.
    pub const QUERY_SIZES: &[usize] = &[4, 8, 16, 32];
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_grids_match_section_5() {
        assert_eq!(PAPER_NODE_SWEEP.len(), 19);
        assert_eq!(PAPER_DENSITY_SWEEP.len(), 21);
        assert_eq!(PAPER_LABEL_SWEEP.first(), Some(&10));
        assert_eq!(PAPER_LABEL_SWEEP.last(), Some(&80));
        assert_eq!(PAPER_GRAPH_COUNT_SWEEP.last(), Some(&500000));
        assert_eq!(PAPER_QUERY_SIZES, &[4, 8, 16, 32]);
    }

    #[test]
    fn laptop_grids_are_subsets_of_reasonable_ranges() {
        assert!(laptop::NODE_SWEEP.iter().all(|&n| n <= 200));
        assert!(laptop::DENSITY_SWEEP.iter().all(|&d| d <= 0.1));
        assert!(laptop::GRAPH_COUNT_SWEEP.iter().all(|&g| g <= 2000));
    }

    #[test]
    fn normal_sample_mean_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20000)
            .map(|_| normal_sample(&mut rng, 10.0, 2.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "stddev {}", var.sqrt());
    }

    #[test]
    fn normal_sample_zero_stddev_returns_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(normal_sample(&mut rng, 42.0, 0.0), 42.0);
        assert_eq!(normal_sample(&mut rng, 42.0, -1.0), 42.0);
    }

    #[test]
    fn sane_defaults_match_paper() {
        assert_eq!(SANE_DEFAULT_NODES, 200);
        assert_eq!(SANE_DEFAULT_LABELS, 20);
        assert_eq!(SANE_DEFAULT_GRAPHS, 1000);
        assert!((SANE_DEFAULT_DENSITY - 0.025).abs() < 1e-12);
    }
}
