//! Simulators of the four real datasets used in the paper.
//!
//! The paper evaluates on AIDS, PDBS, PCM and PPI, whose characteristics are
//! summarized in its Table 1. The raw files are not redistributable here, so
//! this module synthesizes datasets that match the published statistics:
//! number of graphs, number of distinct labels, mean and standard deviation
//! of the node count, average edge count (equivalently average degree),
//! average number of distinct labels per graph, and the share of
//! disconnected graphs. Each of the four presets occupies the same corner of
//! the design space as the original dataset:
//!
//! * **AIDS-like** — many small, sparse, tree-like molecule graphs;
//! * **PDBS-like** — a moderate number of large but very sparse graphs;
//! * **PCM-like** — a moderate number of medium-sized, *dense* graphs
//!   (average degree ≈ 23);
//! * **PPI-like** — a handful of very large graphs of medium density.
//!
//! A global `scale` factor shrinks graph counts and node counts
//! proportionally so the full benchmark pipeline runs at laptop scale while
//! preserving the relative regimes (AIDS stays "many small graphs", PPI
//! stays "few huge graphs").

use crate::sweeps::normal_sample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sqbench_graph::{Dataset, Graph, Label};

/// Identifiers of the four real datasets from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RealDataset {
    /// NCI AIDS antiviral screen: 40 000 small molecule graphs.
    Aids,
    /// Protein Data Bank structures: 600 large, sparse graphs.
    Pdbs,
    /// Protein contact maps: 200 medium-sized, dense graphs.
    Pcm,
    /// Protein-protein interaction networks: 20 very large graphs.
    Ppi,
}

impl RealDataset {
    /// All four datasets in the order used by Figure 1.
    pub const ALL: [RealDataset; 4] = [
        RealDataset::Aids,
        RealDataset::Pdbs,
        RealDataset::Pcm,
        RealDataset::Ppi,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            RealDataset::Aids => "AIDS",
            RealDataset::Pdbs => "PDBS",
            RealDataset::Pcm => "PCM",
            RealDataset::Ppi => "PPI",
        }
    }

    /// The published Table 1 characteristics for this dataset.
    pub fn spec(&self) -> RealDatasetSpec {
        match self {
            RealDataset::Aids => RealDatasetSpec {
                dataset: *self,
                graph_count: 40000,
                disconnected_graphs: 3157,
                label_count: 62,
                avg_nodes: 45.0,
                stddev_nodes: 21.7,
                avg_edges: 46.95,
                avg_labels_per_graph: 4.4,
            },
            RealDataset::Pdbs => RealDatasetSpec {
                dataset: *self,
                graph_count: 600,
                disconnected_graphs: 360,
                label_count: 10,
                avg_nodes: 2939.0,
                stddev_nodes: 3215.0,
                avg_edges: 3064.0,
                avg_labels_per_graph: 6.4,
            },
            RealDataset::Pcm => RealDatasetSpec {
                dataset: *self,
                graph_count: 200,
                disconnected_graphs: 200,
                label_count: 21,
                avg_nodes: 377.0,
                stddev_nodes: 186.7,
                avg_edges: 4340.0,
                avg_labels_per_graph: 18.9,
            },
            RealDataset::Ppi => RealDatasetSpec {
                dataset: *self,
                graph_count: 20,
                disconnected_graphs: 20,
                label_count: 46,
                avg_nodes: 4942.0,
                stddev_nodes: 2648.0,
                avg_edges: 26667.0,
                avg_labels_per_graph: 28.5,
            },
        }
    }

    /// Generates a laptop-scale simulated version of this dataset (see
    /// [`RealDatasetSpec::generate_scaled`]). `scale` in `(0, 1]` shrinks
    /// graph counts and node counts; `1.0` reproduces the published sizes.
    pub fn generate(&self, scale: f64, seed: u64) -> Dataset {
        self.spec().generate_scaled(scale, seed)
    }

    /// Generates a simulated version with independent scale factors for the
    /// number of graphs and the per-graph node count. Useful when the
    /// published graphs are already small (AIDS: shrink the count, keep the
    /// molecules full-size) or already few (PPI: keep the count, shrink the
    /// graphs).
    pub fn generate_with(&self, graph_scale: f64, node_scale: f64, seed: u64) -> Dataset {
        self.spec()
            .generate_scaled_separately(graph_scale, node_scale, seed)
    }
}

/// Published Table 1 characteristics of a real dataset, used as the
/// generation target for its simulated stand-in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealDatasetSpec {
    /// Which dataset these characteristics describe.
    pub dataset: RealDataset,
    /// Number of graphs.
    pub graph_count: usize,
    /// Number of graphs that are disconnected.
    pub disconnected_graphs: usize,
    /// Number of distinct labels in the dataset.
    pub label_count: u32,
    /// Mean number of nodes per graph.
    pub avg_nodes: f64,
    /// Standard deviation of the node count.
    pub stddev_nodes: f64,
    /// Mean number of edges per graph.
    pub avg_edges: f64,
    /// Mean number of distinct labels per graph.
    pub avg_labels_per_graph: f64,
}

impl RealDatasetSpec {
    /// Average degree implied by the spec (2·|E| / |V|).
    pub fn avg_degree(&self) -> f64 {
        2.0 * self.avg_edges / self.avg_nodes
    }

    /// Fraction of graphs that are disconnected.
    pub fn disconnected_fraction(&self) -> f64 {
        self.disconnected_graphs as f64 / self.graph_count as f64
    }

    /// Generates a simulated dataset matching this spec, with graph count
    /// and node counts multiplied by `scale` (clamped so at least one graph
    /// with at least four nodes is produced).
    pub fn generate_scaled(&self, scale: f64, seed: u64) -> Dataset {
        self.generate_scaled_separately(scale, scale, seed)
    }

    /// Like [`RealDatasetSpec::generate_scaled`] but with independent scale
    /// factors for the number of graphs (`graph_scale`) and the per-graph
    /// node count (`node_scale`).
    pub fn generate_scaled_separately(
        &self,
        graph_scale: f64,
        node_scale: f64,
        seed: u64,
    ) -> Dataset {
        let graph_scale = if graph_scale <= 0.0 { 1.0 } else { graph_scale };
        let node_scale = if node_scale <= 0.0 { 1.0 } else { node_scale };
        let graph_count = ((self.graph_count as f64 * graph_scale).round() as usize).max(1);
        let avg_nodes = (self.avg_nodes * node_scale).max(4.0);
        let stddev_nodes = self.stddev_nodes * node_scale;
        let avg_degree = self.avg_degree();
        let disconnected_fraction = self.disconnected_fraction();

        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut ds = Dataset::new(format!("{}-like", self.dataset.name()));
        for i in 0..graph_count {
            let disconnected = rng.gen::<f64>() < disconnected_fraction;
            let g = self.generate_graph(
                &mut rng,
                i,
                avg_nodes,
                stddev_nodes,
                avg_degree,
                disconnected,
            );
            ds.push(g);
        }
        ds
    }

    /// Generates one simulated graph. Each graph restricts itself to a
    /// per-graph label subset (matching the "avg #labels per graph" column)
    /// and is assembled as one or two random connected components whose edge
    /// count is driven by the dataset's average degree.
    fn generate_graph(
        &self,
        rng: &mut StdRng,
        index: usize,
        avg_nodes: f64,
        stddev_nodes: f64,
        avg_degree: f64,
        disconnected: bool,
    ) -> Graph {
        let n = normal_sample(rng, avg_nodes, stddev_nodes).round().max(4.0) as usize;
        // Per-graph label subset of roughly the published average size.
        let labels_per_graph =
            (self.avg_labels_per_graph.round() as usize).clamp(1, self.label_count as usize);
        let mut palette: Vec<Label> = Vec::with_capacity(labels_per_graph);
        while palette.len() < labels_per_graph {
            let l = rng.gen_range(0..self.label_count) as Label;
            if !palette.contains(&l) {
                palette.push(l);
            }
        }

        let mut g = Graph::with_capacity(format!("{}-{index}", self.dataset.name()), n);
        for _ in 0..n {
            let l = palette[rng.gen_range(0..palette.len())];
            g.add_vertex(l);
        }

        // Split vertices into one or two components.
        let component_count = if disconnected && n >= 8 { 2 } else { 1 };
        let split = if component_count == 2 {
            rng.gen_range(n / 4..=(3 * n / 4))
        } else {
            n
        };
        // One vertex-id range per connected component (really a list of
        // ranges, not a collected range — hence the lint allowance).
        #[allow(clippy::single_range_in_vec_init)]
        let ranges: Vec<std::ops::Range<usize>> = if component_count == 2 {
            vec![0..split, split..n]
        } else {
            vec![0..n]
        };

        // Spanning tree per component, then extra random edges to reach the
        // degree target.
        for range in &ranges {
            let start = range.start;
            for v in (start + 1)..range.end {
                let u = rng.gen_range(start..v);
                let _ = g.add_edge_if_absent(u, v);
            }
        }
        let target_edges = ((avg_degree * n as f64) / 2.0).round() as usize;
        let max_possible: usize = ranges
            .iter()
            .map(|r| {
                let len = r.len();
                len * len.saturating_sub(1) / 2
            })
            .sum();
        let target_edges = target_edges.min(max_possible);
        let mut attempts = 0usize;
        let max_attempts = 30 * target_edges.max(1);
        while g.edge_count() < target_edges && attempts < max_attempts {
            attempts += 1;
            let range = &ranges[rng.gen_range(0..ranges.len())];
            if range.len() < 2 {
                continue;
            }
            let u = rng.gen_range(range.clone());
            let v = rng.gen_range(range.clone());
            if u == v {
                continue;
            }
            let _ = g.add_edge_if_absent(u, v);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::{algo, DatasetStats};

    #[test]
    fn specs_match_table_1() {
        let aids = RealDataset::Aids.spec();
        assert_eq!(aids.graph_count, 40000);
        assert_eq!(aids.label_count, 62);
        assert!((aids.avg_nodes - 45.0).abs() < 1e-9);
        assert!((aids.avg_degree() - 2.09).abs() < 0.05);

        let pcm = RealDataset::Pcm.spec();
        assert!((pcm.avg_degree() - 23.01).abs() < 0.1);
        assert_eq!(pcm.disconnected_graphs, pcm.graph_count);

        let ppi = RealDataset::Ppi.spec();
        assert!((ppi.avg_degree() - 10.79).abs() < 0.2);

        let pdbs = RealDataset::Pdbs.spec();
        assert!((pdbs.disconnected_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = RealDataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["AIDS", "PDBS", "PCM", "PPI"]);
    }

    #[test]
    fn scaled_aids_matches_regime() {
        // 1% of AIDS: ~400 graphs of ~45 nodes (node count is small already,
        // so scale only shrinks the graph count meaningfully).
        let ds = RealDataset::Aids.generate(0.01, 11);
        let stats = DatasetStats::of(&ds);
        assert_eq!(stats.graph_count, 400);
        assert!(stats.avg_nodes >= 4.0);
        assert!(stats.avg_degree < 4.0, "AIDS-like graphs must stay sparse");
        assert!(stats.distinct_labels <= 62);
    }

    #[test]
    fn scaled_pcm_is_dense() {
        let ds = RealDataset::Pcm.generate(0.1, 12);
        let stats = DatasetStats::of(&ds);
        assert_eq!(stats.graph_count, 20);
        assert!(
            stats.avg_degree > 8.0,
            "PCM-like graphs must be dense (avg degree {})",
            stats.avg_degree
        );
    }

    #[test]
    fn scaled_ppi_has_few_large_graphs() {
        let ds = RealDataset::Ppi.generate(0.05, 13);
        let stats = DatasetStats::of(&ds);
        assert_eq!(stats.graph_count, 1);
        assert!(stats.avg_nodes > 100.0);
    }

    #[test]
    fn disconnected_fraction_is_respected() {
        let ds = RealDataset::Pcm.generate(0.25, 14); // PCM: 100% disconnected
        let disconnected = ds
            .graphs()
            .iter()
            .filter(|g| !algo::is_connected(g))
            .count();
        assert!(
            disconnected as f64 >= 0.8 * ds.len() as f64,
            "expected most PCM-like graphs disconnected, got {disconnected}/{}",
            ds.len()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = RealDataset::Aids.generate(0.002, 99);
        let b = RealDataset::Aids.generate(0.002, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn per_graph_label_subset_is_small() {
        let ds = RealDataset::Aids.generate(0.005, 15);
        let stats = DatasetStats::of(&ds);
        // AIDS uses ~4.4 labels per graph out of 62.
        assert!(
            stats.avg_labels_per_graph < 10.0,
            "avg labels per graph {}",
            stats.avg_labels_per_graph
        );
    }

    #[test]
    fn zero_scale_falls_back_to_full_size_graph_count() {
        let ds = RealDataset::Ppi.generate(0.0, 1);
        assert_eq!(ds.len(), 20);
    }
}
