//! gCode: spectral vertex signatures and graph codes.
//!
//! Zou, Chen, Yu, Lu, "A novel spectral coding in a large graph database"
//! (EDBT 2008). gCode is the odd one out among the six methods: it
//! enumerates paths exhaustively but *encodes* them into per-vertex
//! signatures instead of storing them. Each vertex signature has three
//! components (§3 of the paper, parameters from §4.1 of the study):
//!
//! 1. a counter string over the labels of the vertices reachable along
//!    simple paths of up to `signature_path_length` edges (length 2 in the
//!    study), 32 counters wide;
//! 2. a counter string over the labels of the vertex's direct neighbors,
//!    also 32 counters wide;
//! 3. the leading eigenvalues of the adjacency matrix of the vertex's
//!    "level-N path tree" (the tree of all simple paths of length ≤ N
//!    starting at the vertex), the top 2 being kept.
//!
//! Vertex signatures are combined into a per-graph code used for a first
//! round of pruning; surviving graphs are pruned further by matching
//! individual query-vertex signatures against graph-vertex signatures, and
//! the remainder is verified with VF2.
//!
//! Soundness note: the counter components are dominance-safe (an embedding
//! can only see *more* labels in the larger graph). Of the spectral
//! component only the dominant eigenvalue is guaranteed monotone under
//! subgraph containment (Cauchy interlacing plus Perron–Frobenius), so the
//! pruning test uses the dominant eigenvalue only; the remaining
//! eigenvalues are stored — as in gCode — but serve no pruning purpose
//! here. This keeps the filter free of false dismissals.

use crate::candidates::{CandidateSet, Tombstones};
use crate::config::GCodeConfig;
use crate::fcache::FilterCacheCtx;
use crate::{GraphIndex, IndexStats, MethodKind};
use sqbench_graph::{Dataset, Graph, GraphId, VertexId};

/// Signature of a single vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexSignature {
    /// The vertex's own label.
    pub label: u32,
    /// Counts of labels (folded modulo the counter width) seen along simple
    /// paths of bounded length starting at the vertex.
    pub path_label_counts: Vec<u32>,
    /// Counts of the labels of direct neighbors (folded modulo the width).
    pub neighbor_label_counts: Vec<u32>,
    /// Leading eigenvalues of the level-N path tree adjacency matrix,
    /// descending.
    pub eigenvalues: Vec<f64>,
}

impl VertexSignature {
    /// `true` iff `self` (a dataset-graph vertex) can host `other` (a query
    /// vertex): same label, component-wise larger-or-equal counters, and a
    /// dominant eigenvalue at least as large.
    pub fn dominates(&self, other: &VertexSignature) -> bool {
        if self.label != other.label {
            return false;
        }
        let counts_ok = self
            .path_label_counts
            .iter()
            .zip(other.path_label_counts.iter())
            .all(|(a, b)| a >= b)
            && self
                .neighbor_label_counts
                .iter()
                .zip(other.neighbor_label_counts.iter())
                .all(|(a, b)| a >= b);
        if !counts_ok {
            return false;
        }
        match (self.eigenvalues.first(), other.eigenvalues.first()) {
            // Power iteration is accurate to well below 1e-6; the tolerance
            // keeps numerically-equal spectra from causing false dismissals.
            (Some(a), Some(b)) => *a >= *b - 1e-6,
            _ => true,
        }
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.path_label_counts.capacity() + self.neighbor_label_counts.capacity())
                * std::mem::size_of::<u32>()
            + self.eigenvalues.capacity() * std::mem::size_of::<f64>()
    }
}

/// Code of a whole graph: aggregated counters plus its vertex signatures.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphCode {
    /// Total label histogram (folded modulo the counter width).
    pub label_counts: Vec<u32>,
    /// Number of vertices.
    pub vertex_count: usize,
    /// Number of edges.
    pub edge_count: usize,
    /// Per-vertex signatures.
    pub vertex_signatures: Vec<VertexSignature>,
}

impl GraphCode {
    /// Builds the code of one graph.
    pub fn of(graph: &Graph, config: &GCodeConfig) -> Self {
        let width = config.counter_width.max(1);
        let mut label_counts = vec![0u32; width];
        for v in graph.vertices() {
            label_counts[(graph.label(v) as usize) % width] += 1;
        }
        let vertex_signatures = (0..graph.vertex_count())
            .map(|v| vertex_signature(graph, v, config))
            .collect();
        GraphCode {
            label_counts,
            vertex_count: graph.vertex_count(),
            edge_count: graph.edge_count(),
            vertex_signatures,
        }
    }

    /// First-stage pruning test: can this (dataset) graph possibly contain a
    /// query with the given code?
    pub fn may_contain(&self, query: &GraphCode) -> bool {
        if self.vertex_count < query.vertex_count || self.edge_count < query.edge_count {
            return false;
        }
        self.label_counts
            .iter()
            .zip(query.label_counts.iter())
            .all(|(a, b)| a >= b)
    }

    /// Second-stage pruning: every query vertex signature must be dominated
    /// by at least one vertex signature of this graph.
    pub fn signatures_cover(&self, query: &GraphCode) -> bool {
        query
            .vertex_signatures
            .iter()
            .all(|qs| self.vertex_signatures.iter().any(|gs| gs.dominates(qs)))
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.label_counts.capacity() * std::mem::size_of::<u32>()
            + self
                .vertex_signatures
                .iter()
                .map(VertexSignature::memory_bytes)
                .sum::<usize>()
    }
}

/// Builds the signature of vertex `v`.
fn vertex_signature(graph: &Graph, v: VertexId, config: &GCodeConfig) -> VertexSignature {
    let width = config.counter_width.max(1);
    let mut path_label_counts = vec![0u32; width];
    let mut neighbor_label_counts = vec![0u32; width];
    for &w in graph.neighbors(v) {
        neighbor_label_counts[(graph.label(w) as usize) % width] += 1;
    }
    // Path-tree construction: nodes are the simple paths of length
    // 0..=signature_path_length starting at v; each non-root path node is
    // connected to its one-shorter prefix. We enumerate the paths of the
    // whole graph once per vertex via a restricted DFS (the shared
    // `for_each_path` helper enumerates from every start vertex, so we run a
    // small local DFS instead).
    let mut parent_of: Vec<usize> = vec![usize::MAX]; // path-tree parent pointers
    let mut stack: Vec<(VertexId, usize, usize, Vec<VertexId>)> = Vec::new();
    // (current vertex, remaining edges, tree-node id of current path, path vertices)
    stack.push((v, config.signature_path_length, 0, vec![v]));
    while let Some((current, remaining, node_id, path)) = stack.pop() {
        if remaining == 0 {
            continue;
        }
        for &next in graph.neighbors(current) {
            if path.contains(&next) {
                continue;
            }
            let child_id = parent_of.len();
            parent_of.push(node_id);
            path_label_counts[(graph.label(next) as usize) % width] += 1;
            let mut next_path = path.clone();
            next_path.push(next);
            stack.push((next, remaining - 1, child_id, next_path));
        }
    }
    let eigenvalues = path_tree_eigenvalues(&parent_of, config.eigenvalue_count);
    VertexSignature {
        label: graph.label(v),
        path_label_counts,
        neighbor_label_counts,
        eigenvalues,
    }
}

/// Leading eigenvalues (descending) of the adjacency matrix of a tree given
/// by parent pointers, computed with power iteration plus one deflation step
/// per additional eigenvalue.
fn path_tree_eigenvalues(parent_of: &[usize], count: usize) -> Vec<f64> {
    let n = parent_of.len();
    if n <= 1 || count == 0 {
        return vec![0.0; count];
    }
    // Sparse adjacency of the tree.
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (child, &parent) in parent_of.iter().enumerate().skip(1) {
        adjacency[child].push(parent);
        adjacency[parent].push(child);
    }
    let mut eigenvalues = Vec::with_capacity(count);
    let mut deflated: Vec<(f64, Vec<f64>)> = Vec::new();
    for _ in 0..count {
        let (lambda, vector) = power_iteration(&adjacency, &deflated);
        eigenvalues.push(lambda);
        deflated.push((lambda, vector));
    }
    eigenvalues
}

/// Power iteration on the adjacency matrix minus the already-extracted
/// rank-one components (deflation).
fn power_iteration(adjacency: &[Vec<usize>], deflated: &[(f64, Vec<f64>)]) -> (f64, Vec<f64>) {
    let n = adjacency.len();
    let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    normalize(&mut x);
    let mut lambda = 0.0;
    for _ in 0..60 {
        // y = A x
        let mut y = vec![0.0; n];
        for (i, neighbors) in adjacency.iter().enumerate() {
            for &j in neighbors {
                y[i] += x[j];
            }
        }
        // Deflation: y -= Σ λ_k (v_k · x) v_k
        for (lk, vk) in deflated {
            let dot: f64 = vk.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
            for (yi, vki) in y.iter_mut().zip(vk.iter()) {
                *yi -= lk * dot * vki;
            }
        }
        let norm = normalize(&mut y);
        if norm < 1e-12 {
            return (0.0, y);
        }
        lambda = norm;
        x = y;
    }
    // The Rayleigh quotient gives a signed estimate; for adjacency matrices
    // of trees the dominant eigenvalue is positive, so the norm works as the
    // magnitude and the quotient fixes the sign.
    let mut ax = vec![0.0; n];
    for (i, neighbors) in adjacency.iter().enumerate() {
        for &j in neighbors {
            ax[i] += x[j];
        }
    }
    for (lk, vk) in deflated {
        let dot: f64 = vk.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        for (axi, vki) in ax.iter_mut().zip(vk.iter()) {
            *axi -= lk * dot * vki;
        }
    }
    let rayleigh: f64 = ax.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
    (if rayleigh < 0.0 { -lambda } else { lambda }, x)
}

fn normalize(x: &mut [f64]) -> f64 {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
    norm
}

/// The gCode index: one [`GraphCode`] per dataset graph.
#[derive(Debug, Clone)]
pub struct GCodeIndex {
    config: GCodeConfig,
    codes: Vec<GraphCode>,
    /// Removed ids. A dead slot's code is swapped for an empty-graph code
    /// (which still covers an empty query), so the mask — not the code —
    /// keeps dead ids out of candidates.
    tombstones: Tombstones,
}

impl GCodeIndex {
    /// Builds the index over a dataset.
    pub fn build(dataset: &Dataset, config: GCodeConfig) -> Self {
        let codes = dataset
            .graphs()
            .iter()
            .map(|g| GraphCode::of(g, &config))
            .collect();
        GCodeIndex {
            tombstones: Tombstones::from_sorted(dataset.dead_ids()),
            config,
            codes,
        }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &GCodeConfig {
        &self.config
    }

    /// The code of graph `gid`, if it exists.
    pub fn code(&self, gid: GraphId) -> Option<&GraphCode> {
        self.codes.get(gid)
    }
}

impl GraphIndex for GCodeIndex {
    fn kind(&self) -> MethodKind {
        MethodKind::GCode
    }

    fn universe(&self) -> usize {
        self.codes.len()
    }

    fn insert(&mut self, graph: &Graph) -> GraphId {
        let id = self.codes.len();
        self.codes.push(GraphCode::of(graph, &self.config));
        id
    }

    fn remove(&mut self, id: GraphId) -> bool {
        if id >= self.codes.len() || !self.tombstones.mark(id) {
            return false;
        }
        // Eager per-slot compaction: the code is dense per-graph state
        // (signatures per vertex), so reclaim it immediately.
        self.codes[id] = GraphCode::of(&Graph::new("<dead>"), &self.config);
        true
    }

    fn filter_into(&self, query: &Graph, out: &mut CandidateSet) {
        let query_code = GraphCode::of(query, &self.config);
        // A single id-ordered scan with no intersection stage: each graph
        // whose spectral code covers the query's sets its bit directly.
        out.reset_empty(self.codes.len());
        for (gid, code) in self.codes.iter().enumerate() {
            if code.may_contain(&query_code) && code.signatures_cover(&query_code) {
                out.insert(gid);
            }
        }
        self.tombstones.apply(out);
    }

    fn filter_into_cached(
        &self,
        query: &Graph,
        out: &mut CandidateSet,
        _ctx: &mut FilterCacheCtx<'_>,
    ) {
        // Explicit opt-out: filtering is one spectral-code coverage scan
        // with no per-feature posting lists to reuse across queries, so a
        // feature cache could only add probe overhead.
        self.filter_into(query, out);
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            distinct_features: self.codes.iter().map(|c| c.vertex_signatures.len()).sum(),
            size_bytes: self.codes.iter().map(GraphCode::memory_bytes).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive_answers;
    use sqbench_graph::GraphBuilder;

    fn dataset() -> Dataset {
        let tri = GraphBuilder::new("tri")
            .vertices(&[1, 1, 2])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let path = GraphBuilder::new("path")
            .vertices(&[1, 2, 3])
            .edges(&[(0, 1), (1, 2)])
            .build()
            .unwrap();
        let star = GraphBuilder::new("star")
            .vertices(&[2, 1, 1, 1])
            .edges(&[(0, 1), (0, 2), (0, 3)])
            .build()
            .unwrap();
        Dataset::from_graphs("ds", vec![tri, path, star])
    }

    fn query(labels: &[u32], edges: &[(usize, usize)]) -> Graph {
        GraphBuilder::new("q")
            .vertices(labels)
            .edges(edges)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_one_code_per_graph() {
        let ds = dataset();
        let idx = GCodeIndex::build(&ds, GCodeConfig::default());
        assert_eq!(idx.kind(), MethodKind::GCode);
        for gid in ds.ids() {
            let code = idx.code(gid).unwrap();
            assert_eq!(
                code.vertex_signatures.len(),
                ds.graph(gid).unwrap().vertex_count()
            );
            assert_eq!(code.label_counts.len(), 32);
        }
        assert!(idx.stats().size_bytes > 0);
    }

    #[test]
    fn signature_eigenvalue_is_positive_for_non_isolated_vertices() {
        let ds = dataset();
        let idx = GCodeIndex::build(&ds, GCodeConfig::default());
        let code = idx.code(0).unwrap();
        for sig in &code.vertex_signatures {
            assert_eq!(sig.eigenvalues.len(), 2);
            assert!(sig.eigenvalues[0] > 0.0);
        }
    }

    #[test]
    fn star_center_has_larger_spectral_radius_than_leaf() {
        let ds = dataset();
        let idx = GCodeIndex::build(&ds, GCodeConfig::default());
        let star_code = idx.code(2).unwrap();
        let center = &star_code.vertex_signatures[0];
        let leaf = &star_code.vertex_signatures[1];
        // For a 3-leaf star the two level-2 path trees are isomorphic
        // (both are K_{1,3}), so the spectral radii agree up to numerical
        // precision; the center is never smaller.
        assert!(center.eigenvalues[0] >= leaf.eigenvalues[0] - 1e-6);
    }

    #[test]
    fn filter_is_a_superset_of_answers() {
        let ds = dataset();
        let idx = GCodeIndex::build(&ds, GCodeConfig::default());
        for (labels, edges) in [
            (vec![1u32, 2], vec![(0usize, 1usize)]),
            (vec![1, 1], vec![(0, 1)]),
            (vec![2, 1, 1], vec![(0, 1), (0, 2)]),
            (vec![1, 2, 3], vec![(0, 1), (1, 2)]),
            (vec![1, 1, 2], vec![(0, 1), (1, 2), (2, 0)]),
        ] {
            let q = query(&labels, &edges);
            let candidates = idx.filter(&q);
            for a in exhaustive_answers(&ds, &q) {
                assert!(candidates.contains(&a), "answer missing for {labels:?}");
            }
        }
    }

    #[test]
    fn query_returns_exact_answers() {
        let ds = dataset();
        let idx = GCodeIndex::build(&ds, GCodeConfig::default());
        for (labels, edges) in [
            (vec![1u32, 2], vec![(0usize, 1usize)]),
            (vec![2, 1, 1], vec![(0, 1), (0, 2)]),
            (vec![1, 1, 2], vec![(0, 1), (1, 2), (2, 0)]),
        ] {
            let q = query(&labels, &edges);
            let outcome = idx.query(&ds, &q);
            assert_eq!(outcome.answers, exhaustive_answers(&ds, &q));
        }
    }

    #[test]
    fn vertex_signatures_prune_structure_mismatches() {
        let ds = dataset();
        let idx = GCodeIndex::build(&ds, GCodeConfig::default());
        // Query: label-2 vertex with three label-1 neighbors. Only the star
        // has such a vertex; the triangle's label-2 vertex has two neighbors.
        let q = query(&[2, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]);
        let candidates = idx.filter(&q);
        assert_eq!(candidates, vec![2]);
    }

    #[test]
    fn graph_level_counters_prune_oversized_queries() {
        let ds = dataset();
        let idx = GCodeIndex::build(&ds, GCodeConfig::default());
        // A query with four label-1 vertices cannot fit any dataset graph
        // (the star has only three).
        let q = query(&[1, 1, 1, 1], &[(0, 1), (1, 2), (2, 3)]);
        assert!(idx.filter(&q).is_empty());
    }

    #[test]
    fn dominance_is_reflexive() {
        let ds = dataset();
        let idx = GCodeIndex::build(&ds, GCodeConfig::default());
        for code in &idx.codes {
            for sig in &code.vertex_signatures {
                assert!(sig.dominates(sig));
            }
        }
    }

    #[test]
    fn empty_query_matches_everything() {
        let ds = dataset();
        let idx = GCodeIndex::build(&ds, GCodeConfig::default());
        let outcome = idx.query(&ds, &Graph::new("empty"));
        assert_eq!(outcome.answers, vec![0, 1, 2]);
    }

    #[test]
    fn insert_and_remove_track_rebuild_answers() {
        let mut ds = dataset();
        let mut idx = GCodeIndex::build(&ds, GCodeConfig::default());
        let extra = GraphBuilder::new("extra")
            .vertices(&[1, 2, 3])
            .edges(&[(0, 1), (0, 2)])
            .build()
            .unwrap();
        assert_eq!(idx.insert(&extra), 3);
        ds.push(extra);
        assert!(idx.remove(0));
        assert!(!idx.remove(0));
        ds.remove(0);

        let rebuilt = GCodeIndex::build(&ds, GCodeConfig::default());
        for (labels, edges) in [
            (vec![1u32, 2], vec![(0usize, 1usize)]),
            (vec![1, 2, 3], vec![(0, 1), (1, 2)]),
            (vec![2, 1, 1], vec![(0, 1), (0, 2)]),
        ] {
            let q = query(&labels, &edges);
            assert_eq!(idx.query(&ds, &q).answers, rebuilt.query(&ds, &q).answers);
            assert_eq!(idx.query(&ds, &q).answers, exhaustive_answers(&ds, &q));
        }
        let empty = idx.query(&ds, &Graph::new("empty"));
        assert_eq!(empty.answers, vec![1, 2, 3], "dead id 0 masked out");
    }
}
