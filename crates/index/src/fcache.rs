//! The cross-query feature-cache context threaded through filtering.
//!
//! Posting-fold methods (GGSX, Grapes, gIndex, Tree+Δ) spend their filter
//! stage streaming one sorted posting list per query feature into the
//! arena [`CandidateSet`]. Across a workload that hammers the same few
//! patterns the *same* posting lists are streamed over and over; this
//! module lets the service hand `filter_into_cached` a store of hot
//! per-feature bitsets so a repeated feature costs one O(universe/64)
//! block AND ([`crate::ArenaFold::apply_set`]) instead of a trie or
//! B-tree walk.
//!
//! The index crate only defines the *contract*: [`FeatureCacheStore`] is
//! object-safe storage (the serving layer implements it with a per-shard
//! LRU), and [`FilterCacheCtx`] is the per-query view that times every
//! probe so the metrics layer can report cache-probe time separately from
//! filter time. Soundness rests on two properties the implementations
//! uphold:
//!
//! 1. **Keys are index-instance-local.** A store is only ever attached to
//!    the one index instance whose posting lists it caches (per shard,
//!    per method), so a key never resolves to another shard's — or
//!    another method's — bits.
//! 2. **Cached features are immutable.** Every cached posting list is
//!    stable for the lifetime of the index: trie payloads and mined
//!    feature supports are frozen at build time, and Tree+Δ's learned Δ
//!    features are whole-dataset supports that never change once
//!    inserted. Any future dataset mutation must invalidate the store
//!    wholesale (the serving layer's cache epochs exist for exactly
//!    that).

use crate::candidates::CandidateSet;
use std::sync::Arc;
use std::time::Instant;

/// Object-safe storage for per-feature candidate bitsets, shared by the
/// workers probing one index instance. Implementations decide retention
/// (the serving layer uses an LRU) and carry their own hit/miss/eviction
/// accounting; `get`/`put` must be safe to call concurrently.
pub trait FeatureCacheStore: Send + Sync {
    /// Looks up the cached bitset for a feature key, refreshing its
    /// recency. `None` on a miss.
    fn get(&self, key: &str) -> Option<Arc<CandidateSet>>;

    /// Inserts (or refreshes) the bitset for a feature key, evicting as
    /// the implementation sees fit.
    fn put(&self, key: String, value: Arc<CandidateSet>);
}

/// The per-query cache view a [`crate::GraphIndex::filter_into_cached`]
/// override works against: it forwards to the shared store and meters the
/// wall time spent probing and inserting, so a warm cache cannot silently
/// inflate the apparent filter throughput — the serving layer subtracts
/// [`FilterCacheCtx::probe_seconds`] from the stage's wall time.
pub struct FilterCacheCtx<'a> {
    store: &'a dyn FeatureCacheStore,
    probe_s: f64,
}

impl<'a> FilterCacheCtx<'a> {
    /// Wraps a store for one query's filter stage.
    pub fn new(store: &'a dyn FeatureCacheStore) -> Self {
        FilterCacheCtx {
            store,
            probe_s: 0.0,
        }
    }

    /// Timed [`FeatureCacheStore::get`].
    pub fn get(&mut self, key: &str) -> Option<Arc<CandidateSet>> {
        let start = Instant::now();
        let hit = self.store.get(key);
        self.probe_s += start.elapsed().as_secs_f64();
        hit
    }

    /// Timed [`FeatureCacheStore::put`].
    pub fn put(&mut self, key: String, value: Arc<CandidateSet>) {
        let start = Instant::now();
        self.store.put(key, value);
        self.probe_s += start.elapsed().as_secs_f64();
    }

    /// Seconds spent inside the store so far (probes + inserts).
    pub fn probe_seconds(&self) -> f64 {
        self.probe_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// Unbounded map store, enough to exercise the context plumbing.
    #[derive(Default)]
    struct MapStore {
        entries: Mutex<HashMap<String, Arc<CandidateSet>>>,
    }

    impl FeatureCacheStore for MapStore {
        fn get(&self, key: &str) -> Option<Arc<CandidateSet>> {
            self.entries.lock().unwrap().get(key).cloned()
        }

        fn put(&self, key: String, value: Arc<CandidateSet>) {
            self.entries.lock().unwrap().insert(key, value);
        }
    }

    #[test]
    fn ctx_round_trips_and_times_probes() {
        let store = MapStore::default();
        let mut ctx = FilterCacheCtx::new(&store);
        assert!(ctx.get("p:1:2.3").is_none());
        let set = Arc::new(CandidateSet::from_sorted_ids(10, &[1, 4]));
        ctx.put("p:1:2.3".to_string(), Arc::clone(&set));
        let cached = ctx.get("p:1:2.3").expect("hit after put");
        assert_eq!(cached.to_sorted_vec(), vec![1, 4]);
        assert!(ctx.probe_seconds() >= 0.0);
    }
}
