//! Tree+Δ: frequent tree features plus on-demand discriminative cycle
//! features learned from the query workload.
//!
//! Zhao, Yu, Yu, "Graph indexing: tree + delta >= graph" (VLDB 2007). The
//! index initially contains only *tree* features mined for frequency (the
//! paper's configuration: feature size up to 10, support ratio 0.1). Query
//! processing enumerates the query's subtrees, intersects the graph-id lists
//! of those found in the index, and verifies with VF2 — exactly like a
//! frequent-tree index.
//!
//! The "Δ" is what happens with non-tree structure: the method also
//! enumerates the simple cycles of each incoming query, and any cycle
//! feature that proves sufficiently selective (it occurs in at most a
//! `delta_support_threshold` fraction of the current candidates, 0.8 in the
//! paper) is *added to the index on the fly*, with its graph-id list
//! computed once and reused by all subsequent queries. The index therefore
//! grows — and its filtering improves — as the workload exercises cyclic
//! queries.

use crate::candidates::{ArenaFold, CandidateSet, PostingList, Tombstones};
use crate::config::TreeDeltaConfig;
use crate::fcache::FilterCacheCtx;
use crate::{GraphIndex, IndexStats, MethodKind};
use sqbench_features::canonical::FeatureKey;
use sqbench_features::cycles::enumerate_cycle_instances;
use sqbench_features::mining::{FeatureKind, MinedFeatures, MiningConfig};
use sqbench_features::trees::query_trees;
use sqbench_features::FrequentMiner;
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_iso::{MatchState, Vf2Matcher};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// One learned Δ feature: the cycle fragment is kept alongside its support
/// so online inserts can test new graphs for containment and keep the
/// support covering the whole dataset.
#[derive(Debug, Clone)]
struct DeltaFeature {
    fragment: Graph,
    support: PostingList,
}

/// The Tree+Δ index.
pub struct TreeDeltaIndex {
    config: TreeDeltaConfig,
    /// Mined frequent tree features.
    tree_features: MinedFeatures,
    /// Cycle-based Δ features added during query processing: canonical
    /// cycle key → the cycle fragment plus the posting list of **all**
    /// dataset graphs containing it. Supports must cover the whole dataset,
    /// not just the learning query's candidates — a candidate-scoped list
    /// would falsely dismiss graphs for later queries that share the cycle
    /// but not the learning query's trees.
    delta_features: RwLock<BTreeMap<FeatureKey, DeltaFeature>>,
    /// A copy of the dataset graphs' ids (the Δ discovery step needs to test
    /// candidate graphs for cycle containment; it uses the dataset passed to
    /// `query`, so only the count is stored here).
    graph_count: usize,
    /// Removed ids; tree and Δ payloads are compacted lazily once the mask
    /// passes the compaction threshold.
    tombstones: Tombstones,
}

impl TreeDeltaIndex {
    /// Builds the initial (tree-only) index over a dataset.
    pub fn build(dataset: &Dataset, config: TreeDeltaConfig) -> Self {
        let tree_features = FrequentMiner::new(Self::mining_config(&config)).mine(dataset);
        TreeDeltaIndex {
            tombstones: Tombstones::from_sorted(dataset.dead_ids()),
            config,
            tree_features,
            delta_features: RwLock::new(BTreeMap::new()),
            graph_count: dataset.len(),
        }
    }

    /// The mining configuration of the tree stage. Tree+Δ's published
    /// discriminative formula differs from gIndex's; the study configures
    /// it permissively (0.1), which in our shared-ratio formulation means
    /// "keep all frequent trees".
    fn mining_config(config: &TreeDeltaConfig) -> MiningConfig {
        MiningConfig {
            max_feature_edges: config.max_feature_edges,
            min_support_ratio: config.min_support_ratio,
            discriminative_ratio: 1.0,
            kind: FeatureKind::Tree,
        }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &TreeDeltaConfig {
        &self.config
    }

    /// Number of mined tree features.
    pub fn tree_feature_count(&self) -> usize {
        self.tree_features.len()
    }

    /// Number of Δ (cycle) features accumulated so far.
    pub fn delta_feature_count(&self) -> usize {
        self.delta_features
            .read()
            .expect("delta lock poisoned")
            .len()
    }

    /// `true` iff every tree support and every learned Δ support is
    /// strictly ascending — the invariant the frequency-ordered filter
    /// folds rely on, which online insert (append-max) and lazy compaction
    /// must both preserve. Exposed for the hot-loop ingest property tests.
    #[doc(hidden)]
    pub fn postings_strictly_ascending(&self) -> bool {
        let trees_ok = self
            .tree_features
            .values()
            .all(|f| f.supporting_graphs.windows(2).all(|w| w[0] < w[1]));
        let delta = self.delta_features.read().expect("delta lock poisoned");
        trees_ok && delta.values().all(|f| f.support.is_strictly_ascending())
    }

    /// Tree-only filtering (no Δ lookup); exposed for tests and ablations.
    pub fn filter_trees_only(&self, query: &Graph) -> Vec<GraphId> {
        let mut set = CandidateSet::empty(self.graph_count);
        self.tree_candidates_into(query, &mut set);
        self.tombstones.apply(&mut set);
        set.to_sorted_vec()
    }

    /// The tree-feature stage, folded into a borrowed arena: one bitset
    /// narrowed in place per indexed subtree's posting list (unconstrained
    /// queries get the full set).
    fn tree_candidates_into(&self, query: &Graph, out: &mut CandidateSet) {
        // Rarest-first fold (see gIndex): intersection commutes, so sorting
        // the matched subtrees by support length changes only the work, not
        // the result.
        let query_trees = query_trees(query, self.config.max_feature_edges);
        let mut matched: Vec<&Vec<GraphId>> = query_trees
            .keys()
            .filter_map(|key| self.tree_features.get(key))
            .map(|feature| &feature.supporting_graphs)
            .collect();
        matched.sort_by_key(|support| support.len());
        let mut fold = ArenaFold::new(out, self.graph_count);
        for support in matched {
            if !fold.apply_sorted(support.iter().copied()) {
                return;
            }
        }
        fold.finish();
    }

    /// The seed's `Vec`-per-feature filtering (trees, then learned Δ
    /// features), kept verbatim as the reference implementation the bitset
    /// engine is property-tested against. Not part of the query path.
    #[doc(hidden)]
    pub fn filter_reference(&self, query: &Graph) -> Vec<GraphId> {
        let query_trees = query_trees(query, self.config.max_feature_edges);
        let mut candidates: Option<Vec<GraphId>> = None;
        for key in query_trees.keys() {
            if let Some(feature) = self.tree_features.get(key) {
                let support = &feature.supporting_graphs;
                candidates = Some(match candidates {
                    None => support.clone(),
                    Some(current) => crate::intersect_sorted(&current, support),
                });
                if candidates.as_ref().is_some_and(Vec::is_empty) {
                    return Vec::new();
                }
            }
        }
        let mut candidates =
            candidates.unwrap_or_else(|| (0..self.graph_count).collect::<Vec<GraphId>>());
        let delta = self.delta_features.read().expect("delta lock poisoned");
        for cycle in enumerate_cycle_instances(query, self.config.max_cycle_edges) {
            if let Some(feature) = delta.get(&cycle.key) {
                candidates = crate::intersect_sorted(&candidates, feature.support.as_slice());
                if candidates.is_empty() {
                    break;
                }
            }
        }
        candidates
    }

    /// Applies any already-learned Δ features to the candidate set in place.
    fn apply_delta(&self, query: &Graph, candidates: &mut CandidateSet) {
        let delta = self.delta_features.read().expect("delta lock poisoned");
        if delta.is_empty() {
            return;
        }
        // Rarest-first over the matched Δ features, for the same reason the
        // tree fold sorts: the narrowest support empties the set soonest.
        let mut matched: Vec<&DeltaFeature> =
            enumerate_cycle_instances(query, self.config.max_cycle_edges)
                .iter()
                .filter_map(|cycle| delta.get(&cycle.key))
                .collect();
        matched.sort_by_key(|feature| feature.support.len());
        for feature in matched {
            feature.support.intersect_into(candidates);
            if candidates.is_empty() {
                break;
            }
        }
    }

    /// The Δ step: for each simple cycle of the query not yet in the Δ
    /// index, compute the ids of **all** dataset graphs containing it (via
    /// a VF2 test on the cycle fragment — once per feature, as the module
    /// doc promises), and remember the feature if it prunes the current
    /// candidates well enough. Returns the candidate set narrowed by the
    /// newly learned features.
    ///
    /// The support list deliberately covers the whole dataset rather than
    /// only the current candidates: a candidate-scoped list would falsely
    /// dismiss graphs for *later* queries that contain the cycle but not
    /// this query's tree features. Full-dataset supports also make
    /// concurrent learning of the same cycle (batched query workers)
    /// idempotent — both workers compute the identical list.
    fn learn_delta(
        &self,
        dataset: &Dataset,
        query: &Graph,
        candidates: Vec<GraphId>,
    ) -> Vec<GraphId> {
        let cycles = enumerate_cycle_instances(query, self.config.max_cycle_edges);
        if cycles.is_empty() || candidates.is_empty() {
            return candidates;
        }
        let mut narrowed = candidates;
        for cycle in cycles {
            let already_known = self
                .delta_features
                .read()
                .expect("delta lock poisoned")
                .contains_key(&cycle.key);
            if already_known {
                continue;
            }
            // Materialize the cycle as a standalone fragment (cycle edges
            // only — chords of the query must not be folded into the
            // feature, or its stored support would be too small for later
            // queries that contain the plain cycle).
            let mut fragment = Graph::new("delta-cycle");
            for &v in &cycle.vertices {
                fragment.add_vertex(query.label(v));
            }
            for i in 0..cycle.vertices.len() {
                let j = (i + 1) % cycle.vertices.len();
                let _ = fragment.add_edge_if_absent(i, j);
            }
            let matcher = Vf2Matcher::new(&fragment);
            let mut state = MatchState::new();
            let support: Vec<GraphId> = dataset
                .ids()
                .filter(|&gid| {
                    dataset
                        .graph(gid)
                        .map(|g| matcher.matches_with(&mut state, g))
                        .unwrap_or(false)
                })
                .collect();
            let contained_in_narrowed = crate::intersect_sorted(&narrowed, &support);
            // Selectivity is still judged against the current candidates —
            // the paper's rule: remember the cycle only if it prunes them.
            let selective = (contained_in_narrowed.len() as f64)
                <= self.config.delta_support_threshold * narrowed.len() as f64;
            if selective {
                self.delta_features
                    .write()
                    .expect("delta lock poisoned")
                    .insert(
                        cycle.key.clone(),
                        DeltaFeature {
                            fragment,
                            support: PostingList::from_sorted(support),
                        },
                    );
                narrowed = contained_in_narrowed;
                if narrowed.is_empty() {
                    break;
                }
            }
        }
        narrowed
    }
}

impl GraphIndex for TreeDeltaIndex {
    fn kind(&self) -> MethodKind {
        MethodKind::TreeDelta
    }

    fn universe(&self) -> usize {
        self.graph_count
    }

    fn insert(&mut self, graph: &Graph) -> GraphId {
        let gid = self.graph_count;
        // Tree stage: the mined feature set stays frozen (like gIndex); the
        // new graph joins the supports of the tree features it contains,
        // enumerated exactly as at build time.
        let miner = FrequentMiner::new(Self::mining_config(&self.config));
        for key in miner.enumerate_graph(graph).keys() {
            if let Some(feature) = self.tree_features.get_mut(key) {
                // gid is the largest id ever issued: the push keeps the
                // support list sorted.
                feature.supporting_graphs.push(gid);
            }
        }
        // Δ stage: learned supports must keep covering the whole dataset —
        // test the new graph against each remembered cycle fragment.
        let mut delta = self.delta_features.write().expect("delta lock poisoned");
        let mut state = MatchState::new();
        for feature in delta.values_mut() {
            let matcher = Vf2Matcher::new(&feature.fragment);
            if matcher.matches_with(&mut state, graph) {
                feature.support.append_max(gid);
            }
        }
        drop(delta);
        self.graph_count += 1;
        gid
    }

    fn remove(&mut self, id: GraphId) -> bool {
        if id >= self.graph_count || !self.tombstones.mark(id) {
            return false;
        }
        if self.tombstones.should_compact(self.graph_count) {
            let dead = &self.tombstones;
            for feature in self.tree_features.values_mut() {
                feature.supporting_graphs.retain(|g| !dead.contains(*g));
            }
            let mut delta = self.delta_features.write().expect("delta lock poisoned");
            for feature in delta.values_mut() {
                feature.support.compact(dead);
            }
        }
        true
    }

    fn filter_into(&self, query: &Graph, out: &mut CandidateSet) {
        // Trees first, then the tombstone mask (the tree stage's
        // unconstrained fallback is the full set), then any Δ features
        // already learned — one borrowed bitset narrowed in place, never
        // materialized here. Δ intersections only clear bits, so masking
        // before them is equivalent to masking last.
        self.tree_candidates_into(query, out);
        self.tombstones.apply(out);
        self.apply_delta(query, out);
    }

    fn filter_into_cached(
        &self,
        query: &Graph,
        out: &mut CandidateSet,
        ctx: &mut FilterCacheCtx<'_>,
    ) {
        // Tree stage: the mined tree supports are frozen at build time, so
        // each indexed subtree's posting list caches like gIndex's
        // fragments ("t:" keys).
        let query_trees = query_trees(query, self.config.max_feature_edges);
        let mut matched: Vec<&sqbench_features::mining::FrequentFeature> = query_trees
            .keys()
            .filter_map(|key| self.tree_features.get(key))
            .collect();
        matched.sort_by_key(|feature| feature.supporting_graphs.len());
        let mut fold = ArenaFold::new(out, self.graph_count);
        for feature in matched {
            let cache_key = format!("t:{}", feature.key.as_str());
            let cached = match ctx.get(&cache_key) {
                Some(set) => set,
                None => {
                    let set = Arc::new(CandidateSet::from_sorted_ids(
                        self.graph_count,
                        &feature.supporting_graphs,
                    ));
                    ctx.put(cache_key, Arc::clone(&set));
                    set
                }
            };
            if !fold.apply_set(&cached) {
                return;
            }
        }
        fold.finish();
        // Mask tombstones before the Δ stage: its early return on an empty
        // map would otherwise skip an end-of-method mask, and the Δ
        // intersections below only clear bits, never set them.
        self.tombstones.apply(out);
        // Δ stage ("d:" keys): sound to cache despite the growing Δ map,
        // because the serving layer flushes the cache on every mutation, so
        // within one cache epoch a Δ feature's support is final — a key only
        // enters the cache after it entered the map. A cycle not (yet) in
        // the map is simply not probed, exactly like `apply_delta`.
        let delta = self.delta_features.read().expect("delta lock poisoned");
        if delta.is_empty() {
            return;
        }
        let mut matched: Vec<(&FeatureKey, &DeltaFeature)> =
            enumerate_cycle_instances(query, self.config.max_cycle_edges)
                .iter()
                .filter_map(|cycle| delta.get_key_value(&cycle.key))
                .collect();
        matched.sort_by_key(|(_, feature)| feature.support.len());
        for (key, feature) in matched {
            let cache_key = format!("d:{}", key.as_str());
            let cached = match ctx.get(&cache_key) {
                Some(set) => set,
                None => {
                    let set = Arc::new(feature.support.to_candidate_set(self.graph_count));
                    ctx.put(cache_key, Arc::clone(&set));
                    set
                }
            };
            out.intersect_with(&cached);
            if out.is_empty() {
                break;
            }
        }
    }

    fn stats(&self) -> IndexStats {
        let tree_bytes: usize = self.tree_features.values().map(|f| f.memory_bytes()).sum();
        let delta = self.delta_features.read().expect("delta lock poisoned");
        let delta_bytes: usize = delta
            .iter()
            .map(|(k, v)| k.len_bytes() + v.support.memory_bytes() + v.fragment.memory_bytes())
            .sum();
        IndexStats {
            distinct_features: self.tree_features.len() + delta.len(),
            size_bytes: tree_bytes + delta_bytes,
        }
    }

    fn verify_set(
        &self,
        dataset: &Dataset,
        query: &Graph,
        candidates: &CandidateSet,
    ) -> Vec<GraphId> {
        // Δ learning narrows the candidate set further (and persists the new
        // features for subsequent queries) before verification, so its cost
        // is part of query processing time, as in the paper. Learning needs
        // the candidates as a sorted id list — the one place Tree+Δ still
        // materializes one, inherent to the published algorithm.
        let narrowed = self.learn_delta(dataset, query, candidates.to_sorted_vec());
        self.verify(dataset, query, &narrowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive_answers;
    use sqbench_graph::GraphBuilder;

    fn dataset() -> Dataset {
        let tri = GraphBuilder::new("tri")
            .vertices(&[1, 1, 2])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let path = GraphBuilder::new("path")
            .vertices(&[1, 1, 2])
            .edges(&[(0, 1), (1, 2)])
            .build()
            .unwrap();
        let square = GraphBuilder::new("square")
            .vertices(&[1, 2, 1, 2])
            .edges(&[(0, 1), (1, 2), (2, 3), (3, 0)])
            .build()
            .unwrap();
        // Contains every subtree of the triangle query used in the tests
        // (1-1, 1-2, 1-1-2, 1-2-1) but not the triangle itself, so cyclic
        // queries have a non-trivial Δ to learn.
        let chain = GraphBuilder::new("chain")
            .vertices(&[1, 2, 1, 1])
            .edges(&[(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        Dataset::from_graphs("ds", vec![tri, path, square, chain])
    }

    fn test_config() -> TreeDeltaConfig {
        TreeDeltaConfig {
            max_feature_edges: 3,
            min_support_ratio: 0.1,
            max_cycle_edges: 4,
            delta_support_threshold: 0.8,
        }
    }

    fn query(labels: &[u32], edges: &[(usize, usize)]) -> Graph {
        GraphBuilder::new("q")
            .vertices(labels)
            .edges(edges)
            .build()
            .unwrap()
    }

    #[test]
    fn build_mines_tree_features_only() {
        let idx = TreeDeltaIndex::build(&dataset(), test_config());
        assert!(idx.tree_feature_count() > 0);
        assert_eq!(idx.delta_feature_count(), 0);
        assert_eq!(idx.kind(), MethodKind::TreeDelta);
    }

    #[test]
    fn query_returns_exact_answers() {
        let ds = dataset();
        let idx = TreeDeltaIndex::build(&ds, test_config());
        for (labels, edges) in [
            (vec![1u32, 1], vec![(0usize, 1usize)]),
            (vec![1, 1, 2], vec![(0, 1), (1, 2)]),
            (vec![1, 1, 2], vec![(0, 1), (1, 2), (2, 0)]),
            (vec![1, 2, 1, 2], vec![(0, 1), (1, 2), (2, 3), (3, 0)]),
        ] {
            let q = query(&labels, &edges);
            let outcome = idx.query(&ds, &q);
            assert_eq!(outcome.answers, exhaustive_answers(&ds, &q));
        }
    }

    #[test]
    fn cyclic_queries_add_delta_features() {
        let ds = dataset();
        let idx = TreeDeltaIndex::build(&ds, test_config());
        assert_eq!(idx.delta_feature_count(), 0);
        // Triangle query: its cycle occurs in 1 of the candidates, which is
        // selective, so the cycle becomes a Δ feature.
        let q = query(&[1, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let first = idx.query(&ds, &q);
        assert_eq!(first.answers, vec![0]);
        assert!(idx.delta_feature_count() >= 1);

        // The same query now benefits from the learned feature at the
        // *filtering* stage: the candidate set shrinks to the true answer.
        let second_candidates = idx.filter(&q);
        assert_eq!(second_candidates, vec![0]);
        let second = idx.query(&ds, &q);
        assert_eq!(second.answers, vec![0]);
    }

    #[test]
    fn acyclic_queries_do_not_touch_delta() {
        let ds = dataset();
        let idx = TreeDeltaIndex::build(&ds, test_config());
        let q = query(&[1, 1, 2], &[(0, 1), (1, 2)]);
        let _ = idx.query(&ds, &q);
        assert_eq!(idx.delta_feature_count(), 0);
    }

    #[test]
    fn tree_only_filter_is_superset_of_full_filter() {
        let ds = dataset();
        let idx = TreeDeltaIndex::build(&ds, test_config());
        let q = query(&[1, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let _ = idx.query(&ds, &q); // learn Δ
        let tree_only = idx.filter_trees_only(&q);
        let full = idx.filter(&q);
        for gid in &full {
            assert!(tree_only.contains(gid));
        }
        assert!(full.len() <= tree_only.len());
    }

    #[test]
    fn stats_grow_as_delta_features_accumulate() {
        let ds = dataset();
        let idx = TreeDeltaIndex::build(&ds, test_config());
        let before = idx.stats();
        let q = query(&[1, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let _ = idx.query(&ds, &q);
        let after = idx.stats();
        assert!(after.distinct_features >= before.distinct_features);
        assert!(after.size_bytes >= before.size_bytes);
    }

    #[test]
    fn delta_supports_cover_the_whole_dataset_not_just_the_learning_query() {
        // g0: triangle 1-1-1 with a label-2 pendant; g1: plain triangle
        // 1-1-1 (no pendant); g2, g3: acyclic graphs containing all of q1's
        // subtrees so q1's tree filter keeps them. q1 (triangle + pendant)
        // teaches the Δ index the 1-1-1 cycle; its tree features exclude
        // g1, so a candidate-scoped support list would omit g1 and a later
        // plain-triangle query would falsely dismiss it.
        let with_pendant = GraphBuilder::new("g0")
            .vertices(&[1, 1, 1, 2])
            .edges(&[(0, 1), (1, 2), (2, 0), (0, 3)])
            .build()
            .unwrap();
        let plain_triangle = GraphBuilder::new("g1")
            .vertices(&[1, 1, 1])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        // Contains every subtree of q1 up to 3 edges (including the
        // 1-1-1-2 path and the 1-centered (1,1,2) star) but no cycle.
        let acyclic = |name: &str| {
            GraphBuilder::new(name)
                .vertices(&[1, 1, 1, 2, 1])
                .edges(&[(0, 1), (0, 2), (0, 3), (1, 4)])
                .build()
                .unwrap()
        };
        let ds = Dataset::from_graphs(
            "delta-soundness",
            vec![with_pendant, plain_triangle, acyclic("g2"), acyclic("g3")],
        );
        let idx = TreeDeltaIndex::build(&ds, test_config());

        let q1 = query(&[1, 1, 1, 2], &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        let first = idx.query(&ds, &q1);
        assert_eq!(first.answers, exhaustive_answers(&ds, &q1));
        assert!(idx.delta_feature_count() >= 1, "q1 should teach the cycle");

        // The plain triangle query must still find g1 even though g1 was
        // outside q1's candidate set when the cycle was learned.
        let q2 = query(&[1, 1, 1], &[(0, 1), (1, 2), (2, 0)]);
        let second = idx.query(&ds, &q2);
        assert_eq!(second.answers, exhaustive_answers(&ds, &q2));
        assert!(second.answers.contains(&1), "learned Δ must not dismiss g1");
    }

    #[test]
    fn unselective_cycles_are_not_added() {
        // Dataset where every graph is a triangle: the triangle cycle occurs
        // in 100% of candidates (> 0.8 threshold), so it is not worth
        // remembering.
        let ds = Dataset::from_graphs(
            "tris",
            (0..4)
                .map(|i| {
                    GraphBuilder::new(format!("t{i}"))
                        .vertices(&[1, 1, 1])
                        .edges(&[(0, 1), (1, 2), (2, 0)])
                        .build()
                        .unwrap()
                })
                .collect(),
        );
        let idx = TreeDeltaIndex::build(&ds, test_config());
        let q = query(&[1, 1, 1], &[(0, 1), (1, 2), (2, 0)]);
        let outcome = idx.query(&ds, &q);
        assert_eq!(outcome.answers, vec![0, 1, 2, 3]);
        assert_eq!(idx.delta_feature_count(), 0);
    }

    #[test]
    fn empty_query_matches_everything() {
        let ds = dataset();
        let idx = TreeDeltaIndex::build(&ds, test_config());
        let outcome = idx.query(&ds, &Graph::new("empty"));
        assert_eq!(outcome.answers, vec![0, 1, 2, 3]);
    }

    #[test]
    fn insert_and_remove_track_rebuild_answers() {
        let mut ds = dataset();
        let mut idx = TreeDeltaIndex::build(&ds, test_config());
        // Learn a Δ feature first so the insert has to extend a live Δ
        // support (the newcomer contains the learned triangle).
        let tri_q = query(&[1, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let _ = idx.query(&ds, &tri_q);
        assert!(idx.delta_feature_count() >= 1);

        let newcomer = GraphBuilder::new("tri2")
            .vertices(&[1, 1, 2, 2])
            .edges(&[(0, 1), (1, 2), (2, 0), (2, 3)])
            .build()
            .unwrap();
        let pushed = ds.push(newcomer.clone());
        assert_eq!(idx.insert(&newcomer), pushed);
        assert_eq!(idx.universe(), ds.len());
        assert!(ds.remove(1));
        assert!(idx.remove(1));
        assert!(!idx.remove(1), "double remove must be a no-op");

        for (labels, edges) in [
            (vec![1u32, 1], vec![(0usize, 1usize)]),
            (vec![1, 1, 2], vec![(0, 1), (1, 2)]),
            (vec![1, 1, 2], vec![(0, 1), (1, 2), (2, 0)]),
        ] {
            let q = query(&labels, &edges);
            let outcome = idx.query(&ds, &q);
            let rebuilt = TreeDeltaIndex::build(&ds, test_config());
            assert_eq!(outcome.answers, rebuilt.query(&ds, &q).answers);
            assert_eq!(outcome.answers, exhaustive_answers(&ds, &q));
        }
        // Tombstone masking also covers the unconstrained (empty-query)
        // full-set fallback.
        let all = idx.query(&ds, &Graph::new("empty"));
        assert_eq!(all.answers, vec![0, 2, 3, 4]);
    }
}
