//! Shared candidate-set engine for the filtering stage.
//!
//! Every filter-and-verify method spends its filtering stage intersecting
//! per-feature sets of graph ids. The seed implementation materialized a
//! fresh sorted `Vec<GraphId>` per feature and merged pairwise
//! ([`crate::intersect_sorted`]); at dataset scale that is one allocation
//! plus an `O(|a| + |b|)` merge for *every* feature of *every* query. This
//! module replaces that with two cache-friendly primitives:
//!
//! * [`CandidateSet`] — a dense bitset over graph ids (`u64` blocks sized to
//!   the dataset). Intersection and union are word-wise `&`/`|` sweeps,
//!   membership is popcount-free bit probing, and cardinality is a popcount
//!   sweep. One set is allocated per query and *narrowed in place*, so the
//!   per-feature cost is `O(dataset / 64)` words with zero allocation.
//! * [`PostingList`] — a sorted id list as stored in index payloads, with a
//!   galloping sorted-sorted intersection for the skewed case and a
//!   streaming [`CandidateSet::retain_sorted`] bridge so a posting list can
//!   narrow a bitset without being converted first.
//!
//! [`CandidateFold`] packages the common filtering loop (first feature seeds
//! the set, later features narrow it, absence of any constraint means "all
//! graphs") used by GraphGrepSX, Grapes, gIndex and Tree+Δ.

use sqbench_graph::GraphId;

const BLOCK_BITS: usize = 64;

/// Dense bitset over the graph ids `0..universe` of a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSet {
    blocks: Vec<u64>,
    universe: usize,
}

impl CandidateSet {
    /// The empty set over `0..universe`.
    pub fn empty(universe: usize) -> Self {
        CandidateSet {
            blocks: vec![0; universe.div_ceil(BLOCK_BITS)],
            universe,
        }
    }

    /// The full set over `0..universe`.
    pub fn full(universe: usize) -> Self {
        let mut set = CandidateSet {
            blocks: vec![!0u64; universe.div_ceil(BLOCK_BITS)],
            universe,
        };
        set.mask_tail();
        set
    }

    /// Builds a set from an ascending (not necessarily strictly) id slice.
    pub fn from_sorted_ids(universe: usize, ids: &[GraphId]) -> Self {
        let mut set = CandidateSet::empty(universe);
        for &id in ids {
            set.insert(id);
        }
        set
    }

    /// Clears bits above `universe` in the last block.
    fn mask_tail(&mut self) {
        let tail = self.universe % BLOCK_BITS;
        if tail != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of ids the set ranges over (the dataset size, not the
    /// cardinality).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of ids in the set (popcount sweep).
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// `true` if no id is in the set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Adds `id` to the set.
    pub fn insert(&mut self, id: GraphId) {
        debug_assert!(
            id < self.universe,
            "id {id} outside universe {}",
            self.universe
        );
        self.blocks[id / BLOCK_BITS] |= 1u64 << (id % BLOCK_BITS);
    }

    /// Removes `id` from the set.
    pub fn remove(&mut self, id: GraphId) {
        debug_assert!(
            id < self.universe,
            "id {id} outside universe {}",
            self.universe
        );
        self.blocks[id / BLOCK_BITS] &= !(1u64 << (id % BLOCK_BITS));
    }

    /// Membership test.
    pub fn contains(&self, id: GraphId) -> bool {
        id < self.universe && self.blocks[id / BLOCK_BITS] & (1u64 << (id % BLOCK_BITS)) != 0
    }

    /// Removes every id (keeps the allocation).
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Re-targets the set at a possibly different `universe` and empties it,
    /// reusing the block allocation. This is the arena entry point of the
    /// borrowed-set filtering contract ([`crate::GraphIndex::filter_into`]):
    /// a worker-owned set is reset per query instead of reallocated.
    pub fn reset_empty(&mut self, universe: usize) {
        let blocks = universe.div_ceil(BLOCK_BITS);
        self.blocks.truncate(blocks);
        self.blocks.fill(0);
        self.blocks.resize(blocks, 0);
        self.universe = universe;
    }

    /// Re-targets the set at a possibly different `universe` and fills it
    /// (every id `0..universe` becomes a member), reusing the allocation.
    pub fn reset_full(&mut self, universe: usize) {
        let blocks = universe.div_ceil(BLOCK_BITS);
        self.blocks.truncate(blocks);
        self.blocks.fill(!0u64);
        self.blocks.resize(blocks, !0u64);
        self.universe = universe;
        self.mask_tail();
    }

    /// In-place intersection: `self &= other`. Both sets must range over the
    /// same universe.
    pub fn intersect_with(&mut self, other: &CandidateSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *a &= b;
        }
    }

    /// In-place union: `self |= other`. Both sets must range over the same
    /// universe.
    pub fn union_with(&mut self, other: &CandidateSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection with an **ascending** id stream, without
    /// materializing the stream as a set: blocks the stream skips are
    /// zeroed, blocks it touches are masked to the streamed bits. Runs in
    /// `O(stream + blocks)` with zero allocation — this is the hot loop of
    /// the filtering stage.
    pub fn retain_sorted<I>(&mut self, ids: I)
    where
        I: IntoIterator<Item = GraphId>,
    {
        if self.blocks.is_empty() {
            return;
        }
        let mut current = 0usize;
        let mut mask = 0u64;
        for id in ids {
            debug_assert!(
                id < self.universe,
                "id {id} outside universe {}",
                self.universe
            );
            let block = id / BLOCK_BITS;
            debug_assert!(block >= current, "retain_sorted requires ascending ids");
            if block != current {
                self.blocks[current] &= mask;
                self.blocks[current + 1..block].fill(0);
                current = block;
                mask = 0;
            }
            mask |= 1u64 << (id % BLOCK_BITS);
        }
        self.blocks[current] &= mask;
        self.blocks[current + 1..].fill(0);
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = GraphId> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let base = i * BLOCK_BITS;
            BlockBits { block }.map(move |bit| base + bit)
        })
    }

    /// Materializes the set as a sorted `Vec<GraphId>` — done once per
    /// query, when the filter hands its result to verification.
    pub fn to_sorted_vec(&self) -> Vec<GraphId> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.iter());
        out
    }

    /// Estimated heap bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.blocks.capacity() * std::mem::size_of::<u64>()
    }
}

/// Iterator over the set bit positions of a single block.
struct BlockBits {
    block: u64,
}

impl Iterator for BlockBits {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.block == 0 {
            return None;
        }
        let bit = self.block.trailing_zeros() as usize;
        self.block &= self.block - 1;
        Some(bit)
    }
}

/// A sorted, deduplicated list of graph ids — the representation index
/// payloads store per feature.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingList {
    ids: Vec<GraphId>,
}

impl PostingList {
    /// Wraps an already-sorted, deduplicated id vector.
    pub fn from_sorted(ids: Vec<GraphId>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly ascending"
        );
        PostingList { ids }
    }

    /// Builds a list from arbitrary ids (sorts and deduplicates).
    pub fn from_unsorted(mut ids: Vec<GraphId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        PostingList { ids }
    }

    /// The ids as a slice.
    pub fn as_slice(&self) -> &[GraphId] {
        &self.ids
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no graph contains the feature.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends an id strictly larger than every stored id — the online
    /// insert path, where a new graph's id is always the dataset maximum.
    pub fn append_max(&mut self, id: GraphId) {
        debug_assert!(
            self.ids.last().is_none_or(|&last| last < id),
            "append_max requires a new maximum id"
        );
        self.ids.push(id);
    }

    /// Narrows `set` to the ids also present in this list (streaming, no
    /// allocation).
    pub fn intersect_into(&self, set: &mut CandidateSet) {
        set.retain_sorted(self.ids.iter().copied());
    }

    /// Materializes this list as a [`CandidateSet`].
    pub fn to_candidate_set(&self, universe: usize) -> CandidateSet {
        CandidateSet::from_sorted_ids(universe, &self.ids)
    }

    /// Estimated heap bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.ids.capacity() * std::mem::size_of::<GraphId>()
    }

    /// Drops every tombstoned id from the list — the lazy-compaction step
    /// of the mutable-index contract. Posting payloads keep dead ids until
    /// [`Tombstones::should_compact`] trips; until then the per-query
    /// [`Tombstones::apply`] mask keeps them out of candidate sets.
    pub fn compact(&mut self, dead: &Tombstones) {
        if dead.is_empty() {
            return;
        }
        self.ids.retain(|&id| !dead.contains(id));
    }
}

/// The dead-id mask every mutable index carries: a sorted list of removed
/// graph ids over the (dense, stable) id space of its dataset.
///
/// Removal is two-phase. [`Tombstones::mark`] records the dead id; every
/// `filter_into` path then ends with [`Tombstones::apply`], which clears
/// dead bits from the candidate set — this covers posting payloads that
/// still mention the id *and* the "unconstrained → full set" fallbacks
/// (Scan, folds with no indexed feature). When the mask grows past
/// [`Tombstones::should_compact`], the owning index purges its payloads
/// ([`PostingList::compact`], trie purge, …) — but the mask itself is
/// **kept**, because the full-set fallbacks never consult payloads at all.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tombstones {
    dead: Vec<GraphId>,
}

impl Tombstones {
    /// An empty mask.
    pub fn new() -> Self {
        Tombstones::default()
    }

    /// Builds the mask from an already-sorted dead id slice (the shape
    /// `Dataset::dead_ids` hands out, so an index built over a previously
    /// mutated dataset starts consistent).
    pub fn from_sorted(dead: &[GraphId]) -> Self {
        debug_assert!(
            dead.windows(2).all(|w| w[0] < w[1]),
            "dead ids must be strictly ascending"
        );
        Tombstones {
            dead: dead.to_vec(),
        }
    }

    /// Marks `id` dead. Returns `false` when it already was.
    pub fn mark(&mut self, id: GraphId) -> bool {
        match self.dead.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.dead.insert(pos, id);
                true
            }
        }
    }

    /// `true` when `id` has been removed.
    pub fn contains(&self, id: GraphId) -> bool {
        self.dead.binary_search(&id).is_ok()
    }

    /// Number of dead ids.
    pub fn len(&self) -> usize {
        self.dead.len()
    }

    /// `true` when nothing has been removed.
    pub fn is_empty(&self) -> bool {
        self.dead.is_empty()
    }

    /// The dead ids, ascending.
    pub fn ids(&self) -> &[GraphId] {
        &self.dead
    }

    /// Clears every dead bit from `out` — the mandatory last step of every
    /// `filter_into` path of a mutable index.
    pub fn apply(&self, out: &mut CandidateSet) {
        for &id in &self.dead {
            if id < out.universe() {
                out.remove(id);
            }
        }
    }

    /// `true` when the mask is large enough (both absolutely and relative
    /// to `universe`) that payload compaction pays for itself.
    pub fn should_compact(&self, universe: usize) -> bool {
        self.dead.len() >= 32 && self.dead.len() * 8 >= universe
    }

    /// Estimated heap bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.dead.capacity() * std::mem::size_of::<GraphId>()
    }
}

/// Sorted-sorted intersection of id slices. Size-skewed inputs use a
/// galloping (exponential) search from the smaller side; similar sizes use
/// the linear merge. Allocates the output — the methods' hot paths use
/// [`CandidateSet::retain_sorted`] instead; this exists as the engine's
/// Vec-producing entry point and as the baseline the micro-benchmarks
/// compare against.
pub fn intersect_posting(a: &[GraphId], b: &[GraphId]) -> Vec<GraphId> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return Vec::new();
    }
    // Galloping pays off when one side is much smaller.
    if small.len() * 16 < large.len() {
        let mut out = Vec::with_capacity(small.len());
        let mut base = 0usize;
        for &id in small {
            if base >= large.len() {
                break;
            }
            // Exponential probe for the first index >= id, then a binary
            // search inside the bracketed window.
            let mut offset = 1usize;
            while base + offset < large.len() && large[base + offset] < id {
                offset <<= 1;
            }
            let window_end = (base + offset + 1).min(large.len());
            match large[base..window_end].binary_search(&id) {
                Ok(pos) => {
                    out.push(id);
                    base += pos + 1;
                }
                Err(pos) => base += pos,
            }
        }
        out
    } else {
        crate::intersect_sorted(small, large)
    }
}

/// The shared filtering loop: feature posting streams arrive one at a time,
/// the first seeds the candidate set, later ones narrow it in place, and a
/// query none of whose features are indexed leaves the fold unconstrained
/// (every graph is a candidate — the gIndex / Tree+Δ semantics).
#[derive(Debug)]
pub struct CandidateFold {
    universe: usize,
    set: Option<CandidateSet>,
}

impl CandidateFold {
    /// A fold over a dataset of `universe` graphs, initially unconstrained.
    pub fn new(universe: usize) -> Self {
        CandidateFold {
            universe,
            set: None,
        }
    }

    /// Applies one feature's ascending id stream. Returns `false` when the
    /// candidate set became empty (callers short-circuit).
    pub fn apply_sorted<I>(&mut self, ids: I) -> bool
    where
        I: IntoIterator<Item = GraphId>,
    {
        match &mut self.set {
            None => {
                let mut set = CandidateSet::empty(self.universe);
                for id in ids {
                    set.insert(id);
                }
                self.set = Some(set);
            }
            Some(set) => set.retain_sorted(ids),
        }
        !self.set.as_ref().expect("set was just seeded").is_empty()
    }

    /// `true` when at least one feature has been applied.
    pub fn is_constrained(&self) -> bool {
        self.set.is_some()
    }

    /// Finishes the fold as a [`CandidateSet`] (unconstrained → full set).
    pub fn into_set(self) -> CandidateSet {
        match self.set {
            Some(set) => set,
            None => CandidateSet::full(self.universe),
        }
    }

    /// Finishes the fold as the sorted candidate vector the [`crate::GraphIndex`]
    /// contract requires (unconstrained → all ids).
    pub fn into_sorted_vec(self) -> Vec<GraphId> {
        match self.set {
            Some(set) => set.to_sorted_vec(),
            None => (0..self.universe).collect(),
        }
    }
}

/// The borrowed-set counterpart of [`CandidateFold`]: the same
/// seed-then-narrow loop, but folding into a caller-owned arena
/// [`CandidateSet`] instead of allocating one. This is what the
/// [`crate::GraphIndex::filter_into`] implementations of the posting-fold
/// methods run on — a query service hands each worker's reusable arena to
/// `filter_into` and no per-query set (or `Vec<GraphId>`) is ever allocated.
///
/// Dropping the fold without calling [`ArenaFold::finish`] leaves the arena
/// in whatever narrowed state it reached — callers that short-circuit on an
/// empty set rely on exactly that.
#[derive(Debug)]
pub struct ArenaFold<'a> {
    set: &'a mut CandidateSet,
    constrained: bool,
}

impl<'a> ArenaFold<'a> {
    /// Starts a fold over `0..universe` in the given arena. The arena is
    /// reset (and re-targeted at `universe` if it last served a different
    /// dataset); its allocation is reused.
    pub fn new(set: &'a mut CandidateSet, universe: usize) -> Self {
        set.reset_empty(universe);
        ArenaFold {
            set,
            constrained: false,
        }
    }

    /// Applies one feature's ascending id stream: the first stream seeds the
    /// set, later ones narrow it in place. Returns `false` when the set
    /// became empty (callers short-circuit).
    pub fn apply_sorted<I>(&mut self, ids: I) -> bool
    where
        I: IntoIterator<Item = GraphId>,
    {
        if self.constrained {
            self.set.retain_sorted(ids);
        } else {
            for id in ids {
                self.set.insert(id);
            }
            self.constrained = true;
        }
        !self.set.is_empty()
    }

    /// Applies one feature's already-materialized bitset (a cached posting
    /// list): the blockwise counterpart of [`ArenaFold::apply_sorted`]. The
    /// first set seeds the fold via a block copy, later ones narrow it with
    /// a block AND — both O(universe / 64) regardless of how many ids the
    /// feature posts. `other` must share the fold's universe (the cache
    /// layer guarantees this by keying entries per index instance; the
    /// blockwise ops `debug_assert` it). Returns `false` when the set
    /// became empty (callers short-circuit).
    pub fn apply_set(&mut self, other: &CandidateSet) -> bool {
        if self.constrained {
            self.set.intersect_with(other);
        } else {
            // The arena was `reset_empty` by `new`, so a union is a copy.
            self.set.union_with(other);
            self.constrained = true;
        }
        !self.set.is_empty()
    }

    /// `true` when at least one feature has been applied.
    pub fn is_constrained(&self) -> bool {
        self.constrained
    }

    /// Finishes the fold: an unconstrained fold (no feature applied) means
    /// "no information", so the arena becomes the full set.
    pub fn finish(self) {
        if !self.constrained {
            let universe = self.set.universe();
            self.set.reset_full(universe);
        }
    }

    /// Finishes the fold as the empty set — the short-circuit for a query
    /// feature that is absent from the index (no graph can match).
    pub fn prune_all(self) {
        self.set.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = CandidateSet::empty(130);
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
        let f = CandidateSet::full(130);
        assert_eq!(f.len(), 130);
        assert!(f.contains(0) && f.contains(129));
        assert!(!f.contains(130));
        assert_eq!(f.to_sorted_vec(), (0..130).collect::<Vec<_>>());
    }

    #[test]
    fn zero_universe() {
        let mut s = CandidateSet::full(0);
        assert_eq!(s.len(), 0);
        s.retain_sorted(std::iter::empty());
        assert!(s.to_sorted_vec().is_empty());
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = CandidateSet::empty(100);
        s.insert(3);
        s.insert(64);
        s.insert(99);
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.to_sorted_vec(), vec![3, 99]);
    }

    #[test]
    fn intersect_and_union_blockwise() {
        let a = CandidateSet::from_sorted_ids(200, &[1, 63, 64, 128, 199]);
        let b = CandidateSet::from_sorted_ids(200, &[63, 64, 65, 199]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_sorted_vec(), vec![63, 64, 199]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_sorted_vec(), vec![1, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn retain_sorted_matches_reference_intersection() {
        let base = vec![0, 5, 63, 64, 65, 127, 128, 190];
        let streams: Vec<Vec<GraphId>> = vec![
            vec![],
            vec![0],
            vec![5, 64, 128],
            vec![63, 64, 65],
            (0..191).collect(),
            vec![190],
            vec![1, 2, 3, 4],
        ];
        for stream in streams {
            let mut set = CandidateSet::from_sorted_ids(191, &base);
            set.retain_sorted(stream.iter().copied());
            assert_eq!(
                set.to_sorted_vec(),
                crate::intersect_sorted(&base, &stream),
                "stream {stream:?}"
            );
        }
    }

    #[test]
    fn retain_sorted_on_full_set() {
        let mut set = CandidateSet::full(150);
        set.retain_sorted([7usize, 64, 149]);
        assert_eq!(set.to_sorted_vec(), vec![7, 64, 149]);
    }

    #[test]
    fn iteration_is_sorted() {
        let ids = vec![2, 63, 64, 66, 120, 127, 128];
        let set = CandidateSet::from_sorted_ids(129, &ids);
        let collected: Vec<GraphId> = set.iter().collect();
        assert_eq!(collected, ids);
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn posting_list_roundtrip() {
        let p = PostingList::from_unsorted(vec![9, 3, 3, 7]);
        assert_eq!(p.as_slice(), &[3, 7, 9]);
        assert_eq!(p.len(), 3);
        let mut set = CandidateSet::full(10);
        p.intersect_into(&mut set);
        assert_eq!(set.to_sorted_vec(), vec![3, 7, 9]);
        assert_eq!(p.to_candidate_set(10).to_sorted_vec(), vec![3, 7, 9]);
        assert!(PostingList::default().is_empty());
    }

    #[test]
    fn tombstones_mark_apply_and_compact() {
        let mut dead = Tombstones::new();
        assert!(dead.is_empty());
        assert!(dead.mark(5));
        assert!(dead.mark(2));
        assert!(!dead.mark(5), "double-remove is a no-op");
        assert_eq!(dead.ids(), &[2, 5]);
        assert!(dead.contains(2) && !dead.contains(3));

        // apply clears dead bits, including on the full-set fallback path.
        let mut set = CandidateSet::full(8);
        dead.apply(&mut set);
        assert_eq!(set.to_sorted_vec(), vec![0, 1, 3, 4, 6, 7]);
        // Dead ids above a smaller universe are ignored, not a panic.
        let mut small = CandidateSet::full(4);
        dead.apply(&mut small);
        assert_eq!(small.to_sorted_vec(), vec![0, 1, 3]);

        // Posting compaction drops dead ids; the mask survives it.
        let mut posting = PostingList::from_sorted(vec![1, 2, 4, 5, 7]);
        posting.compact(&dead);
        assert_eq!(posting.as_slice(), &[1, 4, 7]);
        assert_eq!(dead.len(), 2);

        // from_sorted round-trips the dataset's dead-id slice.
        assert_eq!(Tombstones::from_sorted(&[2, 5]), dead);
    }

    #[test]
    fn tombstones_compaction_threshold() {
        let mut dead = Tombstones::new();
        for id in 0..31 {
            dead.mark(id);
        }
        assert!(!dead.should_compact(100), "below the absolute floor");
        dead.mark(31);
        assert!(dead.should_compact(100), "32 dead of 100 is worth purging");
        assert!(
            !dead.should_compact(10_000),
            "32 dead of 10k is not worth a payload sweep"
        );
    }

    #[test]
    fn galloping_intersection_agrees_with_merge() {
        let small: Vec<GraphId> = vec![5, 100, 101, 5000];
        let large: Vec<GraphId> = (0..6000).filter(|x| x % 5 == 0).collect();
        let expected = crate::intersect_sorted(&small, &large);
        assert_eq!(intersect_posting(&small, &large), expected);
        assert_eq!(intersect_posting(&large, &small), expected);
        assert_eq!(intersect_posting(&[], &large), Vec::<GraphId>::new());
        // Similar sizes take the merge path.
        let a: Vec<GraphId> = (0..100).collect();
        let b: Vec<GraphId> = (50..150).collect();
        assert_eq!(intersect_posting(&a, &b), crate::intersect_sorted(&a, &b));
    }

    #[test]
    fn reset_reuses_allocation_across_universes() {
        let mut set = CandidateSet::from_sorted_ids(200, &[0, 64, 199]);
        // Shrink to a smaller universe: old bits must not leak through.
        set.reset_empty(70);
        assert_eq!(set.universe(), 70);
        assert!(set.is_empty());
        set.insert(69);
        assert_eq!(set.to_sorted_vec(), vec![69]);
        // Grow again, full: every id present, tail masked.
        set.reset_full(130);
        assert_eq!(set.universe(), 130);
        assert_eq!(set.len(), 130);
        assert!(!set.contains(130));
        // Full reset to a smaller universe keeps the tail clean.
        set.reset_full(65);
        assert_eq!(set.len(), 65);
        assert_eq!(set.iter().last(), Some(64));
    }

    #[test]
    fn arena_fold_matches_owned_fold() {
        let lists: Vec<Vec<GraphId>> = vec![vec![1, 3, 5, 7, 64], vec![3, 5, 64], vec![5, 64, 99]];
        let mut owned = CandidateFold::new(100);
        for list in &lists {
            owned.apply_sorted(list.iter().copied());
        }
        let mut arena = CandidateSet::full(7); // dirty, wrong universe
        let mut fold = ArenaFold::new(&mut arena, 100);
        assert!(!fold.is_constrained());
        for list in &lists {
            assert!(fold.apply_sorted(list.iter().copied()));
        }
        assert!(fold.is_constrained());
        fold.finish();
        assert_eq!(arena.to_sorted_vec(), owned.into_sorted_vec());
    }

    #[test]
    fn arena_fold_apply_set_matches_apply_sorted() {
        let lists: Vec<Vec<GraphId>> = vec![vec![1, 3, 5, 7, 64], vec![3, 5, 64], vec![5, 64, 99]];
        let mut streamed = CandidateSet::empty(100);
        let mut fold = ArenaFold::new(&mut streamed, 100);
        for list in &lists {
            fold.apply_sorted(list.iter().copied());
        }
        fold.finish();
        let mut cached = CandidateSet::empty(100);
        let mut fold = ArenaFold::new(&mut cached, 100);
        for list in &lists {
            let set = CandidateSet::from_sorted_ids(100, list);
            assert!(fold.apply_set(&set));
        }
        assert!(fold.is_constrained());
        fold.finish();
        assert_eq!(cached.to_sorted_vec(), streamed.to_sorted_vec());
    }

    #[test]
    fn arena_fold_apply_set_short_circuits_on_disjoint_sets() {
        let mut arena = CandidateSet::empty(10);
        let mut fold = ArenaFold::new(&mut arena, 10);
        assert!(fold.apply_set(&CandidateSet::from_sorted_ids(10, &[2])));
        assert!(!fold.apply_set(&CandidateSet::from_sorted_ids(10, &[4])));
        fold.finish(); // constrained: stays empty
        assert!(arena.is_empty());
    }

    #[test]
    fn arena_fold_unconstrained_finishes_full() {
        let mut arena = CandidateSet::from_sorted_ids(40, &[1, 2]);
        ArenaFold::new(&mut arena, 9).finish();
        assert_eq!(arena.to_sorted_vec(), (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn arena_fold_short_circuits_on_empty() {
        let mut arena = CandidateSet::empty(10);
        let mut fold = ArenaFold::new(&mut arena, 10);
        assert!(fold.apply_sorted([2usize]));
        assert!(!fold.apply_sorted([4usize]));
        fold.finish(); // constrained: stays empty
        assert!(arena.is_empty());
    }

    #[test]
    fn fold_unconstrained_yields_all() {
        let fold = CandidateFold::new(5);
        assert!(!fold.is_constrained());
        assert_eq!(fold.into_sorted_vec(), vec![0, 1, 2, 3, 4]);
        let fold = CandidateFold::new(5);
        assert_eq!(fold.into_set().len(), 5);
    }

    #[test]
    fn fold_narrows_and_short_circuits() {
        let mut fold = CandidateFold::new(10);
        assert!(fold.apply_sorted([1usize, 3, 5, 7]));
        assert!(fold.apply_sorted([3usize, 5, 9]));
        assert!(fold.is_constrained());
        let clone_check = fold.into_sorted_vec();
        assert_eq!(clone_check, vec![3, 5]);

        let mut dead = CandidateFold::new(10);
        assert!(dead.apply_sorted([2usize]));
        assert!(!dead.apply_sorted([4usize]));
        assert_eq!(dead.into_sorted_vec(), Vec::<GraphId>::new());
    }
}
