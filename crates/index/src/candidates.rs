//! Shared candidate-set engine for the filtering stage.
//!
//! Every filter-and-verify method spends its filtering stage intersecting
//! per-feature sets of graph ids. The seed implementation materialized a
//! fresh sorted `Vec<GraphId>` per feature and merged pairwise
//! ([`crate::intersect_sorted`]); at dataset scale that is one allocation
//! plus an `O(|a| + |b|)` merge for *every* feature of *every* query. This
//! module replaces that with two cache-friendly primitives:
//!
//! * [`CandidateSet`] — a dense bitset over graph ids (`u64` blocks sized to
//!   the dataset). Intersection and union are word-wise `&`/`|` sweeps,
//!   membership is popcount-free bit probing, and cardinality is a popcount
//!   sweep. One set is allocated per query and *narrowed in place*, so the
//!   per-feature cost is `O(dataset / 64)` words with zero allocation.
//! * [`PostingList`] — a sorted id list as stored in index payloads, with a
//!   galloping sorted-sorted intersection for the skewed case and a
//!   streaming [`CandidateSet::retain_sorted`] bridge so a posting list can
//!   narrow a bitset without being converted first.
//!
//! [`CandidateFold`] packages the common filtering loop (first feature seeds
//! the set, later features narrow it, absence of any constraint means "all
//! graphs") used by GraphGrepSX, Grapes, gIndex and Tree+Δ.

use sqbench_graph::GraphId;
use std::sync::atomic::{AtomicUsize, Ordering};

const BLOCK_BITS: usize = 64;

/// Sentinel stored in [`CandidateSet::cached_len`] when the cached
/// cardinality is stale and must be recomputed by the next `len()` call.
const LEN_DIRTY: usize = usize::MAX;

/// AND of two equal-length block slices, unrolled 4×u64 wide. The unroll
/// gives the compiler four independent scalar ops per iteration (or a
/// 256-bit vector op under autovectorization) instead of a one-word
/// dependency chain.
#[inline]
fn and_blocks_wide(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    let mut d4 = dst.chunks_exact_mut(4);
    let mut s4 = src.chunks_exact(4);
    for (d, s) in (&mut d4).zip(&mut s4) {
        d[0] &= s[0];
        d[1] &= s[1];
        d[2] &= s[2];
        d[3] &= s[3];
    }
    for (d, s) in d4.into_remainder().iter_mut().zip(s4.remainder()) {
        *d &= *s;
    }
}

/// OR of two equal-length block slices, unrolled 4×u64 wide.
#[inline]
fn or_blocks_wide(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    let mut d4 = dst.chunks_exact_mut(4);
    let mut s4 = src.chunks_exact(4);
    for (d, s) in (&mut d4).zip(&mut s4) {
        d[0] |= s[0];
        d[1] |= s[1];
        d[2] |= s[2];
        d[3] |= s[3];
    }
    for (d, s) in d4.into_remainder().iter_mut().zip(s4.remainder()) {
        *d |= *s;
    }
}

/// AND-NOT (`dst &= !mask`) unrolled 4×u64 wide. `mask` may be shorter
/// (remaining `dst` blocks are untouched) or longer (excess mask blocks
/// describe ids above `dst`'s universe and are ignored) than `dst`.
#[inline]
fn and_not_blocks_wide(dst: &mut [u64], mask: &[u64]) {
    let n = dst.len().min(mask.len());
    let (dst, mask) = (&mut dst[..n], &mask[..n]);
    let mut d4 = dst.chunks_exact_mut(4);
    let mut m4 = mask.chunks_exact(4);
    for (d, m) in (&mut d4).zip(&mut m4) {
        d[0] &= !m[0];
        d[1] &= !m[1];
        d[2] &= !m[2];
        d[3] &= !m[3];
    }
    for (d, m) in d4.into_remainder().iter_mut().zip(m4.remainder()) {
        *d &= !*m;
    }
}

/// Dense bitset over the graph ids `0..universe` of a dataset.
///
/// Cardinality is cached lazily: mutating ops mark the cache dirty (or
/// adjust it incrementally where the delta is known), so repeated `len()`
/// calls inside filter folds and admission cost modeling stop re-running
/// the popcount sweep. The cache is an [`AtomicUsize`] (not a `Cell`) so
/// the set stays `Sync` — feature caches share `Arc<CandidateSet>` values
/// across query workers.
#[derive(Debug)]
pub struct CandidateSet {
    blocks: Vec<u64>,
    universe: usize,
    /// Cached cardinality; [`LEN_DIRTY`] when stale. Interior-mutable so
    /// `len(&self)` can fill it in.
    cached_len: AtomicUsize,
}

impl Clone for CandidateSet {
    fn clone(&self) -> Self {
        CandidateSet {
            blocks: self.blocks.clone(),
            universe: self.universe,
            cached_len: AtomicUsize::new(self.cached_len.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for CandidateSet {
    fn eq(&self, other: &Self) -> bool {
        // The cached length is derived state: two sets with equal content
        // compare equal regardless of which has a warm cache.
        self.universe == other.universe && self.blocks == other.blocks
    }
}

impl Eq for CandidateSet {}

impl CandidateSet {
    /// The empty set over `0..universe`.
    pub fn empty(universe: usize) -> Self {
        CandidateSet {
            blocks: vec![0; universe.div_ceil(BLOCK_BITS)],
            universe,
            cached_len: AtomicUsize::new(0),
        }
    }

    /// The full set over `0..universe`.
    pub fn full(universe: usize) -> Self {
        let mut set = CandidateSet {
            blocks: vec![!0u64; universe.div_ceil(BLOCK_BITS)],
            universe,
            cached_len: AtomicUsize::new(universe),
        };
        set.mask_tail();
        set
    }

    /// Builds a set from an ascending (not necessarily strictly) id slice.
    pub fn from_sorted_ids(universe: usize, ids: &[GraphId]) -> Self {
        let mut set = CandidateSet::empty(universe);
        for &id in ids {
            set.insert(id);
        }
        set
    }

    /// Clears bits above `universe` in the last block. Does not touch the
    /// cached length — callers account for it.
    fn mask_tail(&mut self) {
        let tail = self.universe % BLOCK_BITS;
        if tail != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Marks the cached cardinality stale. Every mutating op whose effect
    /// on the cardinality is not tracked incrementally must call this.
    #[inline]
    fn invalidate_len(&mut self) {
        *self.cached_len.get_mut() = LEN_DIRTY;
    }

    /// Number of ids the set ranges over (the dataset size, not the
    /// cardinality).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of ids in the set. The popcount sweep runs only when the
    /// cache is stale; otherwise this is a single atomic load.
    pub fn len(&self) -> usize {
        let cached = self.cached_len.load(Ordering::Relaxed);
        if cached != LEN_DIRTY {
            return cached;
        }
        let n = self.blocks.iter().map(|b| b.count_ones() as usize).sum();
        // Relaxed is enough: the value is derived purely from `blocks`,
        // which cannot change concurrently with a shared `&self` borrow.
        self.cached_len.store(n, Ordering::Relaxed);
        n
    }

    /// `true` if no id is in the set.
    pub fn is_empty(&self) -> bool {
        let cached = self.cached_len.load(Ordering::Relaxed);
        if cached != LEN_DIRTY {
            return cached == 0;
        }
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Adds `id` to the set.
    ///
    /// Stays branchless on purpose — per-id inserts seed every filter fold
    /// and drive the CT-Index/gCode scan loops, and maintaining the length
    /// cache incrementally here (a membership branch per insert) measured
    /// ~1.8x slower on the `micro_candidate_fold` seeding path. The cache
    /// is simply marked dirty instead; the next `len()` pays one sweep.
    pub fn insert(&mut self, id: GraphId) {
        debug_assert!(
            id < self.universe,
            "id {id} outside universe {}",
            self.universe
        );
        self.blocks[id / BLOCK_BITS] |= 1u64 << (id % BLOCK_BITS);
        self.invalidate_len();
    }

    /// Removes `id` from the set. Branchless, like [`CandidateSet::insert`].
    pub fn remove(&mut self, id: GraphId) {
        debug_assert!(
            id < self.universe,
            "id {id} outside universe {}",
            self.universe
        );
        self.blocks[id / BLOCK_BITS] &= !(1u64 << (id % BLOCK_BITS));
        self.invalidate_len();
    }

    /// Membership test.
    pub fn contains(&self, id: GraphId) -> bool {
        id < self.universe && self.blocks[id / BLOCK_BITS] & (1u64 << (id % BLOCK_BITS)) != 0
    }

    /// Removes every id (keeps the allocation).
    pub fn clear(&mut self) {
        self.blocks.fill(0);
        *self.cached_len.get_mut() = 0;
    }

    /// Re-targets the set at a possibly different `universe` and empties it,
    /// reusing the block allocation. This is the arena entry point of the
    /// borrowed-set filtering contract ([`crate::GraphIndex::filter_into`]):
    /// a worker-owned set is reset per query instead of reallocated.
    pub fn reset_empty(&mut self, universe: usize) {
        let blocks = universe.div_ceil(BLOCK_BITS);
        self.blocks.truncate(blocks);
        self.blocks.fill(0);
        self.blocks.resize(blocks, 0);
        self.universe = universe;
        *self.cached_len.get_mut() = 0;
    }

    /// Re-targets the set at a possibly different `universe` and fills it
    /// (every id `0..universe` becomes a member), reusing the allocation.
    pub fn reset_full(&mut self, universe: usize) {
        let blocks = universe.div_ceil(BLOCK_BITS);
        self.blocks.truncate(blocks);
        self.blocks.fill(!0u64);
        self.blocks.resize(blocks, !0u64);
        self.universe = universe;
        self.mask_tail();
        *self.cached_len.get_mut() = universe;
    }

    /// In-place intersection: `self &= other`. Both sets must range over the
    /// same universe. Runs the 4×u64 wide kernel.
    pub fn intersect_with(&mut self, other: &CandidateSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        and_blocks_wide(&mut self.blocks, &other.blocks);
        self.invalidate_len();
    }

    /// In-place union: `self |= other`. Both sets must range over the same
    /// universe. Runs the 4×u64 wide kernel.
    pub fn union_with(&mut self, other: &CandidateSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        or_blocks_wide(&mut self.blocks, &other.blocks);
        self.invalidate_len();
    }

    /// Fused intersection + dead-id-mask application in one wide sweep:
    /// `self = (self & other) & !dead`. Equivalent to `intersect_with`
    /// followed by [`Tombstones::apply`], but each block is loaded and
    /// stored once instead of twice — the shape every mutable index's
    /// cached filter path ends in.
    pub fn intersect_with_masked(&mut self, other: &CandidateSet, dead: &Tombstones) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        let mask = dead.block_mask();
        let n = self.blocks.len().min(other.blocks.len());
        for (i, (a, b)) in self.blocks[..n]
            .iter_mut()
            .zip(other.blocks[..n].iter())
            .enumerate()
        {
            let m = mask.get(i).copied().unwrap_or(0);
            *a = (*a & b) & !m;
        }
        self.invalidate_len();
    }

    /// Clears every id whose bit is set in `mask` (a block bitmask as kept
    /// by [`Tombstones`]) in one wide AND-NOT sweep. Mask blocks beyond the
    /// set's universe are ignored, matching the per-id semantics.
    pub fn clear_blocks(&mut self, mask: &[u64]) {
        and_not_blocks_wide(&mut self.blocks, mask);
        self.invalidate_len();
    }

    /// One-word-at-a-time reference implementations of the wide kernels.
    /// Kept (hidden) so the `micro_hotloops` bench and the equivalence
    /// proptests can A/B the unrolled paths against the obvious scalar
    /// loop on identical inputs.
    #[doc(hidden)]
    pub fn intersect_with_scalar(&mut self, other: &CandidateSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *a &= b;
        }
        self.invalidate_len();
    }

    #[doc(hidden)]
    pub fn union_with_scalar(&mut self, other: &CandidateSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *a |= b;
        }
        self.invalidate_len();
    }

    /// In-place intersection with an **ascending** id stream, without
    /// materializing the stream as a set: blocks the stream skips are
    /// zeroed, blocks it touches are masked to the streamed bits. Runs in
    /// `O(stream + blocks)` with zero allocation — this is the hot loop of
    /// the filtering stage.
    pub fn retain_sorted<I>(&mut self, ids: I)
    where
        I: IntoIterator<Item = GraphId>,
    {
        if self.blocks.is_empty() {
            return;
        }
        self.invalidate_len();
        let mut current = 0usize;
        let mut mask = 0u64;
        for id in ids {
            debug_assert!(
                id < self.universe,
                "id {id} outside universe {}",
                self.universe
            );
            let block = id / BLOCK_BITS;
            debug_assert!(block >= current, "retain_sorted requires ascending ids");
            if block != current {
                self.blocks[current] &= mask;
                self.blocks[current + 1..block].fill(0);
                current = block;
                mask = 0;
            }
            mask |= 1u64 << (id % BLOCK_BITS);
        }
        self.blocks[current] &= mask;
        self.blocks[current + 1..].fill(0);
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = GraphId> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let base = i * BLOCK_BITS;
            BlockBits { block }.map(move |bit| base + bit)
        })
    }

    /// Materializes the set as a sorted `Vec<GraphId>` — done once per
    /// query, when the filter hands its result to verification.
    pub fn to_sorted_vec(&self) -> Vec<GraphId> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.iter());
        out
    }

    /// Estimated heap bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.blocks.capacity() * std::mem::size_of::<u64>()
    }
}

/// Iterator over the set bit positions of a single block.
struct BlockBits {
    block: u64,
}

impl Iterator for BlockBits {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.block == 0 {
            return None;
        }
        let bit = self.block.trailing_zeros() as usize;
        self.block &= self.block - 1;
        Some(bit)
    }
}

/// A sorted, deduplicated list of graph ids — the representation index
/// payloads store per feature.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingList {
    ids: Vec<GraphId>,
}

impl PostingList {
    /// Wraps an already-sorted, deduplicated id vector.
    pub fn from_sorted(ids: Vec<GraphId>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly ascending"
        );
        PostingList { ids }
    }

    /// Builds a list from arbitrary ids (sorts and deduplicates).
    pub fn from_unsorted(mut ids: Vec<GraphId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        PostingList { ids }
    }

    /// The ids as a slice.
    pub fn as_slice(&self) -> &[GraphId] {
        &self.ids
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no graph contains the feature.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// `true` when the ids are strictly ascending — the storage invariant
    /// every construction, ingest and compaction path must preserve (the
    /// ingest proptests check it after arbitrary interleavings).
    pub fn is_strictly_ascending(&self) -> bool {
        self.ids.windows(2).all(|w| w[0] < w[1])
    }

    /// Appends an id strictly larger than every stored id — the online
    /// insert path, where a new graph's id is always the dataset maximum.
    pub fn append_max(&mut self, id: GraphId) {
        debug_assert!(
            self.ids.last().is_none_or(|&last| last < id),
            "append_max requires a new maximum id"
        );
        self.ids.push(id);
    }

    /// Narrows `set` to the ids also present in this list (streaming, no
    /// allocation).
    pub fn intersect_into(&self, set: &mut CandidateSet) {
        set.retain_sorted(self.ids.iter().copied());
    }

    /// Materializes this list as a [`CandidateSet`].
    pub fn to_candidate_set(&self, universe: usize) -> CandidateSet {
        CandidateSet::from_sorted_ids(universe, &self.ids)
    }

    /// Estimated heap bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.ids.capacity() * std::mem::size_of::<GraphId>()
    }

    /// Drops every tombstoned id from the list — the lazy-compaction step
    /// of the mutable-index contract. Posting payloads keep dead ids until
    /// [`Tombstones::should_compact`] trips; until then the per-query
    /// [`Tombstones::apply`] mask keeps them out of candidate sets.
    pub fn compact(&mut self, dead: &Tombstones) {
        if dead.is_empty() {
            return;
        }
        self.ids.retain(|&id| !dead.contains(id));
    }
}

/// The dead-id mask every mutable index carries: a sorted list of removed
/// graph ids over the (dense, stable) id space of its dataset.
///
/// Removal is two-phase. [`Tombstones::mark`] records the dead id; every
/// `filter_into` path then ends with [`Tombstones::apply`], which clears
/// dead bits from the candidate set — this covers posting payloads that
/// still mention the id *and* the "unconstrained → full set" fallbacks
/// (Scan, folds with no indexed feature). When the mask grows past
/// [`Tombstones::should_compact`], the owning index purges its payloads
/// ([`PostingList::compact`], trie purge, …) — but the mask itself is
/// **kept**, because the full-set fallbacks never consult payloads at all.
#[derive(Debug, Clone, Default)]
pub struct Tombstones {
    dead: Vec<GraphId>,
    /// Eagerly maintained block bitmask over the dead ids, so
    /// [`Tombstones::apply`] is a single wide AND-NOT sweep instead of a
    /// per-id scatter of bounds-checked `remove` calls. Sized to the
    /// highest dead id, not the universe — candidate sets zip against it
    /// and ignore the (absent) tail.
    mask: Vec<u64>,
}

impl PartialEq for Tombstones {
    fn eq(&self, other: &Self) -> bool {
        // `mask` is derived from `dead`; comparing it would only re-check
        // the same information.
        self.dead == other.dead
    }
}

impl Eq for Tombstones {}

impl Tombstones {
    /// An empty mask.
    pub fn new() -> Self {
        Tombstones::default()
    }

    /// Builds the mask from an already-sorted dead id slice (the shape
    /// `Dataset::dead_ids` hands out, so an index built over a previously
    /// mutated dataset starts consistent).
    pub fn from_sorted(dead: &[GraphId]) -> Self {
        debug_assert!(
            dead.windows(2).all(|w| w[0] < w[1]),
            "dead ids must be strictly ascending"
        );
        let mut mask = Vec::new();
        for &id in dead {
            Self::set_mask_bit(&mut mask, id);
        }
        Tombstones {
            dead: dead.to_vec(),
            mask,
        }
    }

    fn set_mask_bit(mask: &mut Vec<u64>, id: GraphId) {
        let block = id / BLOCK_BITS;
        if block >= mask.len() {
            mask.resize(block + 1, 0);
        }
        mask[block] |= 1u64 << (id % BLOCK_BITS);
    }

    /// The dead ids as a block bitmask (see [`CandidateSet::clear_blocks`]).
    pub fn block_mask(&self) -> &[u64] {
        &self.mask
    }

    /// Marks `id` dead. Returns `false` when it already was.
    pub fn mark(&mut self, id: GraphId) -> bool {
        match self.dead.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.dead.insert(pos, id);
                Self::set_mask_bit(&mut self.mask, id);
                true
            }
        }
    }

    /// `true` when `id` has been removed.
    pub fn contains(&self, id: GraphId) -> bool {
        self.dead.binary_search(&id).is_ok()
    }

    /// Number of dead ids.
    pub fn len(&self) -> usize {
        self.dead.len()
    }

    /// `true` when nothing has been removed.
    pub fn is_empty(&self) -> bool {
        self.dead.is_empty()
    }

    /// The dead ids, ascending.
    pub fn ids(&self) -> &[GraphId] {
        &self.dead
    }

    /// Clears every dead bit from `out` — the mandatory last step of every
    /// `filter_into` path of a mutable index. One wide AND-NOT sweep over
    /// the maintained block mask; dead ids above `out`'s universe fall off
    /// the end of the zip exactly as the old per-id loop skipped them.
    pub fn apply(&self, out: &mut CandidateSet) {
        if self.dead.is_empty() {
            return;
        }
        out.clear_blocks(&self.mask);
    }

    /// Per-id reference implementation of [`Tombstones::apply`], kept
    /// (hidden) for the kernel A/B bench and the equivalence proptests.
    #[doc(hidden)]
    pub fn apply_scalar(&self, out: &mut CandidateSet) {
        for &id in &self.dead {
            if id < out.universe() {
                out.remove(id);
            }
        }
    }

    /// `true` when the mask is large enough (both absolutely and relative
    /// to `universe`) that payload compaction pays for itself.
    pub fn should_compact(&self, universe: usize) -> bool {
        self.dead.len() >= 32 && self.dead.len() * 8 >= universe
    }

    /// Estimated heap bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.dead.capacity() * std::mem::size_of::<GraphId>()
            + self.mask.capacity() * std::mem::size_of::<u64>()
    }
}

/// Size-skew ratio above which [`intersect_posting`] switches from the
/// linear merge to galloping search. Measured on this machine by the
/// `gallop_crossover` group of `micro_hotloops` (see
/// `crates/bench/benches/micro_hotloops.rs`), which times both strategies
/// on a 1<<15-element posting at skew ratios 2..64: the merge wins clearly
/// through ratio 8 (~38µs vs ~62µs) and still narrowly at 10, galloping
/// takes over at 12 (~51µs vs ~61µs) and wins decisively from 16 up
/// (~39µs vs ~52µs, 3.4x by ratio 64). The crossover sits in the 10–12
/// band, so 10 replaces the previous unmeasured guess of 16 — postings in
/// the 12–16x skew band (common once filter folds apply rarest features
/// first) now take the faster galloping path.
pub const GALLOP_CROSSOVER: usize = 10;

/// Sorted-sorted intersection of id slices. Size-skewed inputs use a
/// galloping (exponential) search from the smaller side; similar sizes use
/// the linear merge. Allocates the output — the methods' hot paths use
/// [`CandidateSet::retain_sorted`] instead; this exists as the engine's
/// Vec-producing entry point and as the baseline the micro-benchmarks
/// compare against.
pub fn intersect_posting(a: &[GraphId], b: &[GraphId]) -> Vec<GraphId> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return Vec::new();
    }
    // Galloping pays off when one side is much smaller (see GALLOP_CROSSOVER).
    if small.len() * GALLOP_CROSSOVER < large.len() {
        intersect_gallop(small, large)
    } else {
        crate::intersect_sorted(small, large)
    }
}

/// The galloping strategy of [`intersect_posting`], callable directly so the
/// `gallop_crossover` micro-benchmark can time it against the linear merge
/// at every skew ratio (the dispatching wrapper would hide the losing
/// strategy below the crossover). `small` must be the shorter slice.
#[doc(hidden)]
pub fn intersect_gallop(small: &[GraphId], large: &[GraphId]) -> Vec<GraphId> {
    let mut out = Vec::with_capacity(small.len());
    let mut base = 0usize;
    for &id in small {
        if base >= large.len() {
            break;
        }
        // Exponential probe for the first index >= id, then a binary
        // search inside the bracketed window.
        let mut offset = 1usize;
        while base + offset < large.len() && large[base + offset] < id {
            offset <<= 1;
        }
        let window_end = (base + offset + 1).min(large.len());
        match large[base..window_end].binary_search(&id) {
            Ok(pos) => {
                out.push(id);
                base += pos + 1;
            }
            Err(pos) => base += pos,
        }
    }
    out
}

/// The shared filtering loop: feature posting streams arrive one at a time,
/// the first seeds the candidate set, later ones narrow it in place, and a
/// query none of whose features are indexed leaves the fold unconstrained
/// (every graph is a candidate — the gIndex / Tree+Δ semantics).
#[derive(Debug)]
pub struct CandidateFold {
    universe: usize,
    set: Option<CandidateSet>,
}

impl CandidateFold {
    /// A fold over a dataset of `universe` graphs, initially unconstrained.
    pub fn new(universe: usize) -> Self {
        CandidateFold {
            universe,
            set: None,
        }
    }

    /// Applies one feature's ascending id stream. Returns `false` when the
    /// candidate set became empty (callers short-circuit).
    pub fn apply_sorted<I>(&mut self, ids: I) -> bool
    where
        I: IntoIterator<Item = GraphId>,
    {
        match &mut self.set {
            None => {
                let mut set = CandidateSet::empty(self.universe);
                for id in ids {
                    set.insert(id);
                }
                self.set = Some(set);
            }
            Some(set) => set.retain_sorted(ids),
        }
        !self.set.as_ref().expect("set was just seeded").is_empty()
    }

    /// `true` when at least one feature has been applied.
    pub fn is_constrained(&self) -> bool {
        self.set.is_some()
    }

    /// Finishes the fold as a [`CandidateSet`] (unconstrained → full set).
    pub fn into_set(self) -> CandidateSet {
        match self.set {
            Some(set) => set,
            None => CandidateSet::full(self.universe),
        }
    }

    /// Finishes the fold as the sorted candidate vector the [`crate::GraphIndex`]
    /// contract requires (unconstrained → all ids).
    pub fn into_sorted_vec(self) -> Vec<GraphId> {
        match self.set {
            Some(set) => set.to_sorted_vec(),
            None => (0..self.universe).collect(),
        }
    }
}

/// The borrowed-set counterpart of [`CandidateFold`]: the same
/// seed-then-narrow loop, but folding into a caller-owned arena
/// [`CandidateSet`] instead of allocating one. This is what the
/// [`crate::GraphIndex::filter_into`] implementations of the posting-fold
/// methods run on — a query service hands each worker's reusable arena to
/// `filter_into` and no per-query set (or `Vec<GraphId>`) is ever allocated.
///
/// Dropping the fold without calling [`ArenaFold::finish`] leaves the arena
/// in whatever narrowed state it reached — callers that short-circuit on an
/// empty set rely on exactly that.
#[derive(Debug)]
pub struct ArenaFold<'a> {
    set: &'a mut CandidateSet,
    constrained: bool,
}

impl<'a> ArenaFold<'a> {
    /// Starts a fold over `0..universe` in the given arena. The arena is
    /// reset (and re-targeted at `universe` if it last served a different
    /// dataset); its allocation is reused.
    pub fn new(set: &'a mut CandidateSet, universe: usize) -> Self {
        set.reset_empty(universe);
        ArenaFold {
            set,
            constrained: false,
        }
    }

    /// Applies one feature's ascending id stream: the first stream seeds the
    /// set, later ones narrow it in place. Returns `false` when the set
    /// became empty (callers short-circuit).
    pub fn apply_sorted<I>(&mut self, ids: I) -> bool
    where
        I: IntoIterator<Item = GraphId>,
    {
        if self.constrained {
            self.set.retain_sorted(ids);
        } else {
            for id in ids {
                self.set.insert(id);
            }
            self.constrained = true;
        }
        !self.set.is_empty()
    }

    /// Applies one feature's already-materialized bitset (a cached posting
    /// list): the blockwise counterpart of [`ArenaFold::apply_sorted`]. The
    /// first set seeds the fold via a block copy, later ones narrow it with
    /// a block AND — both O(universe / 64) regardless of how many ids the
    /// feature posts. `other` must share the fold's universe (the cache
    /// layer guarantees this by keying entries per index instance; the
    /// blockwise ops `debug_assert` it). Returns `false` when the set
    /// became empty (callers short-circuit).
    pub fn apply_set(&mut self, other: &CandidateSet) -> bool {
        if self.constrained {
            self.set.intersect_with(other);
        } else {
            // The arena was `reset_empty` by `new`, so a union is a copy.
            self.set.union_with(other);
            self.constrained = true;
        }
        !self.set.is_empty()
    }

    /// `true` when at least one feature has been applied.
    pub fn is_constrained(&self) -> bool {
        self.constrained
    }

    /// Finishes the fold: an unconstrained fold (no feature applied) means
    /// "no information", so the arena becomes the full set.
    pub fn finish(self) {
        if !self.constrained {
            let universe = self.set.universe();
            self.set.reset_full(universe);
        }
    }

    /// Finishes the fold as the empty set — the short-circuit for a query
    /// feature that is absent from the index (no graph can match).
    pub fn prune_all(self) {
        self.set.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = CandidateSet::empty(130);
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
        let f = CandidateSet::full(130);
        assert_eq!(f.len(), 130);
        assert!(f.contains(0) && f.contains(129));
        assert!(!f.contains(130));
        assert_eq!(f.to_sorted_vec(), (0..130).collect::<Vec<_>>());
    }

    #[test]
    fn zero_universe() {
        let mut s = CandidateSet::full(0);
        assert_eq!(s.len(), 0);
        s.retain_sorted(std::iter::empty());
        assert!(s.to_sorted_vec().is_empty());
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = CandidateSet::empty(100);
        s.insert(3);
        s.insert(64);
        s.insert(99);
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.to_sorted_vec(), vec![3, 99]);
    }

    #[test]
    fn intersect_and_union_blockwise() {
        let a = CandidateSet::from_sorted_ids(200, &[1, 63, 64, 128, 199]);
        let b = CandidateSet::from_sorted_ids(200, &[63, 64, 65, 199]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_sorted_vec(), vec![63, 64, 199]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_sorted_vec(), vec![1, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn retain_sorted_matches_reference_intersection() {
        let base = vec![0, 5, 63, 64, 65, 127, 128, 190];
        let streams: Vec<Vec<GraphId>> = vec![
            vec![],
            vec![0],
            vec![5, 64, 128],
            vec![63, 64, 65],
            (0..191).collect(),
            vec![190],
            vec![1, 2, 3, 4],
        ];
        for stream in streams {
            let mut set = CandidateSet::from_sorted_ids(191, &base);
            set.retain_sorted(stream.iter().copied());
            assert_eq!(
                set.to_sorted_vec(),
                crate::intersect_sorted(&base, &stream),
                "stream {stream:?}"
            );
        }
    }

    #[test]
    fn retain_sorted_on_full_set() {
        let mut set = CandidateSet::full(150);
        set.retain_sorted([7usize, 64, 149]);
        assert_eq!(set.to_sorted_vec(), vec![7, 64, 149]);
    }

    #[test]
    fn iteration_is_sorted() {
        let ids = vec![2, 63, 64, 66, 120, 127, 128];
        let set = CandidateSet::from_sorted_ids(129, &ids);
        let collected: Vec<GraphId> = set.iter().collect();
        assert_eq!(collected, ids);
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn posting_list_roundtrip() {
        let p = PostingList::from_unsorted(vec![9, 3, 3, 7]);
        assert_eq!(p.as_slice(), &[3, 7, 9]);
        assert_eq!(p.len(), 3);
        let mut set = CandidateSet::full(10);
        p.intersect_into(&mut set);
        assert_eq!(set.to_sorted_vec(), vec![3, 7, 9]);
        assert_eq!(p.to_candidate_set(10).to_sorted_vec(), vec![3, 7, 9]);
        assert!(PostingList::default().is_empty());
    }

    #[test]
    fn tombstones_mark_apply_and_compact() {
        let mut dead = Tombstones::new();
        assert!(dead.is_empty());
        assert!(dead.mark(5));
        assert!(dead.mark(2));
        assert!(!dead.mark(5), "double-remove is a no-op");
        assert_eq!(dead.ids(), &[2, 5]);
        assert!(dead.contains(2) && !dead.contains(3));

        // apply clears dead bits, including on the full-set fallback path.
        let mut set = CandidateSet::full(8);
        dead.apply(&mut set);
        assert_eq!(set.to_sorted_vec(), vec![0, 1, 3, 4, 6, 7]);
        // Dead ids above a smaller universe are ignored, not a panic.
        let mut small = CandidateSet::full(4);
        dead.apply(&mut small);
        assert_eq!(small.to_sorted_vec(), vec![0, 1, 3]);

        // Posting compaction drops dead ids; the mask survives it.
        let mut posting = PostingList::from_sorted(vec![1, 2, 4, 5, 7]);
        posting.compact(&dead);
        assert_eq!(posting.as_slice(), &[1, 4, 7]);
        assert_eq!(dead.len(), 2);

        // from_sorted round-trips the dataset's dead-id slice.
        assert_eq!(Tombstones::from_sorted(&[2, 5]), dead);
    }

    #[test]
    fn tombstones_compaction_threshold() {
        let mut dead = Tombstones::new();
        for id in 0..31 {
            dead.mark(id);
        }
        assert!(!dead.should_compact(100), "below the absolute floor");
        dead.mark(31);
        assert!(dead.should_compact(100), "32 dead of 100 is worth purging");
        assert!(
            !dead.should_compact(10_000),
            "32 dead of 10k is not worth a payload sweep"
        );
    }

    #[test]
    fn wide_kernels_match_scalar_reference() {
        // 300 ids → 5 blocks: exercises both the 4-wide body and the
        // 1-block remainder of every kernel.
        let a_ids: Vec<GraphId> = (0..300).filter(|x| x % 3 != 0).collect();
        let b_ids: Vec<GraphId> = (0..300).filter(|x| x % 2 == 0).collect();
        let a = CandidateSet::from_sorted_ids(300, &a_ids);
        let b = CandidateSet::from_sorted_ids(300, &b_ids);

        let mut wide = a.clone();
        wide.intersect_with(&b);
        let mut scalar = a.clone();
        scalar.intersect_with_scalar(&b);
        assert_eq!(wide, scalar);

        let mut wide = a.clone();
        wide.union_with(&b);
        let mut scalar = a.clone();
        scalar.union_with_scalar(&b);
        assert_eq!(wide, scalar);
    }

    #[test]
    fn tombstone_apply_is_wide_and_matches_scalar() {
        let mut dead = Tombstones::new();
        for id in [0usize, 63, 64, 128, 255, 299] {
            dead.mark(id);
        }
        let live: Vec<GraphId> = (0..300).filter(|x| x % 7 != 0).collect();
        let mut wide = CandidateSet::from_sorted_ids(300, &live);
        let mut scalar = wide.clone();
        dead.apply(&mut wide);
        dead.apply_scalar(&mut scalar);
        assert_eq!(wide, scalar);
        for id in dead.ids() {
            assert!(!wide.contains(*id));
        }
        // A mask taller than the set's universe is truncated, not a panic.
        let mut small = CandidateSet::full(70);
        dead.apply(&mut small);
        assert_eq!(small.to_sorted_vec(), {
            let mut v: Vec<GraphId> = (0..70).collect();
            v.retain(|id| !dead.contains(*id));
            v
        });
    }

    #[test]
    fn fused_intersect_mask_matches_two_pass() {
        let a = CandidateSet::from_sorted_ids(200, &[1, 5, 63, 64, 65, 128, 199]);
        let b = CandidateSet::from_sorted_ids(200, &[5, 63, 64, 128, 150, 199]);
        let mut dead = Tombstones::new();
        dead.mark(64);
        dead.mark(199);

        let mut fused = a.clone();
        fused.intersect_with_masked(&b, &dead);

        let mut two_pass = a.clone();
        two_pass.intersect_with(&b);
        dead.apply(&mut two_pass);
        assert_eq!(fused, two_pass);
        assert_eq!(fused.to_sorted_vec(), vec![5, 63, 128]);
    }

    #[test]
    fn cached_len_tracks_every_mutation() {
        let mut s = CandidateSet::empty(300);
        assert_eq!(s.len(), 0);
        s.insert(5);
        s.insert(5); // idempotent
        s.insert(200);
        assert_eq!(s.len(), 2);
        s.remove(5);
        s.remove(5); // idempotent
        assert_eq!(s.len(), 1);
        s.reset_full(130);
        assert_eq!(s.len(), 130);
        s.retain_sorted([0usize, 64, 129]);
        assert_eq!(s.len(), 3);
        let other = CandidateSet::from_sorted_ids(130, &[64, 129]);
        s.intersect_with(&other);
        assert_eq!(s.len(), 2);
        s.union_with(&CandidateSet::from_sorted_ids(130, &[0, 1]));
        assert_eq!(s.len(), 4);
        s.clear();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        // Equality ignores cache warmth.
        let cold = CandidateSet::from_sorted_ids(10, &[3]);
        let mut warm = cold.clone();
        assert_eq!(warm.len(), 1);
        assert_eq!(warm, cold);
        warm.remove(3);
        assert_ne!(warm, cold);
    }

    #[test]
    fn posting_order_invariant_helper() {
        let mut p = PostingList::from_unsorted(vec![4, 1, 9]);
        assert!(p.is_strictly_ascending());
        p.append_max(12);
        assert!(p.is_strictly_ascending());
        let mut dead = Tombstones::new();
        dead.mark(9);
        p.compact(&dead);
        assert!(p.is_strictly_ascending());
        assert_eq!(p.as_slice(), &[1, 4, 12]);
    }

    #[test]
    fn galloping_intersection_agrees_with_merge() {
        let small: Vec<GraphId> = vec![5, 100, 101, 5000];
        let large: Vec<GraphId> = (0..6000).filter(|x| x % 5 == 0).collect();
        let expected = crate::intersect_sorted(&small, &large);
        assert_eq!(intersect_posting(&small, &large), expected);
        assert_eq!(intersect_posting(&large, &small), expected);
        assert_eq!(intersect_posting(&[], &large), Vec::<GraphId>::new());
        // Similar sizes take the merge path.
        let a: Vec<GraphId> = (0..100).collect();
        let b: Vec<GraphId> = (50..150).collect();
        assert_eq!(intersect_posting(&a, &b), crate::intersect_sorted(&a, &b));
    }

    #[test]
    fn reset_reuses_allocation_across_universes() {
        let mut set = CandidateSet::from_sorted_ids(200, &[0, 64, 199]);
        // Shrink to a smaller universe: old bits must not leak through.
        set.reset_empty(70);
        assert_eq!(set.universe(), 70);
        assert!(set.is_empty());
        set.insert(69);
        assert_eq!(set.to_sorted_vec(), vec![69]);
        // Grow again, full: every id present, tail masked.
        set.reset_full(130);
        assert_eq!(set.universe(), 130);
        assert_eq!(set.len(), 130);
        assert!(!set.contains(130));
        // Full reset to a smaller universe keeps the tail clean.
        set.reset_full(65);
        assert_eq!(set.len(), 65);
        assert_eq!(set.iter().last(), Some(64));
    }

    #[test]
    fn arena_fold_matches_owned_fold() {
        let lists: Vec<Vec<GraphId>> = vec![vec![1, 3, 5, 7, 64], vec![3, 5, 64], vec![5, 64, 99]];
        let mut owned = CandidateFold::new(100);
        for list in &lists {
            owned.apply_sorted(list.iter().copied());
        }
        let mut arena = CandidateSet::full(7); // dirty, wrong universe
        let mut fold = ArenaFold::new(&mut arena, 100);
        assert!(!fold.is_constrained());
        for list in &lists {
            assert!(fold.apply_sorted(list.iter().copied()));
        }
        assert!(fold.is_constrained());
        fold.finish();
        assert_eq!(arena.to_sorted_vec(), owned.into_sorted_vec());
    }

    #[test]
    fn arena_fold_apply_set_matches_apply_sorted() {
        let lists: Vec<Vec<GraphId>> = vec![vec![1, 3, 5, 7, 64], vec![3, 5, 64], vec![5, 64, 99]];
        let mut streamed = CandidateSet::empty(100);
        let mut fold = ArenaFold::new(&mut streamed, 100);
        for list in &lists {
            fold.apply_sorted(list.iter().copied());
        }
        fold.finish();
        let mut cached = CandidateSet::empty(100);
        let mut fold = ArenaFold::new(&mut cached, 100);
        for list in &lists {
            let set = CandidateSet::from_sorted_ids(100, list);
            assert!(fold.apply_set(&set));
        }
        assert!(fold.is_constrained());
        fold.finish();
        assert_eq!(cached.to_sorted_vec(), streamed.to_sorted_vec());
    }

    #[test]
    fn arena_fold_apply_set_short_circuits_on_disjoint_sets() {
        let mut arena = CandidateSet::empty(10);
        let mut fold = ArenaFold::new(&mut arena, 10);
        assert!(fold.apply_set(&CandidateSet::from_sorted_ids(10, &[2])));
        assert!(!fold.apply_set(&CandidateSet::from_sorted_ids(10, &[4])));
        fold.finish(); // constrained: stays empty
        assert!(arena.is_empty());
    }

    #[test]
    fn arena_fold_unconstrained_finishes_full() {
        let mut arena = CandidateSet::from_sorted_ids(40, &[1, 2]);
        ArenaFold::new(&mut arena, 9).finish();
        assert_eq!(arena.to_sorted_vec(), (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn arena_fold_short_circuits_on_empty() {
        let mut arena = CandidateSet::empty(10);
        let mut fold = ArenaFold::new(&mut arena, 10);
        assert!(fold.apply_sorted([2usize]));
        assert!(!fold.apply_sorted([4usize]));
        fold.finish(); // constrained: stays empty
        assert!(arena.is_empty());
    }

    #[test]
    fn fold_unconstrained_yields_all() {
        let fold = CandidateFold::new(5);
        assert!(!fold.is_constrained());
        assert_eq!(fold.into_sorted_vec(), vec![0, 1, 2, 3, 4]);
        let fold = CandidateFold::new(5);
        assert_eq!(fold.into_set().len(), 5);
    }

    #[test]
    fn fold_narrows_and_short_circuits() {
        let mut fold = CandidateFold::new(10);
        assert!(fold.apply_sorted([1usize, 3, 5, 7]));
        assert!(fold.apply_sorted([3usize, 5, 9]));
        assert!(fold.is_constrained());
        let clone_check = fold.into_sorted_vec();
        assert_eq!(clone_check, vec![3, 5]);

        let mut dead = CandidateFold::new(10);
        assert!(dead.apply_sorted([2usize]));
        assert!(!dead.apply_sorted([4usize]));
        assert_eq!(dead.into_sorted_vec(), Vec::<GraphId>::new());
    }
}
