//! Per-method configuration, defaulting to the parameter values listed in
//! §4.1 of the paper.
//!
//! Two knobs deviate from the paper's defaults in the interest of
//! laptop-scale runs and are clearly marked: the maximum fragment size of
//! the frequent-mining methods (the paper uses 10, which only a large server
//! can sustain for the bigger sweeps) and Grapes' thread count default
//! (which adapts to the local machine instead of being fixed at 6). Both can
//! be set to the paper's exact values through the builder methods.

/// Configuration of the Grapes index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrapesConfig {
    /// Maximum path length in edges (paper: 4).
    pub max_path_edges: usize,
    /// Number of worker threads used for index construction and
    /// verification (paper: 6).
    pub threads: usize,
}

impl Default for GrapesConfig {
    fn default() -> Self {
        GrapesConfig {
            max_path_edges: 4,
            threads: 6,
        }
    }
}

/// Configuration of the GraphGrepSX index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GgsxConfig {
    /// Maximum path length in edges (paper: 4).
    pub max_path_edges: usize,
}

impl Default for GgsxConfig {
    fn default() -> Self {
        GgsxConfig { max_path_edges: 4 }
    }
}

/// Configuration of the CT-Index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtIndexConfig {
    /// Fingerprint width in bits (paper: 4096).
    pub fingerprint_bits: usize,
    /// Maximum tree feature size in edges (paper configuration: 4).
    pub max_tree_edges: usize,
    /// Maximum cycle length in edges (paper configuration: 4).
    pub max_cycle_edges: usize,
    /// Hash probes per feature (1 = CT-Index behaviour).
    pub hashes_per_feature: usize,
}

impl Default for CtIndexConfig {
    fn default() -> Self {
        CtIndexConfig {
            fingerprint_bits: 4096,
            max_tree_edges: 4,
            max_cycle_edges: 4,
            hashes_per_feature: 1,
        }
    }
}

/// Configuration of gIndex.
#[derive(Debug, Clone, PartialEq)]
pub struct GIndexConfig {
    /// Maximum feature size in edges. Paper default: 10; library default: 3
    /// so the mining stage stays tractable on laptop-scale sweeps (this is
    /// the knob the paper itself identifies as the source of gIndex's
    /// blow-ups).
    pub max_feature_edges: usize,
    /// Minimum support ratio (paper: 0.1).
    pub min_support_ratio: f64,
    /// Discriminative ratio threshold (paper: 2.0).
    pub discriminative_ratio: f64,
}

impl Default for GIndexConfig {
    fn default() -> Self {
        GIndexConfig {
            max_feature_edges: 3,
            min_support_ratio: 0.1,
            discriminative_ratio: 2.0,
        }
    }
}

impl GIndexConfig {
    /// The exact paper configuration (maximum feature size 10).
    pub fn paper() -> Self {
        GIndexConfig {
            max_feature_edges: 10,
            ..Default::default()
        }
    }
}

/// Configuration of Tree+Δ.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeDeltaConfig {
    /// Maximum tree feature size in edges. Paper default: 10; library
    /// default: 3 (same rationale as [`GIndexConfig::max_feature_edges`]).
    pub max_feature_edges: usize,
    /// Minimum support ratio for mined trees (paper: 0.1).
    pub min_support_ratio: f64,
    /// Maximum length of the cycle-based Δ features enumerated from query
    /// graphs.
    pub max_cycle_edges: usize,
    /// A Δ feature is added to the index only if the fraction of current
    /// candidates containing it is at most this threshold (paper: 0.8) —
    /// i.e. the feature is selective enough to be worth remembering.
    pub delta_support_threshold: f64,
}

impl Default for TreeDeltaConfig {
    fn default() -> Self {
        TreeDeltaConfig {
            max_feature_edges: 3,
            min_support_ratio: 0.1,
            max_cycle_edges: 4,
            delta_support_threshold: 0.8,
        }
    }
}

impl TreeDeltaConfig {
    /// The exact paper configuration (maximum feature size 10).
    pub fn paper() -> Self {
        TreeDeltaConfig {
            max_feature_edges: 10,
            ..Default::default()
        }
    }
}

/// Configuration of gCode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GCodeConfig {
    /// Length (in edges) of the paths used to build vertex signatures
    /// (paper: 2, i.e. the "level-2 path tree").
    pub signature_path_length: usize,
    /// Number of leading path-tree eigenvalues kept per vertex (paper: 2).
    pub eigenvalue_count: usize,
    /// Width of the label / neighbor counter strings (paper: 32).
    pub counter_width: usize,
}

impl Default for GCodeConfig {
    fn default() -> Self {
        GCodeConfig {
            signature_path_length: 2,
            eigenvalue_count: 2,
            counter_width: 32,
        }
    }
}

/// Bundle of all per-method configurations, used by the
/// [`crate::build_index`] factory and the experiment harness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MethodConfig {
    /// Grapes configuration.
    pub grapes: GrapesConfig,
    /// GraphGrepSX configuration.
    pub ggsx: GgsxConfig,
    /// CT-Index configuration.
    pub ctindex: CtIndexConfig,
    /// gIndex configuration.
    pub gindex: GIndexConfig,
    /// Tree+Δ configuration.
    pub treedelta: TreeDeltaConfig,
    /// gCode configuration.
    pub gcode: GCodeConfig,
}

impl MethodConfig {
    /// A configuration bundle sized for fast unit tests: short paths, small
    /// fragments, narrow fingerprints.
    pub fn fast() -> Self {
        MethodConfig {
            grapes: GrapesConfig {
                max_path_edges: 3,
                threads: 2,
            },
            ggsx: GgsxConfig { max_path_edges: 3 },
            ctindex: CtIndexConfig {
                fingerprint_bits: 512,
                max_tree_edges: 3,
                max_cycle_edges: 3,
                hashes_per_feature: 1,
            },
            gindex: GIndexConfig {
                max_feature_edges: 2,
                min_support_ratio: 0.05,
                discriminative_ratio: 1.0,
            },
            treedelta: TreeDeltaConfig {
                max_feature_edges: 2,
                min_support_ratio: 0.05,
                max_cycle_edges: 3,
                delta_support_threshold: 0.8,
            },
            gcode: GCodeConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_4_1() {
        assert_eq!(GrapesConfig::default().max_path_edges, 4);
        assert_eq!(GrapesConfig::default().threads, 6);
        assert_eq!(GgsxConfig::default().max_path_edges, 4);
        let ct = CtIndexConfig::default();
        assert_eq!(ct.fingerprint_bits, 4096);
        assert_eq!(ct.max_tree_edges, 4);
        assert_eq!(ct.max_cycle_edges, 4);
        let gi = GIndexConfig::paper();
        assert_eq!(gi.max_feature_edges, 10);
        assert!((gi.min_support_ratio - 0.1).abs() < 1e-12);
        assert!((gi.discriminative_ratio - 2.0).abs() < 1e-12);
        let td = TreeDeltaConfig::paper();
        assert_eq!(td.max_feature_edges, 10);
        assert!((td.delta_support_threshold - 0.8).abs() < 1e-12);
        let gc = GCodeConfig::default();
        assert_eq!(gc.signature_path_length, 2);
        assert_eq!(gc.eigenvalue_count, 2);
        assert_eq!(gc.counter_width, 32);
    }

    #[test]
    fn fast_config_is_smaller_than_defaults() {
        let fast = MethodConfig::fast();
        let default = MethodConfig::default();
        assert!(fast.ctindex.fingerprint_bits < default.ctindex.fingerprint_bits);
        assert!(fast.gindex.max_feature_edges <= default.gindex.max_feature_edges);
        assert!(fast.grapes.threads <= default.grapes.threads);
    }
}
