//! CT-Index: tree and cycle features hashed into fixed-width fingerprints.
//!
//! Klein, Kriege, Mutzel, "CT-Index: Fingerprint-based graph indexing
//! combining cycles and trees" (ICDE 2011). For every dataset graph the
//! method exhaustively enumerates subtrees and simple cycles up to a
//! configurable size, computes their canonical labels, and hashes each label
//! into a fixed-size bit array — one fingerprint per graph (4096 bits in the
//! paper's configuration; the study uses feature size 4 after Grapes' tuning
//! showed size 6/8 to be unnecessarily expensive). Filtering a query is a
//! bitwise subset test between the query's fingerprint and every graph's
//! fingerprint; verification uses a tuned subgraph-isomorphism matcher with
//! extra ordering heuristics, which is how CT-Index compensates for the
//! filtering power lost to hash collisions.

use crate::candidates::{CandidateSet, Tombstones};
use crate::config::CtIndexConfig;
use crate::fcache::FilterCacheCtx;
use crate::{GraphIndex, IndexStats, MethodKind};
use sqbench_features::cycles::enumerate_cycles;
use sqbench_features::trees::enumerate_trees;
use sqbench_features::Fingerprint;
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_iso::TunedMatcher;

/// The CT-Index.
#[derive(Debug, Clone)]
pub struct CtIndex {
    config: CtIndexConfig,
    /// One fingerprint per dataset graph, indexed by graph id.
    fingerprints: Vec<Fingerprint>,
    /// Total number of (non-distinct) features hashed, for statistics.
    hashed_features: usize,
    /// Removed ids. A dead slot's fingerprint is swapped for an empty one
    /// (which still `covers()` an empty query fingerprint), so the mask —
    /// not the fingerprint — is what keeps dead ids out of candidates.
    tombstones: Tombstones,
}

impl CtIndex {
    /// Builds the index over a dataset.
    pub fn build(dataset: &Dataset, config: CtIndexConfig) -> Self {
        let mut fingerprints = Vec::with_capacity(dataset.len());
        let mut hashed_features = 0usize;
        for (_, graph) in dataset.iter() {
            let (fp, count) = Self::fingerprint_of(graph, &config);
            hashed_features += count;
            fingerprints.push(fp);
        }
        CtIndex {
            tombstones: Tombstones::from_sorted(dataset.dead_ids()),
            config,
            fingerprints,
            hashed_features,
        }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &CtIndexConfig {
        &self.config
    }

    /// Computes the fingerprint of a single graph plus the number of
    /// distinct features hashed into it.
    fn fingerprint_of(graph: &Graph, config: &CtIndexConfig) -> (Fingerprint, usize) {
        let mut fp = Fingerprint::new(config.fingerprint_bits);
        let mut features = 0usize;
        for (key, _) in enumerate_trees(graph, config.max_tree_edges) {
            fp.insert_key(&key, config.hashes_per_feature);
            features += 1;
        }
        for (key, _) in enumerate_cycles(graph, config.max_cycle_edges) {
            fp.insert_key(&key, config.hashes_per_feature);
            features += 1;
        }
        (fp, features)
    }

    /// Fingerprint of graph `gid` (for tests and diagnostics).
    pub fn fingerprint(&self, gid: GraphId) -> Option<&Fingerprint> {
        self.fingerprints.get(gid)
    }
}

impl GraphIndex for CtIndex {
    fn kind(&self) -> MethodKind {
        MethodKind::CtIndex
    }

    fn universe(&self) -> usize {
        self.fingerprints.len()
    }

    fn insert(&mut self, graph: &Graph) -> GraphId {
        let id = self.fingerprints.len();
        let (fp, count) = Self::fingerprint_of(graph, &self.config);
        self.hashed_features += count;
        self.fingerprints.push(fp);
        id
    }

    fn remove(&mut self, id: GraphId) -> bool {
        if id >= self.fingerprints.len() || !self.tombstones.mark(id) {
            return false;
        }
        // Eager per-slot compaction: the fingerprint is dense per-graph
        // state (512 B at the paper's width), so reclaim it immediately
        // rather than waiting for a threshold sweep.
        self.fingerprints[id] = Fingerprint::new(self.config.fingerprint_bits);
        true
    }

    fn filter_into(&self, query: &Graph, out: &mut CandidateSet) {
        let (query_fp, _) = Self::fingerprint_of(query, &self.config);
        // A single id-ordered scan with no intersection stage: each covering
        // fingerprint sets its graph's bit in the borrowed arena.
        out.reset_empty(self.fingerprints.len());
        for (gid, graph_fp) in self.fingerprints.iter().enumerate() {
            if graph_fp.covers(&query_fp) {
                out.insert(gid);
            }
        }
        self.tombstones.apply(out);
    }

    fn filter_into_cached(
        &self,
        query: &Graph,
        out: &mut CandidateSet,
        _ctx: &mut FilterCacheCtx<'_>,
    ) {
        // Explicit opt-out: filtering is one fingerprint subset-test scan
        // with no per-feature posting lists to reuse across queries, so a
        // feature cache could only add probe overhead.
        self.filter_into(query, out);
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            distinct_features: self.hashed_features,
            size_bytes: self
                .fingerprints
                .iter()
                .map(Fingerprint::memory_bytes)
                .sum(),
        }
    }

    fn verify(&self, dataset: &Dataset, query: &Graph, candidates: &[GraphId]) -> Vec<GraphId> {
        // CT-Index's tuned matcher replaces the stock VF2 verifier.
        candidates
            .iter()
            .copied()
            .filter(|&gid| {
                dataset
                    .graph(gid)
                    .map(|g| TunedMatcher::matches(query, g))
                    .unwrap_or(false)
            })
            .collect()
    }

    fn verify_set(
        &self,
        dataset: &Dataset,
        query: &Graph,
        candidates: &CandidateSet,
    ) -> Vec<GraphId> {
        // Same tuned matcher, iterating the candidate bits directly.
        candidates
            .iter()
            .filter(|&gid| {
                dataset
                    .graph(gid)
                    .map(|g| TunedMatcher::matches(query, g))
                    .unwrap_or(false)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive_answers;
    use sqbench_graph::GraphBuilder;

    fn dataset() -> Dataset {
        let tri = GraphBuilder::new("tri")
            .vertices(&[1, 1, 2])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let path = GraphBuilder::new("path")
            .vertices(&[1, 2, 3])
            .edges(&[(0, 1), (1, 2)])
            .build()
            .unwrap();
        let square = GraphBuilder::new("square")
            .vertices(&[1, 2, 1, 2])
            .edges(&[(0, 1), (1, 2), (2, 3), (3, 0)])
            .build()
            .unwrap();
        Dataset::from_graphs("ds", vec![tri, path, square])
    }

    fn query(labels: &[u32], edges: &[(usize, usize)]) -> Graph {
        GraphBuilder::new("q")
            .vertices(labels)
            .edges(edges)
            .build()
            .unwrap()
    }

    #[test]
    fn build_produces_one_fingerprint_per_graph() {
        let ds = dataset();
        let idx = CtIndex::build(&ds, CtIndexConfig::default());
        assert_eq!(idx.kind(), MethodKind::CtIndex);
        for gid in ds.ids() {
            let fp = idx.fingerprint(gid).unwrap();
            assert!(fp.count_ones() > 0);
            assert_eq!(fp.bit_len(), 4096);
        }
        assert!(idx.stats().distinct_features > 0);
    }

    #[test]
    fn filter_is_a_superset_of_answers() {
        let ds = dataset();
        let idx = CtIndex::build(&ds, CtIndexConfig::default());
        for (labels, edges) in [
            (vec![1u32, 2], vec![(0usize, 1usize)]),
            (vec![1, 1, 2], vec![(0, 1), (1, 2), (2, 0)]),
            (vec![1, 2, 1], vec![(0, 1), (1, 2)]),
        ] {
            let q = query(&labels, &edges);
            let candidates = idx.filter(&q);
            for a in exhaustive_answers(&ds, &q) {
                assert!(candidates.contains(&a));
            }
        }
    }

    #[test]
    fn query_returns_exact_answers() {
        let ds = dataset();
        let idx = CtIndex::build(&ds, CtIndexConfig::default());
        for (labels, edges) in [
            (vec![1u32, 2], vec![(0usize, 1usize)]),
            (vec![1, 1], vec![(0, 1)]),
            (vec![1, 1, 2], vec![(0, 1), (1, 2), (2, 0)]),
            (vec![1, 2, 1, 2], vec![(0, 1), (1, 2), (2, 3), (3, 0)]),
        ] {
            let q = query(&labels, &edges);
            let outcome = idx.query(&ds, &q);
            assert_eq!(outcome.answers, exhaustive_answers(&ds, &q));
        }
    }

    #[test]
    fn cycle_features_prune_acyclic_graphs() {
        let ds = dataset();
        let idx = CtIndex::build(&ds, CtIndexConfig::default());
        // Triangle query: the path graph has no cycle feature, so (absent
        // unlucky hash collisions at 4096 bits) it is pruned by filtering.
        let q = query(&[1, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let candidates = idx.filter(&q);
        assert!(
            !candidates.contains(&1),
            "acyclic graph should be filtered out"
        );
        assert!(candidates.contains(&0));
    }

    #[test]
    fn narrow_fingerprints_lose_filtering_power_but_stay_sound() {
        let ds = dataset();
        let wide = CtIndex::build(&ds, CtIndexConfig::default());
        let narrow = CtIndex::build(
            &ds,
            CtIndexConfig {
                fingerprint_bits: 64,
                ..CtIndexConfig::default()
            },
        );
        let q = query(&[1, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        // Narrow fingerprints collide more, so the candidate set can only be
        // the same or larger...
        assert!(narrow.filter(&q).len() >= wide.filter(&q).len());
        // ...but the verified answers are identical.
        assert_eq!(narrow.query(&ds, &q).answers, wide.query(&ds, &q).answers);
    }

    #[test]
    fn index_size_scales_with_fingerprint_width_not_graph_size() {
        let ds = dataset();
        let idx = CtIndex::build(&ds, CtIndexConfig::default());
        let expected = ds.len() * (4096 / 8);
        let size = idx.stats().size_bytes;
        assert!(size >= expected && size <= expected * 2);
    }

    #[test]
    fn insert_and_remove_track_rebuild_answers() {
        let mut ds = dataset();
        let mut idx = CtIndex::build(&ds, CtIndexConfig::default());
        let extra = GraphBuilder::new("extra")
            .vertices(&[1, 2, 3, 3])
            .edges(&[(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        assert_eq!(idx.insert(&extra), 3);
        ds.push(extra);
        assert!(idx.remove(1));
        assert!(!idx.remove(1));
        ds.remove(1);

        let rebuilt = CtIndex::build(&ds, CtIndexConfig::default());
        for (labels, edges) in [
            (vec![1u32, 2], vec![(0usize, 1usize)]),
            (vec![2, 3], vec![(0, 1)]),
            (vec![1, 1, 2], vec![(0, 1), (1, 2), (2, 0)]),
        ] {
            let q = query(&labels, &edges);
            assert_eq!(idx.query(&ds, &q).answers, rebuilt.query(&ds, &q).answers);
            assert_eq!(idx.query(&ds, &q).answers, exhaustive_answers(&ds, &q));
        }
        // The empty query exercises the "empty fingerprint covers empty
        // query" corner: only the tombstone mask keeps id 1 out.
        let empty = idx.query(&ds, &Graph::new("empty"));
        assert_eq!(empty.answers, vec![0, 2, 3]);
    }

    #[test]
    fn empty_query_matches_everything() {
        let ds = dataset();
        let idx = CtIndex::build(&ds, CtIndexConfig::default());
        let outcome = idx.query(&ds, &Graph::new("empty"));
        assert_eq!(outcome.answers, vec![0, 1, 2]);
    }
}
